#!/usr/bin/env python
"""Quickstart: the paper's three primitives in two minutes.

Builds an in-process deployment (4 data + 4 metadata providers, a version
manager and a provider manager), allocates a 64 MB blob with 64 KB pages,
and walks through ALLOC / WRITE / READ with versioned snapshots:

- every WRITE creates a new snapshot (version) without touching old ones;
- READ(v) sees exactly the first v patches — even after later writes;
- version 0 is the implicit all-zero string (allocation is lazy);
- unaligned writes are available via read-modify-write.

Run: python examples/quickstart.py
"""

from repro import DeploymentSpec, build_inproc
from repro.util.sizes import KB, MB, human_size


def main() -> None:
    # 1. deploy the service and connect a client
    dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4))
    client = dep.client("quickstart")

    # 2. ALLOC: a 64 MB blob striped into 64 KB pages
    blob = client.alloc(total_size=64 * MB, pagesize=64 * KB)
    print(f"allocated blob {blob}: 64 MB logical, 64 KB pages")
    print(f"latest published version: {client.latest(blob)} (0 = all zeros)")

    # 3. WRITE: each write returns a fresh version number
    v1 = client.write(blob, b"A" * 128 * KB, offset=0)
    print(f"\nwrite #1 -> version {v1.version} "
          f"({v1.pages_written} pages, {v1.nodes_written} metadata nodes)")

    v2 = client.write(blob, b"B" * 64 * KB, offset=64 * KB)
    print(f"write #2 -> version {v2.version} "
          f"({v2.pages_written} pages, {v2.nodes_written} metadata nodes "
          f"— the untouched subtree is shared with v1)")

    # 4. READ: snapshots are immutable and individually addressable
    head = client.read_bytes(blob, offset=0, size=8)
    print(f"\nread latest   [0, +8)  : {head!r}")

    boundary_v2 = client.read_bytes(blob, 64 * KB - 4, 8, version=2)
    print(f"read v2 at page boundary: {boundary_v2!r}  (A's then B's)")

    boundary_v1 = client.read_bytes(blob, 64 * KB - 4, 8, version=1)
    print(f"read v1 same range      : {boundary_v1!r}  (B never existed in v1)")

    zeros = client.read_bytes(blob, 32 * MB, 8, version=1)
    print(f"read far, unwritten     : {zeros!r}  (zero-filled, nothing fetched)")

    # 5. the paper's contract: vr >= v, old snapshots never change
    res = client.read(blob, 0, 16, version=1)
    print(f"\nREAD(v=1) returned vr={res.latest} (latest published), "
          f"snapshot v1 data {res.data[:4]!r} is immutable")

    # 6. unaligned writes via read-modify-write (extension)
    client.write_unaligned(blob, b"<patched>", offset=100)
    print(f"\nafter unaligned patch at 100: "
          f"{client.read_bytes(blob, 96, 17)!r}")

    # 7. storage accounting: copy-on-write at page granularity
    print(f"\ncluster now stores {dep.total_pages_stored()} pages "
          f"({human_size(sum(p.bytes_stored for p in dep.data.values()))}) "
          f"and {dep.total_nodes_stored()} metadata nodes "
          f"across {len(dep.data)} data / {len(dep.meta)} metadata providers")


if __name__ == "__main__":
    main()
