#!/usr/bin/env python
"""Concurrent telescopes and analysts: the paper's concurrency story, live.

Runs the threaded deployment (every actor on its own service thread, like
the paper's one-process-per-node cluster) with:

- two *telescope* threads writing new epochs concurrently into disjoint
  tiles of the shared sky blob (write/write concurrency, §IV.C);
- two *analyst* threads continuously reading a pinned earlier epoch while
  the telescopes keep writing (read/write concurrency, §IV.B) — and
  verifying their snapshot never changes underneath them;
- publication order checked at the end: versions appear exactly once,
  in order, regardless of thread interleavings (global serializability).

Run: python examples/concurrent_telescopes.py
"""

import threading

import numpy as np

from repro import DeploymentSpec, build_threaded
from repro.sky import SkyModel, SkySpec, SupernovaPipeline

EPOCHS = 6


def main() -> None:
    spec = SkySpec(tiles_x=4, tiles_y=2, seed=99)
    model = SkyModel.with_random_events(spec, n_supernovae=2, n_variables=2,
                                        epochs=EPOCHS)

    with build_threaded(DeploymentSpec(n_data=6, n_meta=6)) as dep:
        pipe = SupernovaPipeline(model, dep.client("coordinator"))
        telescopes = [dep.client("telescope-east"), dep.client("telescope-west")]

        # epoch 0: the reference observation
        v0 = pipe.observe_epoch(0, telescopes)
        print(f"epoch 0 observed by 2 telescopes concurrently -> version {v0}")
        baseline = {t: pipe.read_tile(t, 0) for t in pipe.mapping.all_tiles()}

        # analysts pin epoch 0 and keep re-reading it while new epochs land
        stop = threading.Event()
        violations: list[str] = []
        reads_done = [0, 0]

        def analyst(idx: int) -> None:
            client = dep.client(f"analyst-{idx}")
            while not stop.is_set():
                for tile in pipe.mapping.all_tiles():
                    again = pipe.read_tile(tile, 0, client)
                    if not np.array_equal(baseline[tile], again):
                        violations.append(f"analyst {idx}: snapshot changed!")
                    reads_done[idx] += 1

        analysts = [threading.Thread(target=analyst, args=(i,)) for i in (0, 1)]
        for t in analysts:
            t.start()

        for epoch in range(1, EPOCHS):
            v = pipe.observe_epoch(epoch, telescopes)
            print(f"epoch {epoch} observed (telescopes wrote "
                  f"{spec.n_tiles} tiles concurrently) -> version {v}")

        stop.set()
        for t in analysts:
            t.join(timeout=60)

        print(f"\nanalysts performed {sum(reads_done)} pinned-snapshot reads "
              f"while telescopes were writing")
        print("snapshot violations:", violations or "none — versioning held")

        latest = pipe.client.latest(pipe.blob_id)
        expected = EPOCHS * spec.n_tiles
        print(f"published versions: {latest} (expected {expected}; "
              "every concurrent write published exactly once, in order)")

        report_versions = pipe.epoch_versions
        assert report_versions == sorted(report_versions)
        assert latest == expected
        assert not violations


if __name__ == "__main__":
    main()
