#!/usr/bin/env python
"""Incremental analytics with snapshot diffing.

Large-scale continuous data mining (one of the paper's target domains,
§I) rarely wants to reprocess a terabyte per update. Because snapshots
share every untouched subtree and child references carry version labels,
two snapshots can be *structurally diffed* in O(changed metadata):
``changed_ranges(client, blob, v_old, v_new)`` walks both trees at once
and prunes every shared subtree without fetching it.

This example maintains a running statistic (per-region checksums) over a
64 MB dataset and, after each batch of updates, reprocesses only the
regions the diff reports — verifying against a full recompute.

It also shows the file-like API (`BlobFile`) for sequential ingest.

Run: python examples/incremental_analytics.py
"""

import zlib

from repro import DeploymentSpec, build_inproc
from repro.core.blobfile import open_blob
from repro.util.rng import substream
from repro.util.sizes import KB, MB, human_size
from repro.version.diff import changed_ranges

TOTAL = 64 * MB
PAGE = 64 * KB
REGION = 1 * MB  # analytics granularity
N_REGIONS = TOTAL // REGION


def region_checksums(client, blob, version, regions):
    """(Re)compute the per-region statistic for the given region indices."""
    out = {}
    for r in regions:
        data = client.read_bytes(blob, r * REGION, REGION, version=version)
        out[r] = zlib.crc32(data)
    return out


def main() -> None:
    dep = build_inproc(DeploymentSpec(n_data=6, n_meta=6))
    client = dep.client("analyst")
    blob = client.alloc(TOTAL, PAGE)
    rng = substream(7, "batches")

    # initial ingest through the file-like API
    with open_blob(client, blob, mode="w") as f:
        for r in range(N_REGIONS):
            f.seek(r * REGION)
            f.write(bytes([r % 251]) * REGION)
    v0 = client.latest(blob)
    print(f"ingested {human_size(TOTAL)} -> version {v0}")

    stats = region_checksums(client, blob, v0, range(N_REGIONS))
    print(f"initial statistics over {N_REGIONS} regions computed\n")

    current = v0
    for batch in range(1, 4):
        # a batch of random page-aligned updates lands
        n_updates = int(rng.integers(2, 6))
        for _ in range(n_updates):
            page = int(rng.integers(0, TOTAL // PAGE))
            client.write(blob, bytes([batch * 40 + 1]) * PAGE, page * PAGE)
        new_version = client.latest(blob)

        # structural diff: which byte ranges did this batch touch?
        deltas = changed_ranges(client, blob, current, new_version)
        touched_regions = sorted(
            {iv.offset // REGION for iv in deltas}
            | {(iv.end - 1) // REGION for iv in deltas}
        )
        changed_bytes = sum(iv.size for iv in deltas)
        print(f"batch {batch}: {n_updates} updates -> v{new_version}; diff "
              f"reports {human_size(changed_bytes)} changed in "
              f"{len(deltas)} run(s); reprocessing "
              f"{len(touched_regions)}/{N_REGIONS} regions")

        # incremental update of the statistic
        stats.update(
            region_checksums(client, blob, new_version, touched_regions)
        )

        # verify against a full recompute of the new snapshot
        full = region_checksums(client, blob, new_version, range(N_REGIONS))
        assert stats == full, "incremental result diverged from full recompute"
        print(f"  incremental statistics verified against full recompute")
        current = new_version

    print("\nall batches processed incrementally — O(changed) instead of "
          f"O({human_size(TOTAL)}) per batch")


if __name__ == "__main__":
    main()
