#!/usr/bin/env python
"""Reproduce the paper's cluster evaluation on your laptop.

Regenerates all three panels of the paper's Figure 3 on the simulated
Grid'5000 cluster (117.5 MB/s TCP, 0.1 ms latency) and prints the measured
series next to the paper's digitized curves. Runs a reduced grid by
default; pass --full for the paper's complete client sweep.

Run: python examples/cluster_experiment.py [--full]
"""

import argparse

from repro.bench.figures import (
    fig3a_metadata_read,
    fig3b_metadata_write,
    fig3c_throughput,
    render_series_table,
)
from repro.util.sizes import human_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="full client sweep (several minutes)")
    args = parser.parse_args()

    print("=== Figure 3(a): metadata overhead, single client, reads ===\n")
    fig = fig3a_metadata_read()
    print(render_series_table(fig, x_format=human_size))

    print("\n=== Figure 3(b): metadata overhead, single client, writes ===\n")
    fig = fig3b_metadata_write()
    print(render_series_table(fig, x_format=human_size))

    print("\n=== Figure 3(c): throughput of concurrent clients ===\n")
    if args.full:
        clients, iterations = (1, 4, 8, 12, 16, 20), 25
    else:
        clients, iterations = (1, 8, 20), 8
    fig = fig3c_throughput(client_counts=clients, iterations=iterations)
    print(render_series_table(fig, y_format=lambda v: f"{v:.1f}"))

    print("\nShapes to check against the paper: (a) grows with segment size,"
          "\nmore providers slightly worse; (b) grows with size, more"
          "\nproviders better; (c) flat-ish per-client bandwidth, cached"
          "\nreads fastest. See EXPERIMENTS.md for the recorded comparison.")


if __name__ == "__main__":
    main()
