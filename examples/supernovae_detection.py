#!/usr/bin/env python
"""The paper's motivating application: finding supernovae (§I).

A synthetic telescope surveys a 3x3-tile sky for ten epochs. Every epoch
is written into one terabyte-class blob (tiles concatenated, 2D -> 1D
mapping) and becomes an immutable snapshot; the analysis then differences
epochs against the reference, tracks variable objects, extracts their
light curves across snapshots, and separates supernovae (single
asymmetric outburst) from periodic variable stars.

Ground truth is known (events are injected), so the script reports
precision and recall at the end.

Run: python examples/supernovae_detection.py

The same survey also runs against a real multi-process TCP cluster —
the paper's deployment architecture (§III) in full: eight storage node
agents plus one agent each for the version manager and the provider
manager, all launched on loopback ports, every tile write and scan
crossing actual sockets, and **zero actors in this client process**:

    python examples/supernovae_detection.py --deploy tcp
"""

import argparse

from repro import DeploymentSpec, build_inproc, build_tcp
from repro.sky import SkyModel, SkySpec, SupernovaPipeline
from repro.util.sizes import human_size

EPOCHS = 10


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--deploy", choices=("inproc", "tcp"), default="inproc",
        help="run in-process (default) or against a loopback TCP cluster "
        "of node-agent OS processes",
    )
    parser.add_argument(
        "--epochs", type=int, default=EPOCHS,
        help=f"survey epochs (default {EPOCHS})",
    )
    args = parser.parse_args(argv)

    spec = SkySpec(tiles_x=3, tiles_y=3, seed=2026)
    model = SkyModel.with_random_events(
        spec, n_supernovae=4, n_variables=5, epochs=args.epochs
    )
    print(f"synthetic sky: {spec.tiles_x}x{spec.tiles_y} tiles of "
          f"{spec.tile_width}x{spec.tile_height} px "
          f"({human_size(spec.tile_bytes)} each)")
    print(f"injected ground truth: {len(model.supernovae)} supernovae, "
          f"{len(model.variables)} variable stars\n")

    dep_spec = DeploymentSpec(n_data=8, n_meta=8)
    if args.deploy == "tcp":
        dep = build_tcp(dep_spec, control_plane="agents")
        print(f"TCP cluster: {len(dep.agents)} node agents on loopback "
              f"({', '.join(str(a.endpoint) for a in dep.agents)})")
        print(f"control plane: vm/pm on their own agents; "
              f"in-parent actors: {len(dep.in_parent_actors())}\n")
    else:
        dep = build_inproc(dep_spec)
    try:
        pipe = SupernovaPipeline(model, dep.client("survey"))
        print(f"sky blob: {human_size(pipe.mapping.blob_size)} logical, "
              f"tile slot {human_size(pipe.mapping.tile_slot_bytes)}\n")

        report = pipe.run_campaign(epochs=args.epochs)
    finally:
        close = getattr(dep, "close", None)
        if close is not None:
            close()

    print("epoch -> published blob version:")
    for epoch, version in enumerate(report.epoch_versions):
        print(f"  epoch {epoch:2d}  version {version}")

    print(f"\ntracked {len(report.tracks)} variable objects:")
    for track in report.tracks:
        peak = max(track.curve) if track.curve is not None else 0.0
        print(f"  tile {track.tile}  ({track.x:6.1f}, {track.y:6.1f})  "
              f"hits={track.hits:2d}  peak_flux={peak:8.0f}  -> {track.label}")

    print(f"\ninjected supernovae   : {report.true_supernovae}")
    print(f"claimed supernovae    : {report.claimed_supernovae}")
    print(f"correctly matched     : {report.matched_supernovae}")
    print(f"precision             : {report.precision:.2f}")
    print(f"recall                : {report.recall:.2f}")
    print(f"\nblob I/O: wrote {human_size(report.bytes_written)}, "
          f"read {human_size(report.bytes_read)} "
          f"(snapshots let the scan re-read any epoch at will)")


if __name__ == "__main__":
    main()
