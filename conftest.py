"""Repo-root pytest configuration: the per-test hang watchdog.

Lives at the root (not in tests/ or benchmarks/) so it covers *both*
collected trees — the conformance/transport tests and the benchmarks that
spawn real worker processes are exactly the places a wedged process could
otherwise stall a run to the CI job timeout.
"""

from __future__ import annotations

import faulthandler
import os

import pytest

#: REPRO_TEST_TIMEOUT=<seconds> arms a hard per-test watchdog: if any
#: single test (with real threads or worker processes) wedges for longer,
#: faulthandler dumps every thread's traceback and kills the run. CI sets
#: this so a hung worker process fails the workflow fast instead of
#: stalling it until the job-level timeout.
_WATCHDOG_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or 0)


@pytest.fixture(autouse=_WATCHDOG_SECONDS > 0)
def _hang_watchdog():
    faulthandler.dump_traceback_later(_WATCHDOG_SECONDS, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
