"""Benchmark configuration.

Every bench regenerates one figure of the paper (or an ablation) on the
simulated cluster, prints the measured-vs-paper table, writes it under
``benchmarks/out/``, and asserts the *shape* properties the paper claims.
``pytest-benchmark`` wraps the whole figure generation, so the tracked
number is host-side generation time (useful for regression detection; the
scientific results are the simulated series in the tables).

Set ``REPRO_BENCH_FULL=1`` for the full paper grid (more client counts and
iterations; several minutes). The default profile keeps the suite fast
while preserving every asserted shape.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.bench.compare import result_payload

OUT_DIR = Path(__file__).parent / "out"


@dataclass(frozen=True)
class BenchProfile:
    full: bool
    fig3c_clients: tuple[int, ...]
    fig3c_iterations: int
    ablation_clients: tuple[int, ...]
    ablation_iterations: int
    #: LSST-scale concurrency sweep beyond the paper's 20 clients
    #: (empty = skipped; only the full profile pays for it)
    fig3c_lsst_clients: tuple[int, ...] = ()
    fig3c_lsst_iterations: int = 6
    #: provider-scaling sweep beyond the paper's 20-node testbed
    #: (empty = skipped; only the full profile pays for it)
    fig3c_provider_grid: tuple[int, ...] = ()
    fig3c_provider_iterations: int = 6
    #: simulated-open-connection tiers for the aio tail-latency sweep
    #: against a *real* loopback TCP cluster (one coroutine = one client
    #: program; sockets are multiplexed, so 10k needs no 10k fds)
    aio_clients: tuple[int, ...] = (256, 2048)


def _aio_clients_override() -> tuple[int, ...] | None:
    """Comma-separated ``REPRO_BENCH_AIO_CLIENTS`` (e.g. ``"256"`` for the
    CI fast tier, ``"256,2048,10240"`` for a manual full sweep)."""
    raw = os.environ.get("REPRO_BENCH_AIO_CLIENTS", "").strip()
    if not raw:
        return None
    return tuple(int(part) for part in raw.split(","))


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    aio = _aio_clients_override()
    if full:
        return BenchProfile(
            full=True,
            fig3c_clients=(1, 4, 8, 12, 16, 20),
            fig3c_iterations=25,
            ablation_clients=(1, 2, 4, 8, 16),
            ablation_iterations=15,
            fig3c_lsst_clients=(20, 32, 48, 64),
            fig3c_provider_grid=(40, 80, 160),
            aio_clients=aio or (256, 2048, 10240),
        )
    return BenchProfile(
        full=False,
        fig3c_clients=(1, 8, 20),
        fig3c_iterations=8,
        ablation_clients=(1, 4, 8),
        ablation_iterations=8,
        aio_clients=aio or (256, 2048),
    )


@pytest.fixture(scope="session")
def publish():
    """Print a figure table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _publish


@pytest.fixture(scope="session")
def publish_json(profile):
    """Persist a machine-readable result under benchmarks/out/<name>.json.

    The payload (series + host wall-clock + engine counters) is what
    ``repro.bench.compare`` diffs to track the perf trajectory across PRs.
    """
    OUT_DIR.mkdir(exist_ok=True)

    def _publish(
        name: str,
        figure_id: str,
        series,
        wall_clock_s: float,
        counters: dict | None = None,
    ) -> None:
        payload = result_payload(
            name,
            figure_id,
            series,
            wall_clock_s,
            counters=counters,
            profile={"full": profile.full},
        )
        (OUT_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1) + "\n")

    return _publish


def roughly_nondecreasing(ys, tolerance=0.12) -> bool:
    """Monotone up to small modeling noise."""
    return all(b >= a * (1 - tolerance) for a, b in zip(ys, ys[1:]))
