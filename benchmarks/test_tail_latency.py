"""Tail latency: p50/p95/p99 of per-operation time under concurrency.

The paper's Figure 3(c) claim is about *means* ("per client bandwidth
hardly decreases"); the lock-free design implies the stronger property
this bench pins: the latency *tail* stays controlled too — no p99 blowup
from contention as clients are added, because there is nothing to queue
on except the modeled wire.

Quantiles are computed through :class:`repro.obs.hist.LatencyHistogram` —
the identical accumulator the live telemetry path records into — so this
bench also dogfoods the observability stack's numeric core against the
simulator. Simulated durations are deterministic, hence the published
p50/p95/p99 series are bit-stable and ``repro.bench.compare`` gates them
at rtol 1e-9 (any drift means the protocol or the histogram changed, not
the host).
"""

import time

from repro.bench.figures import tail_latency_quantiles, render_series_table


def test_tail_latency(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        tail_latency_quantiles,
        kwargs=dict(
            client_counts=profile.fig3c_clients,
            iterations=profile.fig3c_iterations,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "tail_latency", render_series_table(fig, y_format=lambda v: f"{v:.3f}")
    )
    publish_json("tail_latency", fig.figure_id, fig.series, wall, fig.counters)

    for kind in ("Read", "Write"):
        p50 = fig.series_by_label(f"{kind} p50").y
        p95 = fig.series_by_label(f"{kind} p95").y
        p99 = fig.series_by_label(f"{kind} p99").y
        # quantile ordering at every client count
        for lo, mid, hi in zip(p50, p95, p99):
            assert 0 < lo <= mid <= hi, (kind, lo, mid, hi)
        # the tail claim: p99 stays within a small factor of the median
        # even at max concurrency — contention shifts the distribution,
        # it must not grow a pathological tail
        for lo, hi in zip(p50, p99):
            assert hi < 3.0 * lo, (kind, p50, p99)
        # tails under load stay bounded relative to the uncontended tail
        assert p99[-1] < 3.0 * p99[0], (kind, p99)

    # operations move 8 MB against a ~117.5 MB/s wire: medians live in the
    # tens-to-hundreds of ms, nowhere near zero or seconds
    all_values = [
        y for kind in ("Read", "Write")
        for q in ("p50", "p95", "p99")
        for y in fig.series_by_label(f"{kind} {q}").y
    ]
    assert all(10 < y < 1000 for y in all_values)


def test_tail_latency_deterministic():
    """Two identical runs produce bit-identical quantile series — the
    property that lets repro.bench.compare gate this figure at rtol 1e-9."""
    kwargs = dict(client_counts=(2,), iterations=3)
    a = tail_latency_quantiles(**kwargs)
    b = tail_latency_quantiles(**kwargs)
    assert [(s.label, s.y) for s in a.series] == [
        (s.label, s.y) for s in b.series
    ]
