"""Transport scaling: N writers × M readers on inproc vs threaded vs process.

This is the benchmark the process driver exists for. The three real
deployments execute the *same* client programs against the *same* actor
code; the only variable is the execution substrate:

- ``inproc``   — one thread, sequential: the no-concurrency baseline;
- ``threaded`` — real client threads, one service thread per actor, but
  one GIL shared by everything: concurrency without parallelism;
- ``process``  — every provider actor in its own OS process behind the
  pickle-frame wire codec: concurrency *with* parallelism.

The workload runs in integrity mode (``page_checksums=True``): providers
checksum pages on put and verify on get with a pure-Python Fletcher-64
(see ``repro.providers.page.page_checksum``) standing in for the per-byte
CPU a real storage node burns on checksums/compression/encryption. That
work serializes on the GIL under the threaded driver no matter how many
actors exist — which is precisely why the paper-style throughput claims
need a process deployment to mean anything.

Readers run in the paper's steady-state cached-metadata regime (caches
pre-warmed over the window, like Figure 3(c)'s cached series), so the
measured op is version-resolve + one parallel page batch.

Numbers are host wall-clock (NOT simulated, NOT deterministic): results
are printed and written to ``benchmarks/out`` but deliberately **never
pinned in benchmarks/baseline/** — see the baseline README policy.

The threaded and process deployments are measured interleaved
(A/B/A/B…) and compared as the median of *paired per-round ratios* —
temporally adjacent rounds see the same host weather, so the pairing
cancels CPU-speed drift that would swamp a comparison of independent
medians. The headline assertion is the acceptance bar for the process
transport: on a multi-core host, process-deployment throughput must
exceed threaded-deployment throughput. Inproc runs once as the
no-concurrency reference line.
"""

from __future__ import annotations

import os
import statistics
import threading
import time

from repro.bench.figures import Series
from repro.core.config import DeploymentSpec
from repro.core.protocol import read_protocol
from repro.deploy.inproc import build_inproc
from repro.deploy.process import build_process
from repro.deploy.threaded import build_threaded
from repro.net.process import parallel_speedup_probe
from repro.metadata.cache import MetadataCache
from repro.util.sizes import KB, MB

PAGE = 64 * KB
SEGMENT = 16 * PAGE  # 1 MB per operation
WINDOW = 16 * MB  # pre-populated read window
TOTAL = 128 * MB

JOIN_TIMEOUT = 300.0


def _profile_knobs(profile):
    if profile.full:
        return dict(writers=1, readers=3, ops=16, repeats=7)
    return dict(writers=1, readers=3, ops=8, repeats=5)


def _spec():
    # one data worker per core (capped): on the process deployment each
    # becomes one OS process of genuinely parallel provider CPU
    n_data = max(2, min(os.cpu_count() or 2, 8))
    return DeploymentSpec(
        n_data=n_data, n_meta=2, page_checksums=True, cache_capacity=0
    )


class _Harness:
    """One live deployment plus its prepared blob and warm cache template."""

    def __init__(self, name, dep, concurrent):
        self.name = name
        self.dep = dep
        self.concurrent = concurrent
        setup = dep.client(f"{name}-setup")
        self.blob = setup.alloc(TOTAL, PAGE)
        self.geom = setup.open(self.blob)
        for off in range(WINDOW, 2 * WINDOW, SEGMENT):
            setup.write(self.blob, b"\x11" * SEGMENT, off)
        # steady-state cached readers (the paper's Fig 3(c) cached regime):
        # one warm sweep builds a template every reader clones at C speed
        self.template = MetadataCache(1 << 20)
        self.dep.driver.run(
            read_protocol(
                self.blob, self.geom, WINDOW, WINDOW, self.dep.router,
                cache=self.template,
            )
        )
        self.rep = 0

    def measure(self, writers, readers, ops) -> float:
        """One timed round; returns aggregate MB/s."""
        rep = self.rep = self.rep + 1
        blob, geom, dep = self.blob, self.geom, self.dep

        def reader(j):
            cache = MetadataCache(1 << 20)
            cache.preload_from(self.template)
            for k in range(ops):
                off = WINDOW + (j * SEGMENT + k * 3 * SEGMENT) % (WINDOW - SEGMENT)
                dep.driver.run(
                    read_protocol(blob, geom, off, SEGMENT, dep.router, cache=cache)
                )

        def writer(i):
            client = dep.client(f"{self.name}-w{i}-r{rep}")
            data = bytes([((rep * 16 + i) % 255) + 1]) * SEGMENT
            span = WINDOW // writers // PAGE * PAGE
            for k in range(ops):
                offset = i * span + (k * SEGMENT) % (span - SEGMENT + PAGE)
                client.write(blob, data, offset)

        programs = [lambda j=j: reader(j) for j in range(readers)]
        programs += [lambda i=i: writer(i) for i in range(writers)]
        start = time.perf_counter()
        if self.concurrent:
            threads = [
                threading.Thread(target=f, name=f"{self.name}-prog-{n}")
                for n, f in enumerate(programs)
            ]
            for t in threads:
                t.start()
            deadline = start + JOIN_TIMEOUT
            for t in threads:
                t.join(timeout=max(0.0, deadline - time.perf_counter()))
                assert not t.is_alive(), f"{self.name}: {t.name} stalled"
        else:
            for f in programs:
                f()
        wall = time.perf_counter() - start
        return (writers + readers) * ops * SEGMENT / MB / wall

    def close(self):
        close = getattr(self.dep, "close", None)
        if close is not None:
            close()


#: extra interleaved pairs measured one at a time while the paired-ratio
#: median is below this bar (adaptive sampling, pytest-benchmark style:
#: noisy hosts buy confidence with more rounds, quiet hosts stay fast)
_EXTEND_BELOW = 1.1
_MAX_EXTRA_PAIRS = 4


def run_transport_scaling(writers, readers, ops, repeats):
    spec = _spec()
    # effective parallel headroom *before* anything else runs: installed
    # cores are not schedulable cores on shared hosts, and the headline
    # assertion is only meaningful when the host can actually run two
    # processes at once
    headroom = parallel_speedup_probe()
    inproc = _Harness("inproc", build_inproc(spec), concurrent=False)
    threaded = _Harness("threaded", build_threaded(spec), concurrent=True)
    process = _Harness("process", build_process(spec), concurrent=True)
    try:
        samples = {"inproc": [], "threaded": [], "process": []}
        # inproc is the sequential reference: one round is representative
        samples["inproc"].append(inproc.measure(writers, readers, ops))
        # one untimed warmup round each: first-touch costs (allocator
        # growth, socket buffer autotuning) are not steady-state signal
        threaded.measure(writers, readers, 2)
        process.measure(writers, readers, 2)

        def pair():
            # interleaved: adjacent rounds see the same host weather
            samples["threaded"].append(threaded.measure(writers, readers, ops))
            samples["process"].append(process.measure(writers, readers, ops))

        for _ in range(repeats):
            pair()
        ratios = lambda: [  # noqa: E731 - tiny local recompute
            p / t for t, p in zip(samples["threaded"], samples["process"])
        ]
        extra = 0
        while statistics.median(ratios()) < _EXTEND_BELOW and extra < _MAX_EXTRA_PAIRS:
            pair()
            extra += 1
        medians = {name: statistics.median(s) for name, s in samples.items()}
        stats = process.dep.transport_stats()
    finally:
        inproc.close()
        threaded.close()
        process.close()
    return samples, medians, ratios(), stats, spec, headroom


def test_transport_scaling(benchmark, publish, publish_json, profile):
    knobs = _profile_knobs(profile)
    t0 = time.perf_counter()
    samples, medians, ratios, transport, spec, headroom = benchmark.pedantic(
        run_transport_scaling,
        kwargs=knobs,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0

    order = ["inproc", "threaded", "process"]
    ratio = statistics.median(ratios)
    lines = [
        "Transport scaling: "
        f"{knobs['writers']} writers x {knobs['readers']} readers, "
        f"{knobs['ops']} x {SEGMENT // MB} MB ops each, integrity checksums on, "
        f"{spec.n_data} data providers, {len(ratios)} interleaved rounds",
        "  (host wall-clock throughput — NOT pinned in the perf baseline)",
    ]
    for name in order:
        runs = "  ".join(f"{s:7.1f}" for s in samples[name])
        lines.append(f"  {name:>8}: {medians[name]:7.1f} MB/s   runs: {runs}")
    lines.append(
        f"  process/threaded, median of paired rounds: {ratio:.2f}x"
        "  (the GIL escape, paid for by the wire codec)"
    )
    lines.append(
        f"  effective parallel headroom probe: {headroom:.2f}x "
        f"(os.cpu_count={os.cpu_count()})"
    )
    publish("transport_scaling", "\n".join(lines))
    publish_json(
        "transport_scaling",
        "Transport scaling",
        [Series(name, list(range(1, len(samples[name]) + 1)), samples[name])
         for name in order],
        wall,
        {f"process_{k}": v for k, v in transport.items()},
    )

    # sanity: every deployment moved every byte
    for name in ("threaded", "process"):
        assert len(samples[name]) >= knobs["repeats"]
        assert all(s > 0 for s in samples[name])

    # the acceptance bar for the process transport: real parallelism must
    # beat GIL-bound threading on a multi-core host once provider-side
    # CPU work is on the table (median of paired interleaved rounds —
    # robust to the host speeding up or slowing down across the run).
    # The premise "multi-core host" is checked against *measured* headroom,
    # not the installed core count: a CI box whose second core is stolen
    # by a noisy neighbour is, for this claim, a single-core host.
    if headroom >= 1.4:
        assert statistics.median(ratios) > 1.0, (
            "process deployment did not out-scale threaded: "
            f"paired ratios {[f'{r:.2f}' for r in ratios]}, {medians}, "
            f"headroom {headroom:.2f}x"
        )
