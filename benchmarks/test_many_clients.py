"""Many-client tail latency: p50/p95/p99 vs concurrent asyncio clients.

The thread-per-client drivers stop at tens of clients; the asyncio
driver's reason to exist is the thousands-of-connections regime. This
bench runs N coroutine clients (one simulated open connection each)
against a *real* loopback TCP cluster and publishes Read/Write
p50/p95/p99 per tier, recorded through the same
:class:`repro.obs.hist.LatencyHistogram` the live telemetry scrape
serves — the tail claim is measured with the instrument operators get.

Tiers come from the profile: (256, 2048) by default, (256, 2048, 10240)
under ``REPRO_BENCH_FULL=1``, overridable via a comma-separated
``REPRO_BENCH_AIO_CLIENTS`` (CI's dedicated async step runs only 256).

Numbers are host wall-clock (NOT simulated, NOT deterministic): results
are printed and written to ``benchmarks/out`` but deliberately **never
pinned in benchmarks/baseline/** — see the baseline README policy. The
assertions pin *shape* only: quantile ordering per tier, and the
single-loop scheduler surviving every tier with every byte intact.
"""

import time

from repro.bench.figures import render_series_table
from repro.bench.many_clients import many_clients_quantiles


def test_many_clients_tail_latency(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        many_clients_quantiles,
        kwargs=dict(client_counts=profile.aio_clients),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "many_clients", render_series_table(fig, y_format=lambda v: f"{v:.2f}")
    )
    publish_json("many_clients", fig.figure_id, fig.series, wall, fig.counters)

    for kind in ("Read", "Write"):
        p50 = fig.series_by_label(f"{kind} p50").y
        p95 = fig.series_by_label(f"{kind} p95").y
        p99 = fig.series_by_label(f"{kind} p99").y
        assert len(p50) == len(profile.aio_clients)
        # quantile ordering at every tier
        for lo, mid, hi in zip(p50, p95, p99):
            assert 0 < lo <= mid <= hi, (kind, lo, mid, hi)
        # the scheduler claim: with all N clients in flight at once the
        # distribution is queueing delay, and a fair single-loop scheduler
        # keeps it *flat* — p99 within a small factor of the median at
        # every tier (a stalled loop or unfair wakeup order shows up here
        # long before it shows up in means)
        for n, lo, hi in zip(profile.aio_clients, p50, p99):
            assert hi < 5.0 * lo, (kind, n, lo, hi)

    # every tier's every operation completed and verified its bytes:
    # 1 write + 2 reads per client per tier, each op 1+ wire RPCs
    total_ops = sum(3 * n for n in profile.aio_clients)
    assert fig.counters["queue_submissions"] >= total_ops
    assert fig.counters["wire_rpcs_served"] == fig.counters["queue_submissions"]
    assert fig.counters["completion_wakeups"] == fig.counters["batches"]
