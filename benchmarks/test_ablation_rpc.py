"""Ablation C: the aggregating RPC framework on/off.

Paper §V.A: "there is a tradeoff between striping and streaming.
Dispersing data too fine grained might not pay off because of RPC call
overhead. For this reason we use [a] lightweight custom RPC framework,
which delays RPC calls to a single machine and streams all of them in a
single real RPC call." Disabling aggregation makes every tree-node put its
own wire RPC, each paying full fixed overhead.
"""

import time

from repro.bench.figures import ablation_rpc_aggregation, render_series_table
from repro.util.sizes import human_size


def test_ablation_rpc_aggregation(benchmark, publish, publish_json):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        ablation_rpc_aggregation, rounds=1, iterations=1, warmup_rounds=0
    )
    wall = time.perf_counter() - t0
    publish("ablation_rpc", render_series_table(fig, x_format=human_size))
    publish_json("ablation_rpc", fig.figure_id, fig.series, wall, fig.counters)

    aggregated = fig.series_by_label("aggregated RPCs").y
    naive = fig.series_by_label("one RPC per node").y

    # aggregation wins at every size, and the gap widens with node count
    for agg, plain in zip(aggregated, naive):
        assert agg < plain
    assert naive[-1] / aggregated[-1] > naive[0] / aggregated[0]
    # at 16 MB (hundreds of nodes) the win is large
    assert naive[-1] > 1.6 * aggregated[-1]
