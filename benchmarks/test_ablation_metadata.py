"""Ablation B: DHT-distributed metadata vs a centralized metadata server.

The paper distributes tree nodes over a DHT so metadata access scales with
providers. Concentrating all nodes on a single metadata server leaves the
protocol identical but turns that server's CPU into the bottleneck under
concurrent uncached readers.
"""

import time

from repro.bench.figures import ablation_metadata, render_series_table


def test_ablation_metadata(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        ablation_metadata,
        kwargs=dict(
            client_counts=profile.ablation_clients,
            iterations=profile.ablation_iterations,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "ablation_metadata", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("ablation_metadata", fig.figure_id, fig.series, wall, fig.counters)

    distributed = fig.series_by_label("distributed (20 providers)").y
    centralized = fig.series_by_label("centralized (1 provider)").y

    # with one reader the difference is modest
    assert centralized[0] > 0.5 * distributed[0]
    # under maximum concurrency the central server throttles readers
    assert centralized[-1] < 0.85 * distributed[-1]
    # distributed metadata keeps per-client bandwidth nearly flat
    assert distributed[-1] > 0.7 * distributed[0]
    # centralized degrades monotonically with concurrency
    assert all(b <= a * 1.05 for a, b in zip(centralized, centralized[1:]))
