"""Figure 3(a): metadata overhead for READs, single client.

Paper workload (§V.C): 1 TB blob, 64 KB pages; one client reads segments
of 64 KB … 16 MB; 10/20/40 nodes each hosting one data + one metadata
provider. Plotted: time for metadata to be completely read.

Paper shape: time grows with segment size; a larger provider count
*slightly increases* the client's cost (more connections to manage), and
the effect is small compared to the client's own per-node processing.
"""

import time

from benchmarks.conftest import roughly_nondecreasing
from repro.bench.figures import PAPER_PROVIDER_COUNTS, fig3a_metadata_read, render_series_table
from repro.util.sizes import human_size


def test_fig3a_metadata_read(benchmark, publish, publish_json):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        fig3a_metadata_read, rounds=1, iterations=1, warmup_rounds=0
    )
    wall = time.perf_counter() - t0
    publish("fig3a_metadata_read", render_series_table(fig, x_format=human_size))
    publish_json("fig3a_metadata_read", fig.figure_id, fig.series, wall, fig.counters)

    for n in PAPER_PROVIDER_COUNTS:
        ys = fig.series_by_label(f"{n} providers").y
        # grows with segment size, substantially over the sweep
        assert roughly_nondecreasing(ys)
        assert ys[-1] > 3 * ys[0]
        # magnitude: same regime as the paper's 0.005-0.12 s band
        assert all(0.001 < y < 0.5 for y in ys)

    # provider-count effect at the largest segment: more providers cost
    # slightly more (connection management), never less than ~equal
    y10 = fig.series_by_label("10 providers").y[-1]
    y20 = fig.series_by_label("20 providers").y[-1]
    y40 = fig.series_by_label("40 providers").y[-1]
    assert y40 > y10
    assert y40 >= y20 >= y10 * 0.98
    # ... and the effect is small (the paper's curves nearly coincide)
    assert y40 < 1.5 * y10
