"""Ablation A: lock-free versioning vs a global reader-writer lock.

The design's raison d'être: the same cluster and striping, with the only
difference being concurrency control. Under the global lock, concurrent
writers serialize end-to-end and per-writer bandwidth collapses as 1/n;
the paper's design keeps it nearly flat.
"""

import time

from repro.bench.figures import ablation_lockfree, render_series_table


def test_ablation_lockfree(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        ablation_lockfree,
        kwargs=dict(
            client_counts=profile.ablation_clients,
            iterations=profile.ablation_iterations,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "ablation_lockfree", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("ablation_lockfree", fig.figure_id, fig.series, wall, fig.counters)

    lockfree = fig.series_by_label("lock-free (this system)").y
    locked = fig.series_by_label("global RW lock").y
    n = fig.series_by_label("global RW lock").x

    # single writer: both systems are within the same physical envelope
    assert 0.5 < locked[0] / lockfree[0] < 2.0

    # the collapse: at the largest writer count the lock costs >= ~(n/2)x
    assert locked[-1] < lockfree[-1] / (n[-1] / 2)

    # lock-free stays nearly flat
    assert lockfree[-1] > 0.7 * lockfree[0]
    # locked bandwidth scales like 1/n (within 40% of the ideal collapse)
    ideal = locked[0] / n[-1]
    assert locked[-1] < ideal * 1.6
