"""Application benchmark: the supernova-detection campaign.

The paper reports no application-level numbers (the case study motivates
the system), so this bench records what a user of the release would check:
detection quality on synthetic truth and end-to-end pipeline throughput
through the blob service.
"""

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.sky.pipeline import SupernovaPipeline
from repro.sky.skymodel import SkyModel, SkySpec
from repro.util.sizes import human_size

EPOCHS = 8


def run_campaign():
    spec = SkySpec(tiles_x=3, tiles_y=3, seed=42)
    model = SkyModel.with_random_events(
        spec, n_supernovae=5, n_variables=5, epochs=EPOCHS
    )
    dep = build_inproc(DeploymentSpec(n_data=8, n_meta=8))
    pipe = SupernovaPipeline(model, dep.client("survey"))
    report = pipe.run_campaign(epochs=EPOCHS)
    return report


def test_app_supernova_campaign(benchmark, publish, publish_json):
    import time

    from repro.bench.figures import Series

    t0 = time.perf_counter()
    report = benchmark.pedantic(run_campaign, rounds=1, iterations=1,
                                warmup_rounds=0)
    wall = time.perf_counter() - t0
    publish_json(
        "app_supernovae",
        "App",
        [Series("quality", ["precision", "recall"],
                [report.precision, report.recall])],
        wall,
        counters={
            "bytes_written": report.bytes_written,
            "bytes_read": report.bytes_read,
            "claimed_supernovae": report.claimed_supernovae,
            "matched_supernovae": report.matched_supernovae,
        },
    )
    lines = [
        "Application: supernova detection campaign (3x3 tiles, 8 epochs)",
        f"  injected supernovae : {report.true_supernovae}",
        f"  claimed supernovae  : {report.claimed_supernovae}",
        f"  matched             : {report.matched_supernovae}",
        f"  precision           : {report.precision:.2f}",
        f"  recall              : {report.recall:.2f}",
        f"  tracks followed     : {len(report.tracks)}",
        f"  blob bytes written  : {human_size(report.bytes_written)}",
        f"  blob bytes read     : {human_size(report.bytes_read)}",
        f"  epoch versions      : {report.epoch_versions}",
    ]
    publish("app_supernovae", "\n".join(lines))

    assert report.recall >= 0.8
    assert report.precision >= 0.8
    # the pipeline genuinely exercised the blob service
    assert report.bytes_written == EPOCHS * 9 * 64 * 1024
    assert report.bytes_read > report.bytes_written  # scans re-read epochs
