"""Figure 3(b): metadata overhead for WRITEs, single client.

Same workload as 3(a) with writes. Plotted: time from version assignment
to all metadata tree nodes stored (includes building the woven subtree).

Paper shape: grows with segment size; **more metadata providers improve
the cost** — the aggregating RPC framework spreads the node puts over more
providers working in parallel (§V.C), the opposite provider-count effect
from Figure 3(a).
"""

import time

from benchmarks.conftest import roughly_nondecreasing
from repro.bench.figures import fig3b_metadata_write, render_series_table
from repro.util.sizes import human_size


def test_fig3b_metadata_write(benchmark, publish, publish_json):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        fig3b_metadata_write, rounds=1, iterations=1, warmup_rounds=0
    )
    wall = time.perf_counter() - t0
    publish("fig3b_metadata_write", render_series_table(fig, x_format=human_size))
    publish_json("fig3b_metadata_write", fig.figure_id, fig.series, wall, fig.counters)

    for label in ("10 providers", "20 providers", "40 providers"):
        ys = fig.series_by_label(label).y
        assert roughly_nondecreasing(ys, tolerance=0.2)  # small sizes are noisy
        assert ys[-1] > 3 * ys[0]
        assert all(0.001 < y < 0.5 for y in ys)

    # provider-count effect at the largest segment: more providers help
    y10 = fig.series_by_label("10 providers").y[-1]
    y20 = fig.series_by_label("20 providers").y[-1]
    y40 = fig.series_by_label("40 providers").y[-1]
    assert y10 > y40
    assert y10 >= y20 >= y40 * 0.98
