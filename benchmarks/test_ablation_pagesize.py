"""Ablation D: page-size sweep (the striping-grain tradeoff).

Finer pages disperse data over more providers but multiply metadata (more
tree nodes per segment); coarser pages shrink the tree but reduce transfer
parallelism. The paper settles on 64 KB pages; this sweep shows why the
metadata term dominates below that and flattens above.
"""

import time

from repro.bench.figures import ablation_pagesize, render_series_table
from repro.util.sizes import human_size


def test_ablation_pagesize(benchmark, publish, publish_json):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        ablation_pagesize, rounds=1, iterations=1, warmup_rounds=0
    )
    wall = time.perf_counter() - t0
    publish("ablation_pagesize", render_series_table(fig, x_format=human_size))
    publish_json("ablation_pagesize", fig.figure_id, fig.series, wall, fig.counters)

    writes = fig.series_by_label("WRITE").y
    reads = fig.series_by_label("READ (uncached)").y

    # coarser pages reduce end-to-end time (the metadata term shrinks ~2x
    # per doubling) until the data-transfer floor flattens the curve
    assert all(b < a * 1.03 for a, b in zip(writes, writes[1:]))
    assert all(b < a * 1.03 for a, b in zip(reads, reads[1:]))
    assert writes[1] < writes[0] and reads[1] < reads[0]

    # but with diminishing returns: the first doubling saves more than
    # the last one (the data-transfer floor takes over)
    assert (writes[0] - writes[1]) > (writes[-2] - writes[-1])
    assert (reads[0] - reads[1]) > (reads[-2] - reads[-1])

    # 16 KB pages pay a heavy metadata tax relative to 1 MB pages
    assert writes[0] > 1.5 * writes[-1]
