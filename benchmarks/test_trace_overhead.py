"""Span tracing overhead: off means *free*, on means *bounded*.

Tracing is only worth having default-available if (a) an untraced
workload pays nothing — the wire envelope stays the historical 2-tuple
and no span buffer is touched — and (b) a traced operation pays a
bounded, small cost for its timeline. Two pins:

- **Simulated: tracing is invisible to the model.** The identical
  workload with and without a trace open finishes at the identical
  simulated instant — span recording schedules no events and perturbs no
  modeled timing, so every published figure in this suite is unaffected
  by whether anyone was watching. The published series are bit-stable
  (``repro.bench.compare`` gates them at rtol 1e-9).
- **Threaded: bounded wall overhead.** Per-op wall time with a trace
  open stays within a generous factor of the untraced baseline on a real
  threaded deployment (buffers, ids and client-gap spans are the only
  extra work — all O(batches), none of it on the serving path).
"""

import statistics
import time

from repro.bench.figures import FigureData, Series, render_series_table
from repro.core.config import DeploymentSpec
from repro.deploy.simulated import SimDeployment
from repro.deploy.threaded import build_threaded
from repro.obs.spans import CALLER, trace_operation
from repro.util.sizes import KB, MB, TB

PAGE = 64 * KB
OPS = 20
#: traced-over-untraced per-op wall bound (generous: absolute cost is a
#: few µs of buffer appends per op against ~ms of real RPC wall time)
OVERHEAD_FACTOR = 5.0


def _sim_op_ms(traced: bool, ops: int = 8) -> list[float]:
    dep = SimDeployment(
        DeploymentSpec(n_data=4, n_meta=4, n_clients=1, cache_capacity=0)
    )
    blob = dep.alloc_blob(1 * TB, PAGE)
    client = dep.client(0)
    durations = []
    for i in range(ops):
        t0 = dep.sim.now
        proto = client.write_virtual_proto(blob, i * 8 * PAGE, 8 * PAGE)
        if traced:
            client.traced(proto, name=f"write-{i}")
        else:
            client.run(proto)
        durations.append((dep.sim.now - t0) * 1e3)
    if traced:
        assert dep.spans(), "traced sim runs must record a timeline"
    else:
        assert dep.spans() == []
    return durations


def test_sim_tracing_is_invisible_to_the_model(publish, publish_json):
    t0 = time.perf_counter()
    untraced = _sim_op_ms(traced=False)
    traced = _sim_op_ms(traced=True)
    wall = time.perf_counter() - t0
    # the whole point: bit-identical modeled time, span-for-span work
    assert traced == untraced
    fig = FigureData(
        figure_id="trace-overhead-sim",
        title="Simulated write duration, tracing off vs on",
        xlabel="op index",
        ylabel="sim ms",
        series=[
            Series("untraced", list(range(len(untraced))), untraced),
            Series("traced", list(range(len(traced))), traced),
        ],
        notes="series must be bit-identical: span recording schedules no "
        "simulator events",
    )
    publish(
        "trace_overhead", render_series_table(fig, y_format=lambda v: f"{v:.6f}")
    )
    publish_json("trace_overhead", fig.figure_id, fig.series, wall)


def _threaded_op_s(dep, blob, client, traced: bool) -> list[float]:
    durations = []
    for i in range(OPS):
        offset = (i % 8) * 4 * PAGE
        t0 = time.perf_counter()
        if traced:
            with trace_operation(f"bench-write-{i}"):
                client.write_virtual(blob, offset, 4 * PAGE)
        else:
            client.write_virtual(blob, offset, 4 * PAGE)
        durations.append(time.perf_counter() - t0)
    return durations


def test_threaded_tracing_overhead_is_bounded():
    with build_threaded(DeploymentSpec(n_data=2, n_meta=2)) as dep:
        client = dep.client("overhead")
        blob = client.alloc(4 * MB, PAGE)
        _threaded_op_s(dep, blob, client, traced=False)  # warm-up
        CALLER.clear()
        untraced = _threaded_op_s(dep, blob, client, traced=False)
        assert CALLER.snapshot() == []  # off really is off
        traced = _threaded_op_s(dep, blob, client, traced=True)
        spans = CALLER.snapshot()
    assert spans, "traced ops must have produced caller spans"
    assert {s["kind"] for s in spans} == {"op", "client", "rpc"}
    base = statistics.median(untraced)
    cost = statistics.median(traced)
    assert cost < OVERHEAD_FACTOR * base + 1e-3, (
        f"median traced op {cost * 1e3:.3f} ms vs untraced "
        f"{base * 1e3:.3f} ms exceeds the {OVERHEAD_FACTOR}x bound"
    )
