"""Figure 3(c): throughput of concurrent clients.

Paper workload (§V.D): 1 TB blob, 64 KB pages, 20 provider nodes; up to 20
concurrent clients loop over disjoint 8 MB segments within a 1 GB window.
Series: uncached Read (the paper's worst case), Write, and Read with the
client-side metadata cache.

Paper shape: "the per client bandwidth hardly decreases when the number of
concurrent clients significantly increases"; cached reads are the fastest;
everything lives in the 50-85 MB/s band against a 117.5 MB/s wire.
"""

import threading
import time

from repro.bench.figures import (
    FigureData,
    Series,
    fig3c_throughput,
    render_series_table,
)


def test_fig3c_throughput(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        fig3c_throughput,
        kwargs=dict(
            client_counts=profile.fig3c_clients,
            iterations=profile.fig3c_iterations,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "fig3c_throughput", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("fig3c_throughput", fig.figure_id, fig.series, wall, fig.counters)

    read = fig.series_by_label("Read").y
    write = fig.series_by_label("Write").y
    cached = fig.series_by_label("Read (cached metadata)").y

    # series ordering at every client count: cached reads fastest, then
    # writes, then uncached reads (metadata descent on the critical path)
    for r, w, c in zip(read, write, cached):
        assert c > w > r

    # the headline: per-client bandwidth hardly decreases 1 -> 20 clients
    for ys in (read, write, cached):
        assert ys[-1] > 0.72 * ys[0]

    # magnitudes in the paper's regime (50-85 MB/s band, 117.5 MB/s wire)
    assert all(40 < y < 100 for y in read + write + cached)
    # cached reads approach but never exceed the effective wire ceiling
    assert all(y < 95 for y in cached)


def test_fig3c_lsst_sweep(publish, publish_json, profile):
    """LSST-scale concurrency: the paper stops at 20 clients; survey-scale
    ingest (arXiv:0811.0167) brings hundreds. Simulated sweep past the
    paper's grid on the same 20-provider testbed, full profile only:
    per-client bandwidth may fall as the cluster saturates, but aggregate
    throughput must keep growing — saturation, never collapse."""
    import pytest

    if not profile.fig3c_lsst_clients:
        pytest.skip("LSST sweep runs under REPRO_BENCH_FULL=1")

    t0 = time.perf_counter()
    fig = fig3c_throughput(
        client_counts=profile.fig3c_lsst_clients,
        iterations=profile.fig3c_lsst_iterations,
        kinds=("read", "write"),
    )
    wall = time.perf_counter() - t0
    fig.figure_id = "Fig 3(c) LSST"
    fig.title = "Throughput beyond the paper's grid (LSST-scale clients)"
    fig.paper = []  # no published curve past 20 clients
    publish("fig3c_lsst", render_series_table(fig, y_format=lambda v: f"{v:.1f}"))
    publish_json("fig3c_lsst", fig.figure_id, fig.series, wall, fig.counters)

    clients = list(profile.fig3c_lsst_clients)
    for label in ("Read", "Write"):
        ys = fig.series_by_label(label).y
        # per-client bandwidth under saturation: non-increasing (to noise)
        assert all(b <= a * 1.05 for a, b in zip(ys, ys[1:])), (label, ys)
        # no collapse: even at max concurrency every client makes progress
        assert ys[-1] > 10, (label, ys)
        # aggregate throughput keeps growing with offered load
        aggregate = [n * y for n, y in zip(clients, ys)]
        assert all(b >= a * 0.95 for a, b in zip(aggregate, aggregate[1:])), (
            label, aggregate,
        )


def test_fig3c_provider_scaling(publish, publish_json, profile):
    """Provider scaling beyond the paper's testbed: the paper fixes 20
    provider nodes and sweeps clients; the cluster direction (and the
    TCP deployment's reason to exist) is the opposite sweep — hold the
    paper's 20-client load and grow the cluster to 40/80/160 nodes.
    At this load the 40-node cluster is already uncontended (20 clients
    over 40+ providers), so the claim worth pinning is *stability*:
    per-client bandwidth holds flat as the cluster grows 2x-8x — no
    collapse from deeper dispersal, no metadata hot spot emerging with
    node count. Full profile only."""
    import pytest

    if not profile.fig3c_provider_grid:
        pytest.skip("provider-scaling sweep runs under REPRO_BENCH_FULL=1")

    grid = list(profile.fig3c_provider_grid)
    clients = 20
    t0 = time.perf_counter()
    fig = FigureData(
        figure_id="Fig 3(c) providers",
        title=f"Per-client bandwidth vs cluster size ({clients} clients)",
        xlabel="provider nodes (data + metadata each)",
        ylabel="avg bandwidth per client (MB/s)",
        notes=f"paper's fig3c workload at {clients} clients; provider sweep",
    )
    ys_by_label: dict[str, list[float]] = {"Read": [], "Write": []}
    for providers in grid:
        point = fig3c_throughput(
            client_counts=(clients,),
            iterations=profile.fig3c_provider_iterations,
            providers=providers,
            kinds=("read", "write"),
        )
        for label in ys_by_label:
            ys_by_label[label].append(point.series_by_label(label).y[0])
        fig.counters = {
            k: fig.counters.get(k, 0) + v for k, v in point.counters.items()
        }
    for label, ys in ys_by_label.items():
        fig.series.append(Series(label=label, x=grid, y=ys))
    wall = time.perf_counter() - t0
    publish(
        "fig3c_providers", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("fig3c_providers", fig.figure_id, fig.series, wall, fig.counters)

    for label in ("Read", "Write"):
        ys = fig.series_by_label(label).y
        # stability: a fixed offered load holds flat (±10%) as the
        # cluster grows from 2x to 8x the paper's node count
        assert max(ys) <= min(ys) * 1.10, (label, ys)
        # and stays within the paper's bandwidth regime
        assert all(40 < y < 100 for y in ys), (label, ys)
    # series ordering survives the sweep: uncached reads pay the
    # metadata descent at every cluster size
    reads = fig.series_by_label("Read").y
    writes = fig.series_by_label("Write").y
    assert all(w > r for w, r in zip(writes, reads))


def test_fig3c_dynamic_rebalance(publish, publish_json, profile):
    """Dynamic variant: per-client read bandwidth *through* an elastic
    40 -> 41 -> 39 membership change.

    A threaded hash_ring cluster serves continuous reads while a 41st
    provider joins mid-run, pages migrate to their new hash homes, and
    then two providers are drained back out (finishing at 39 nodes).
    Every read is verified against the reference bytes throughout —
    relocation-aware reads cover pages mid-flight.

    Numbers are host wall-clock (NOT simulated): the windowed series is
    published under ``benchmarks/out`` but never pinned in
    ``benchmarks/baseline`` (see the baseline README policy). The
    asserted claim is the *shape*: the rebalance dips per-client
    bandwidth by at most a generous bound versus the static phase, and
    it fully recovers once the cluster converges.
    """
    from repro.core.config import DeploymentSpec
    from repro.deploy.threaded import build_threaded
    from repro.providers.rebalance import drain_provider, execute_rebalance
    from repro.util.sizes import KB, MB

    page = 64 * KB
    segment = 8 * page  # 512 KB per op
    window = 8 * MB
    nsegs = window // segment
    readers = 2
    ops = 6 if profile.full else 3  # segment reads per client per window
    windows_per_phase = 4 if profile.full else 3

    def pattern(i: int) -> bytes:
        return bytes([i % 251 + 1]) * segment

    t0 = time.perf_counter()
    dep = build_threaded(
        DeploymentSpec(n_data=40, n_meta=8, strategy="hash_ring",
                       cache_capacity=0)
    )
    try:
        setup = dep.client("populator")
        blob = setup.alloc(64 * MB, page)
        for i in range(nsegs):
            setup.write(blob, pattern(i), i * segment)

        clients = [dep.client(f"reader-{r}") for r in range(readers)]

        def read_loop(c, r, out):
            for k in range(ops):
                i = (r * ops + k) % nsegs
                got = c.read_bytes(blob, i * segment, segment)
                assert got == pattern(i), f"segment {i} corrupted mid-churn"
            out.append(ops * segment)

        def measure_window() -> float:
            t = time.perf_counter()
            done: list[int] = []
            threads = [
                threading.Thread(target=read_loop, args=(c, r, done))
                for r, c in enumerate(clients)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=120.0)
            assert len(done) == readers, "reader stalled mid-churn"
            return (sum(done) / readers / MB) / (time.perf_counter() - t)

        phases: list[tuple[str, float]] = []

        def run_phase(label: str, n: int) -> list[float]:
            ys = [measure_window() for _ in range(n)]
            phases.extend((label, y) for y in ys)
            return ys

        static = run_phase("static-40", windows_per_phase)

        # membership change, concurrent with the measured reads
        churn_error: list[BaseException] = []

        def churn():
            try:
                new_id = dep.add_data_provider()  # 40 -> 41
                done = execute_rebalance(dep.driver, sorted(dep.data))
                assert done["committed"]
                for victim in (new_id, 0):  # 41 -> 39
                    gone = drain_provider(
                        dep.driver, sorted(dep.data), victim
                    )
                    assert gone["committed"]
                    dep.data.pop(victim)
            except BaseException as exc:  # surfaced after the join below
                churn_error.append(exc)

        churner = threading.Thread(target=churn)
        churner.start()
        run_phase("rebalance", windows_per_phase)
        churner.join(timeout=120.0)
        assert not churner.is_alive(), "rebalance wedged"
        assert not churn_error, churn_error
        assert len(dep.data) == 39 and sorted(dep.pm.providers()) == sorted(
            dep.data
        )

        recovered = run_phase("static-39", windows_per_phase)
    finally:
        dep.close()
    wall = time.perf_counter() - t0

    fig = FigureData(
        figure_id="Fig 3(c) dynamic",
        title="Per-client read bandwidth through a 40->41->39 rebalance",
        xlabel="measurement window",
        ylabel="avg bandwidth per client (MB/s)",
        notes="threaded driver, host wall-clock (never pinned); phases: "
        + ", ".join(sorted({label for label, _ in phases})),
    )
    fig.series.append(
        Series(
            label="Read (through rebalance)",
            x=list(range(len(phases))),
            y=[y for _, y in phases],
        )
    )
    publish(
        "fig3c_dynamic", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("fig3c_dynamic", fig.figure_id, fig.series, wall)

    # the shape claims: no collapse during the rebalance, full recovery
    # after it (bounds are generous — this is host-timed, not simulated)
    floor = 0.2 * (sum(static) / len(static))
    assert all(y > floor for _, y in phases), (floor, phases)
    assert (
        sum(recovered) / len(recovered) > 0.5 * sum(static) / len(static)
    ), (static, recovered)
