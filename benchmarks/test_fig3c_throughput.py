"""Figure 3(c): throughput of concurrent clients.

Paper workload (§V.D): 1 TB blob, 64 KB pages, 20 provider nodes; up to 20
concurrent clients loop over disjoint 8 MB segments within a 1 GB window.
Series: uncached Read (the paper's worst case), Write, and Read with the
client-side metadata cache.

Paper shape: "the per client bandwidth hardly decreases when the number of
concurrent clients significantly increases"; cached reads are the fastest;
everything lives in the 50-85 MB/s band against a 117.5 MB/s wire.
"""

import time

from repro.bench.figures import fig3c_throughput, render_series_table


def test_fig3c_throughput(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        fig3c_throughput,
        kwargs=dict(
            client_counts=profile.fig3c_clients,
            iterations=profile.fig3c_iterations,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "fig3c_throughput", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("fig3c_throughput", fig.figure_id, fig.series, wall, fig.counters)

    read = fig.series_by_label("Read").y
    write = fig.series_by_label("Write").y
    cached = fig.series_by_label("Read (cached metadata)").y

    # series ordering at every client count: cached reads fastest, then
    # writes, then uncached reads (metadata descent on the critical path)
    for r, w, c in zip(read, write, cached):
        assert c > w > r

    # the headline: per-client bandwidth hardly decreases 1 -> 20 clients
    for ys in (read, write, cached):
        assert ys[-1] > 0.72 * ys[0]

    # magnitudes in the paper's regime (50-85 MB/s band, 117.5 MB/s wire)
    assert all(40 < y < 100 for y in read + write + cached)
    # cached reads approach but never exceed the effective wire ceiling
    assert all(y < 95 for y in cached)


def test_fig3c_lsst_sweep(publish, publish_json, profile):
    """LSST-scale concurrency: the paper stops at 20 clients; survey-scale
    ingest (arXiv:0811.0167) brings hundreds. Simulated sweep past the
    paper's grid on the same 20-provider testbed, full profile only:
    per-client bandwidth may fall as the cluster saturates, but aggregate
    throughput must keep growing — saturation, never collapse."""
    import pytest

    if not profile.fig3c_lsst_clients:
        pytest.skip("LSST sweep runs under REPRO_BENCH_FULL=1")

    t0 = time.perf_counter()
    fig = fig3c_throughput(
        client_counts=profile.fig3c_lsst_clients,
        iterations=profile.fig3c_lsst_iterations,
        kinds=("read", "write"),
    )
    wall = time.perf_counter() - t0
    fig.figure_id = "Fig 3(c) LSST"
    fig.title = "Throughput beyond the paper's grid (LSST-scale clients)"
    fig.paper = []  # no published curve past 20 clients
    publish("fig3c_lsst", render_series_table(fig, y_format=lambda v: f"{v:.1f}"))
    publish_json("fig3c_lsst", fig.figure_id, fig.series, wall, fig.counters)

    clients = list(profile.fig3c_lsst_clients)
    for label in ("Read", "Write"):
        ys = fig.series_by_label(label).y
        # per-client bandwidth under saturation: non-increasing (to noise)
        assert all(b <= a * 1.05 for a, b in zip(ys, ys[1:])), (label, ys)
        # no collapse: even at max concurrency every client makes progress
        assert ys[-1] > 10, (label, ys)
        # aggregate throughput keeps growing with offered load
        aggregate = [n * y for n, y in zip(clients, ys)]
        assert all(b >= a * 0.95 for a, b in zip(aggregate, aggregate[1:])), (
            label, aggregate,
        )
