"""Figure 3(c): throughput of concurrent clients.

Paper workload (§V.D): 1 TB blob, 64 KB pages, 20 provider nodes; up to 20
concurrent clients loop over disjoint 8 MB segments within a 1 GB window.
Series: uncached Read (the paper's worst case), Write, and Read with the
client-side metadata cache.

Paper shape: "the per client bandwidth hardly decreases when the number of
concurrent clients significantly increases"; cached reads are the fastest;
everything lives in the 50-85 MB/s band against a 117.5 MB/s wire.
"""

import time

from repro.bench.figures import (
    FigureData,
    Series,
    fig3c_throughput,
    render_series_table,
)


def test_fig3c_throughput(benchmark, publish, publish_json, profile):
    t0 = time.perf_counter()
    fig = benchmark.pedantic(
        fig3c_throughput,
        kwargs=dict(
            client_counts=profile.fig3c_clients,
            iterations=profile.fig3c_iterations,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    wall = time.perf_counter() - t0
    publish(
        "fig3c_throughput", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("fig3c_throughput", fig.figure_id, fig.series, wall, fig.counters)

    read = fig.series_by_label("Read").y
    write = fig.series_by_label("Write").y
    cached = fig.series_by_label("Read (cached metadata)").y

    # series ordering at every client count: cached reads fastest, then
    # writes, then uncached reads (metadata descent on the critical path)
    for r, w, c in zip(read, write, cached):
        assert c > w > r

    # the headline: per-client bandwidth hardly decreases 1 -> 20 clients
    for ys in (read, write, cached):
        assert ys[-1] > 0.72 * ys[0]

    # magnitudes in the paper's regime (50-85 MB/s band, 117.5 MB/s wire)
    assert all(40 < y < 100 for y in read + write + cached)
    # cached reads approach but never exceed the effective wire ceiling
    assert all(y < 95 for y in cached)


def test_fig3c_lsst_sweep(publish, publish_json, profile):
    """LSST-scale concurrency: the paper stops at 20 clients; survey-scale
    ingest (arXiv:0811.0167) brings hundreds. Simulated sweep past the
    paper's grid on the same 20-provider testbed, full profile only:
    per-client bandwidth may fall as the cluster saturates, but aggregate
    throughput must keep growing — saturation, never collapse."""
    import pytest

    if not profile.fig3c_lsst_clients:
        pytest.skip("LSST sweep runs under REPRO_BENCH_FULL=1")

    t0 = time.perf_counter()
    fig = fig3c_throughput(
        client_counts=profile.fig3c_lsst_clients,
        iterations=profile.fig3c_lsst_iterations,
        kinds=("read", "write"),
    )
    wall = time.perf_counter() - t0
    fig.figure_id = "Fig 3(c) LSST"
    fig.title = "Throughput beyond the paper's grid (LSST-scale clients)"
    fig.paper = []  # no published curve past 20 clients
    publish("fig3c_lsst", render_series_table(fig, y_format=lambda v: f"{v:.1f}"))
    publish_json("fig3c_lsst", fig.figure_id, fig.series, wall, fig.counters)

    clients = list(profile.fig3c_lsst_clients)
    for label in ("Read", "Write"):
        ys = fig.series_by_label(label).y
        # per-client bandwidth under saturation: non-increasing (to noise)
        assert all(b <= a * 1.05 for a, b in zip(ys, ys[1:])), (label, ys)
        # no collapse: even at max concurrency every client makes progress
        assert ys[-1] > 10, (label, ys)
        # aggregate throughput keeps growing with offered load
        aggregate = [n * y for n, y in zip(clients, ys)]
        assert all(b >= a * 0.95 for a, b in zip(aggregate, aggregate[1:])), (
            label, aggregate,
        )


def test_fig3c_provider_scaling(publish, publish_json, profile):
    """Provider scaling beyond the paper's testbed: the paper fixes 20
    provider nodes and sweeps clients; the cluster direction (and the
    TCP deployment's reason to exist) is the opposite sweep — hold the
    paper's 20-client load and grow the cluster to 40/80/160 nodes.
    At this load the 40-node cluster is already uncontended (20 clients
    over 40+ providers), so the claim worth pinning is *stability*:
    per-client bandwidth holds flat as the cluster grows 2x-8x — no
    collapse from deeper dispersal, no metadata hot spot emerging with
    node count. Full profile only."""
    import pytest

    if not profile.fig3c_provider_grid:
        pytest.skip("provider-scaling sweep runs under REPRO_BENCH_FULL=1")

    grid = list(profile.fig3c_provider_grid)
    clients = 20
    t0 = time.perf_counter()
    fig = FigureData(
        figure_id="Fig 3(c) providers",
        title=f"Per-client bandwidth vs cluster size ({clients} clients)",
        xlabel="provider nodes (data + metadata each)",
        ylabel="avg bandwidth per client (MB/s)",
        notes=f"paper's fig3c workload at {clients} clients; provider sweep",
    )
    ys_by_label: dict[str, list[float]] = {"Read": [], "Write": []}
    for providers in grid:
        point = fig3c_throughput(
            client_counts=(clients,),
            iterations=profile.fig3c_provider_iterations,
            providers=providers,
            kinds=("read", "write"),
        )
        for label in ys_by_label:
            ys_by_label[label].append(point.series_by_label(label).y[0])
        fig.counters = {
            k: fig.counters.get(k, 0) + v for k, v in point.counters.items()
        }
    for label, ys in ys_by_label.items():
        fig.series.append(Series(label=label, x=grid, y=ys))
    wall = time.perf_counter() - t0
    publish(
        "fig3c_providers", render_series_table(fig, y_format=lambda v: f"{v:.1f}")
    )
    publish_json("fig3c_providers", fig.figure_id, fig.series, wall, fig.counters)

    for label in ("Read", "Write"):
        ys = fig.series_by_label(label).y
        # stability: a fixed offered load holds flat (±10%) as the
        # cluster grows from 2x to 8x the paper's node count
        assert max(ys) <= min(ys) * 1.10, (label, ys)
        # and stays within the paper's bandwidth regime
        assert all(40 < y < 100 for y in ys), (label, ys)
    # series ordering survives the sweep: uncached reads pay the
    # metadata descent at every cluster size
    reads = fig.series_by_label("Read").y
    writes = fig.series_by_label("Write").y
    assert all(w > r for w, r in zip(writes, reads))
