"""Stateful property testing: the Chord ring vs a dict, under churn.

Random sequences of puts, gets, deletes, joins, graceful leaves and
single-node crashes (replication 3 re-establishes replicas after every
membership change, so sequential single crashes never lose data). The
ring must remain indistinguishable from a plain dictionary and its
topology must stay consistent after every step.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.dht.hashing import key_id
from repro.dht.ring import ChordRing
from repro.errors import NodeMissing


class ChordMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.ring = ChordRing([f"seed-{i}" for i in range(4)], replication=3)
        self.model: dict = {}
        self.counter = 0

    # -- rules -------------------------------------------------------------

    @rule(key=st.integers(min_value=0, max_value=40), value=st.integers())
    def put(self, key: int, value: int) -> None:
        self.ring.put(("k", key), value)
        self.model[("k", key)] = value

    @rule(key=st.integers(min_value=0, max_value=40))
    def get(self, key: int) -> None:
        if ("k", key) in self.model:
            assert self.ring.get(("k", key)) == self.model[("k", key)]
        else:
            try:
                self.ring.get(("k", key))
            except NodeMissing:
                return
            raise AssertionError(f"ghost key {key} present in ring")

    @rule(key=st.integers(min_value=0, max_value=40))
    def delete(self, key: int) -> None:
        removed = self.ring.delete(("k", key))
        if ("k", key) in self.model:
            assert removed >= 1
            del self.model[("k", key)]
        else:
            assert removed == 0

    @precondition(lambda self: len(self.ring) < 10)
    @rule()
    def node_joins(self) -> None:
        self.counter += 1
        self.ring.add_node(f"join-{self.counter}")

    @precondition(lambda self: len(self.ring) > 4)
    @rule(pick=st.randoms(use_true_random=False))
    def node_leaves_gracefully(self, pick) -> None:
        name = pick.choice(sorted(
            n for n, node in self.ring.nodes.items() if node.alive
        ))
        self.ring.remove_node(name, graceful=True)

    @precondition(lambda self: len(self.ring) > 4)
    @rule(pick=st.randoms(use_true_random=False))
    def node_crashes(self, pick) -> None:
        name = pick.choice(sorted(
            n for n, node in self.ring.nodes.items() if node.alive
        ))
        self.ring.remove_node(name, graceful=False)

    # -- invariants -----------------------------------------------------------

    @invariant()
    def ring_topology_consistent(self) -> None:
        assert self.ring._consistent()

    @invariant()
    def all_model_keys_readable(self) -> None:
        for key, value in self.model.items():
            assert self.ring.get(key) == value

    @invariant()
    def replication_factor_respected(self) -> None:
        live = [n for n in self.ring.nodes.values() if n.alive]
        want = min(self.ring.replication, len(live))
        for key in self.model:
            holders = [n for n in live if key in n.store]
            assert len(holders) == want, f"{key}: {len(holders)} copies"

    @invariant()
    def keys_live_on_owner_successors(self) -> None:
        for key in self.model:
            owner = self.ring.owner_of(key)
            assert key in owner.store
            assert owner.owns(key_id(key))


TestChordStateMachine = ChordMachine.TestCase
TestChordStateMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
