"""The paper's §II contract, end-to-end through the in-process deployment.

These are the semantic acceptance tests: WRITE creates successive
snapshots, READ(v) sees exactly the prefix of patches up to v, version 0
is the all-zero string, and snapshots share structure.
"""

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.errors import OutOfBounds, VersionNotPublished
from repro.util.sizes import KB, MB
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


class TestWriteSemantics:
    def test_versions_start_at_one_and_increment(self, client, blob):
        r1 = client.write(blob, pages(1, b"a"), 0)
        r2 = client.write(blob, pages(1, b"b"), 0)
        assert (r1.version, r2.version) == (1, 2)
        assert r1.published and r2.published

    def test_write_returns_node_page_counts(self, client, blob, small_geom):
        r = client.write(blob, pages(4, b"a"), 0)
        assert r.pages_written == 4
        assert r.nodes_written == small_geom.count_visit_nodes(
            __import__("repro.util.intervals", fromlist=["Interval"]).Interval(0, 4 * SMALL_PAGE)
        )

    def test_unaligned_write_rejected(self, client, blob):
        with pytest.raises(OutOfBounds):
            client.write(blob, pages(1), 100)
        with pytest.raises(ValueError):
            client.write(blob, b"abc", 0)

    def test_write_past_end_rejected(self, client, blob):
        with pytest.raises(OutOfBounds):
            client.write(blob, pages(2), SMALL_TOTAL - SMALL_PAGE)


class TestReadSemantics:
    def test_version_zero_is_all_zeros(self, client, blob):
        assert client.read_bytes(blob, 0, 64, version=0) == bytes(64)
        assert client.read_bytes(blob, SMALL_TOTAL - 10, 10, version=0) == bytes(10)

    def test_read_reflects_prefix_of_patches(self, client, blob):
        client.write(blob, pages(1, b"a"), 0)  # v1
        client.write(blob, pages(1, b"b"), 0)  # v2
        client.write(blob, pages(1, b"c"), SMALL_PAGE)  # v3
        assert client.read_bytes(blob, 0, 4, version=1) == b"aaaa"
        assert client.read_bytes(blob, 0, 4, version=2) == b"bbbb"
        assert client.read_bytes(blob, SMALL_PAGE, 4, version=2) == bytes(4)
        assert client.read_bytes(blob, SMALL_PAGE, 4, version=3) == b"cccc"

    def test_read_default_is_latest(self, client, blob):
        client.write(blob, pages(1, b"a"), 0)
        client.write(blob, pages(1, b"b"), 0)
        res = client.read(blob, 0, 4)
        assert res.data == b"bbbb"
        assert res.version == 2 and res.latest == 2

    def test_read_unpublished_fails(self, client, blob):
        client.write(blob, pages(1), 0)
        with pytest.raises(VersionNotPublished):
            client.read(blob, 0, 4, version=5)

    def test_read_sub_page_and_straddling(self, client, blob):
        client.write(blob, pages(2, b"ab"), 0)
        # interior of a page
        got = client.read_bytes(blob, 100, 6, version=1)
        assert got == (b"ab" * 3)[:6]
        # straddling the page boundary
        got = client.read_bytes(blob, SMALL_PAGE - 2, 4, version=1)
        assert len(got) == 4

    def test_read_mixes_zero_and_written_regions(self, client, blob):
        client.write(blob, pages(1, b"x"), 2 * SMALL_PAGE)
        res = client.read(blob, SMALL_PAGE, 3 * SMALL_PAGE, version=1)
        assert res.data[:SMALL_PAGE] == bytes(SMALL_PAGE)
        assert res.data[SMALL_PAGE : 2 * SMALL_PAGE] == pages(1, b"x")
        assert res.data[2 * SMALL_PAGE :] == bytes(SMALL_PAGE)
        assert res.zero_bytes == 2 * SMALL_PAGE

    def test_all_reads_of_same_version_identical(self, client, blob):
        """Paper §II: all non-failing READs of (v, offset, size) yield the
        same substring, regardless of later writes."""
        client.write(blob, pages(4, b"1"), 0)
        before = client.read_bytes(blob, 0, 4 * SMALL_PAGE, version=1)
        for fill in (b"2", b"3", b"4"):
            client.write(blob, pages(4, fill), 0)
        after = client.read_bytes(blob, 0, 4 * SMALL_PAGE, version=1)
        assert before == after

    def test_out_of_bounds_read(self, client, blob):
        with pytest.raises(OutOfBounds):
            client.read(blob, SMALL_TOTAL, 1)
        with pytest.raises(OutOfBounds):
            client.read(blob, 0, 0)

    def test_vr_reports_latest(self, client, blob):
        client.write(blob, pages(1), 0)
        client.write(blob, pages(1), 0)
        res = client.read(blob, 0, 8, version=1)
        assert res.latest == 2  # vr >= v


class TestStructuralSharing:
    def test_unpatched_subtrees_shared(self, dep, client, blob, small_geom):
        """A second small write adds only one root-to-leaf path of nodes."""
        client.write(blob, pages(small_geom.page_count, b"z"), 0)  # full
        base_nodes = dep.total_nodes_stored()
        client.write(blob, pages(1, b"y"), 0)
        added = dep.total_nodes_stored() - base_nodes
        assert added == small_geom.depth + 1

    def test_pages_never_rewritten(self, dep, client, blob):
        client.write(blob, pages(2, b"a"), 0)
        stored = dep.total_pages_stored()
        client.write(blob, pages(2, b"b"), 0)
        assert dep.total_pages_stored() == stored + 2  # fresh pages only

    def test_page_dispersal_across_providers(self, dep, client, blob):
        client.write(blob, pages(4, b"a"), 0)
        counts = [p.page_count for p in dep.data.values()]
        assert counts == [1, 1, 1, 1]  # round robin over 4 providers


class TestUnalignedWriteExtension:
    def test_small_write_inside_page(self, client, blob):
        client.write(blob, pages(2, b"a"), 0)
        client.write_unaligned(blob, b"XYZ", 10)
        got = client.read_bytes(blob, 0, 20)
        assert got == pages(1, b"a")[:10] + b"XYZ" + pages(1, b"a")[13:20]

    def test_straddling_write(self, client, blob):
        client.write(blob, pages(2, b"a"), 0)
        client.write_unaligned(blob, b"Z" * 8, SMALL_PAGE - 4)
        got = client.read_bytes(blob, SMALL_PAGE - 5, 10)
        assert got == b"a" + b"Z" * 8 + b"a"

    def test_against_pinned_base_version(self, client, blob):
        client.write(blob, pages(1, b"a"), 0)  # v1
        client.write(blob, pages(1, b"b"), 0)  # v2
        client.write_unaligned(blob, b"!!", 0, base_version=1)  # v3
        got = client.read_bytes(blob, 0, 6)
        assert got == b"!!aaaa"  # boundary bytes from v1, not v2

    def test_empty_rejected(self, client, blob):
        with pytest.raises(ValueError):
            client.write_unaligned(blob, b"", 0)


class TestClientFacade:
    def test_open_learns_geometry(self, dep, blob):
        other = dep.client("second")
        geom = other.open(blob)
        assert geom.total_size == SMALL_TOTAL
        assert geom.pagesize == SMALL_PAGE

    def test_latest(self, client, blob):
        assert client.latest(blob) == 0
        client.write(blob, pages(1), 0)
        assert client.latest(blob) == 1

    def test_cache_effectiveness_on_reread(self, dep, blob):
        c = dep.client("cached-reader")
        c.write(blob, pages(4, b"m"), 0)
        first = c.read(blob, 0, 4 * SMALL_PAGE)
        again = c.read(blob, 0, 4 * SMALL_PAGE)
        assert first.nodes_fetched > 0
        assert again.nodes_fetched == 0  # fully served from cache
        assert again.cache_hits == first.nodes_fetched + first.cache_hits
        assert again.data == first.data

    def test_cacheless_client(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0))
        c = dep.client("nocache")
        blob = c.alloc(SMALL_TOTAL, SMALL_PAGE)
        c.write(blob, pages(1), 0)
        r1 = c.read(blob, 0, 8)
        r2 = c.read(blob, 0, 8)
        assert r1.cache_hits == r2.cache_hits == 0
        assert r2.nodes_fetched == r1.nodes_fetched > 0
