"""Detection (differencing + source extraction) and classification."""

import numpy as np
import pytest
import scipy.ndimage

from repro.sky.detect import (
    Candidate,
    detect_sources,
    difference_image,
    label_components,
    match_candidate,
    robust_sigma,
)
from repro.sky.lightcurve import (
    NOISE,
    SUPERNOVA,
    VARIABLE,
    classify_lightcurve,
    curve_features,
    extract_flux,
)
from repro.sky.skymodel import SkyModel, SkySpec, SupernovaEvent
from repro.util.rng import substream


class TestDifferenceImage:
    def test_signed_result(self):
        cur = np.full((4, 4), 10, dtype=np.uint16)
        ref = np.full((4, 4), 20, dtype=np.uint16)
        diff = difference_image(cur, ref)
        assert diff.dtype == np.float64
        assert np.all(diff == -10.0)  # uint16 wrap would give 65526

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            difference_image(np.zeros((2, 2)), np.zeros((3, 3)))


class TestRobustSigma:
    def test_gaussian_estimate(self):
        rng = substream(1, "sigma")
        x = rng.normal(0, 5.0, size=(200, 200))
        assert robust_sigma(x) == pytest.approx(5.0, rel=0.05)

    def test_outlier_immunity(self):
        rng = substream(2, "sigma")
        x = rng.normal(0, 5.0, size=(100, 100))
        x[:3, :3] = 1e6  # a bright star would wreck np.std
        assert robust_sigma(x) == pytest.approx(5.0, rel=0.1)

    def test_degenerate_constant_image(self):
        assert robust_sigma(np.zeros((8, 8))) > 0


class TestLabelComponents:
    def test_empty_mask(self):
        labels, n = label_components(np.zeros((5, 5), dtype=bool))
        assert n == 0 and labels.sum() == 0

    def test_two_blobs(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[1:3, 1:3] = True
        mask[5:7, 5:7] = True
        labels, n = label_components(mask)
        assert n == 2
        assert len(np.unique(labels)) == 3

    def test_diagonal_not_connected(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        _, n = label_components(mask)
        assert n == 2  # 4-connectivity

    def test_matches_scipy(self):
        rng = substream(3, "mask")
        for trial in range(5):
            mask = rng.random((40, 40)) < 0.25
            ours, n_ours = label_components(mask)
            theirs, n_theirs = scipy.ndimage.label(
                mask, structure=[[0, 1, 0], [1, 1, 1], [0, 1, 0]]
            )
            assert n_ours == n_theirs
            # same partition up to label renaming
            for comp in range(1, n_ours + 1):
                cells = ours == comp
                their_labels = set(np.unique(theirs[cells]))
                assert len(their_labels) == 1


class TestDetectSources:
    def make_diff(self, spots, shape=(64, 64), noise=5.0):
        rng = substream(4, "diff")
        img = rng.normal(0, noise, size=shape)
        for x, y, flux in spots:
            yy, xx = np.mgrid[0:shape[0], 0:shape[1]]
            img += flux * np.exp(-((xx - x) ** 2 + (yy - y) ** 2) / (2 * 1.5**2)) / (
                2 * np.pi * 1.5**2
            )
        return img

    def test_single_source_found(self):
        diff = self.make_diff([(30, 20, 5000)])
        cands = detect_sources(diff, threshold_sigma=5.0)
        assert len(cands) == 1
        assert cands[0].distance_to(30, 20) < 1.0
        assert cands[0].flux > 1000

    def test_multiple_sources_sorted_by_flux(self):
        diff = self.make_diff([(10, 10, 3000), (50, 50, 9000)])
        cands = detect_sources(diff, threshold_sigma=5.0)
        assert len(cands) == 2
        assert cands[0].flux > cands[1].flux
        assert cands[0].distance_to(50, 50) < 1.0

    def test_pure_noise_no_detections(self):
        diff = self.make_diff([])
        assert detect_sources(diff, threshold_sigma=5.0) == []

    def test_min_pixels_filters_hot_pixels(self):
        diff = self.make_diff([])
        diff[7, 7] = 1e5  # single hot pixel
        assert detect_sources(diff, threshold_sigma=5.0, min_pixels=4) == []

    def test_negative_sources_ignored(self):
        diff = -self.make_diff([(30, 30, 8000)])
        assert detect_sources(diff, threshold_sigma=5.0) == []

    def test_match_candidate(self):
        cands = [
            Candidate(x=10, y=10, flux=5, npix=4, peak=2),
            Candidate(x=11, y=10, flux=9, npix=4, peak=3),
        ]
        hit = match_candidate(cands, 10.8, 10.0, radius=3.0)
        assert hit is cands[1]
        assert match_candidate(cands, 40, 40, radius=3.0) is None


class TestExtractFlux:
    def test_flux_recovered_from_psf(self):
        spec = SkySpec(tiles_x=1, tiles_y=1, noise_sigma=0.0, stars_per_tile=0)
        sn = SupernovaEvent(tile=(0, 0), x=60.0, y=60.0, t0=0.0, peak_flux=4000.0)
        model = SkyModel(spec=spec, supernovae=[sn])
        base = model.base_field((0, 0))
        img = model.render_epoch((0, 0), 0).astype(np.float64) - base
        flux = extract_flux(img, 60.0, 60.0, aperture=5)
        assert flux == pytest.approx(4000.0, rel=0.1)


class TestClassifier:
    EPOCHS = 12
    NOISE_FLOOR = 120.0

    def sn_curve(self, t0=4.0, peak=3000.0, rise=1.2, decay=3.5):
        sn = SupernovaEvent(tile=(0, 0), x=0, y=0, t0=t0, peak_flux=peak,
                            rise=rise, decay=decay)
        return np.array([sn.flux(t) for t in range(self.EPOCHS)])

    def var_curve(self, period=3.0, amp=2000.0):
        return 2000.0 + amp * np.sin(2 * np.pi * np.arange(self.EPOCHS) / period)

    def test_supernova_classified(self):
        assert classify_lightcurve(self.sn_curve(), self.NOISE_FLOOR) == SUPERNOVA

    def test_variable_classified(self):
        assert classify_lightcurve(self.var_curve(), self.NOISE_FLOOR) == VARIABLE

    def test_noise_classified(self):
        rng = substream(5, "curve")
        curve = rng.normal(0, 50.0, size=self.EPOCHS)
        assert classify_lightcurve(curve, self.NOISE_FLOOR) == NOISE

    def test_flat_curve_is_noise(self):
        assert classify_lightcurve(np.full(self.EPOCHS, 500.0), self.NOISE_FLOOR) == NOISE

    def test_features_single_peak_asymmetric(self):
        feats = curve_features(self.sn_curve(), self.NOISE_FLOOR)
        assert feats.n_peaks == 1
        assert feats.asymmetry >= 1.0
        assert feats.significance > 5

    def test_features_periodic_multi_peak(self):
        feats = curve_features(self.var_curve(), self.NOISE_FLOOR)
        assert feats.n_peaks >= 2

    def test_noisy_supernova_still_classified(self):
        rng = substream(6, "noisy")
        curve = self.sn_curve(peak=4000.0) + rng.normal(0, 100.0, self.EPOCHS)
        assert classify_lightcurve(curve, self.NOISE_FLOOR) == SUPERNOVA

    def test_many_random_events_high_accuracy(self):
        """Bulk accuracy over randomized parameter draws."""
        rng = substream(7, "bulk")
        correct = 0
        total = 60
        for i in range(total):
            if i % 2 == 0:
                curve = self.sn_curve(
                    t0=float(rng.uniform(2.0, 8.0)),
                    peak=float(rng.uniform(2000, 8000)),
                    rise=float(rng.uniform(0.8, 1.6)),
                    decay=float(rng.uniform(2.5, 5.0)),
                )
                expected = SUPERNOVA
            else:
                curve = self.var_curve(
                    period=float(rng.uniform(2.0, 4.0)),
                    amp=float(rng.uniform(1000, 3000)),
                )
                expected = VARIABLE
            curve = curve + rng.normal(0, 80.0, self.EPOCHS)
            if classify_lightcurve(curve, self.NOISE_FLOOR) == expected:
                correct += 1
        assert correct / total >= 0.85
