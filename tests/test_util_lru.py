"""LRU cache policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.lru import LRUCache


class TestBasics:
    def test_put_get(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("b") is None
        assert c.get("b", 42) == 42

    def test_len_and_contains(self):
        c = LRUCache(3)
        c.put("a", 1)
        c.put("b", 2)
        assert len(c) == 2
        assert "a" in c and "b" in c and "c" not in c

    def test_update_existing(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("a", 9)
        assert c.get("a") == 9
        assert len(c) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_clear(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.clear()
        assert len(c) == 0
        assert c.get("a") is None

    def test_pop(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.pop("a") == 1
        assert c.pop("a", "gone") == "gone"
        assert len(c) == 0


class TestEviction:
    def test_lru_evicted_first(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # evicts a
        assert "a" not in c
        assert c.get("b") == 2 and c.get("c") == 3
        assert c.evictions == 1

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # a is now most recent
        c.put("c", 3)  # evicts b
        assert "a" in c and "b" not in c

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 1)
        c.put("c", 3)  # evicts b
        assert "a" in c and "b" not in c

    def test_peek_does_not_refresh(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.peek("a") == 1
        c.put("c", 3)  # a is still LRU: evicted
        assert "a" not in c

    def test_capacity_never_exceeded(self):
        c = LRUCache(5)
        for i in range(100):
            c.put(i, i)
        assert len(c) == 5
        assert set(c) == {95, 96, 97, 98, 99}


class TestStats:
    def test_hit_miss_counting(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.get("a")
        c.get("zzz")
        assert c.hits == 1 and c.misses == 1
        assert c.hit_ratio == 0.5

    def test_hit_ratio_empty(self):
        assert LRUCache(1).hit_ratio == 0.0

    def test_peek_does_not_count(self):
        c = LRUCache(1)
        c.put("a", 1)
        c.peek("a")
        c.peek("b")
        assert c.hits == 0 and c.misses == 0


class TestCountersAndPolicy:
    def test_eviction_counter_accumulates(self):
        c = LRUCache(2)
        for i in range(6):
            c.put(i, i)
        assert c.evictions == 4
        assert len(c) == 2

    def test_update_existing_never_evicts(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 3)  # refresh, not insert
        assert c.evictions == 0 and len(c) == 2

    def test_pop_does_not_count_hit_or_miss(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.pop("a")
        c.pop("zzz")
        assert c.hits == 0 and c.misses == 0

    def test_pop_frees_capacity(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.pop("a")
        c.put("c", 3)  # fits without evicting b
        assert c.evictions == 0
        assert "b" in c and "c" in c

    def test_iteration_is_lru_to_mru(self):
        c = LRUCache(3)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        c.get("a")  # a becomes most recent
        assert list(c) == ["b", "c", "a"]

    def test_capacity_property(self):
        assert LRUCache(7).capacity == 7

    def test_clear_keeps_counters(self):
        """clear() drops entries; lifetime stats remain for reporting."""
        c = LRUCache(1)
        c.put("a", 1)
        c.get("a")
        c.put("b", 2)  # evicts a
        c.clear()
        assert len(c) == 0
        assert (c.hits, c.misses, c.evictions) == (1, 0, 1)


class TestMetadataCacheStats:
    """MetadataCache surfaces its LRU's counters for the bench tables."""

    def _node(self, version):
        from repro.metadata.node import NodeKey, TreeNode

        key = NodeKey("blob", version, 0, 4096)
        return TreeNode(key=key, providers=(0,), write_uid=f"w{version}")

    def test_stats_track_gets(self):
        from repro.metadata.cache import MetadataCache

        cache = MetadataCache(capacity=4)
        node = self._node(1)
        cache.put(node)
        assert cache.get(node.key) is node
        assert cache.get(self._node(9).key) is None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio == 0.5

    def test_len_contains_and_clear(self):
        from repro.metadata.cache import MetadataCache

        cache = MetadataCache(capacity=4)
        node = self._node(1)
        cache.put(node)
        assert len(cache) == 1 and node.key in cache
        cache.clear()
        assert len(cache) == 0 and node.key not in cache

    def test_eviction_bounded_by_capacity(self):
        from repro.metadata.cache import MetadataCache

        cache = MetadataCache(capacity=2)
        nodes = [self._node(v) for v in (1, 2, 3)]
        for node in nodes:
            cache.put(node)
        assert len(cache) == 2
        assert nodes[0].key not in cache  # LRU evicted
        assert nodes[2].key in cache


@given(
    st.lists(
        st.tuples(st.sampled_from("pg"), st.integers(min_value=0, max_value=20)),
        max_size=200,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_model_equivalence(ops, capacity):
    """The cache behaves exactly like an ordered-dict reference model."""
    from collections import OrderedDict

    cache = LRUCache(capacity)
    model: OrderedDict = OrderedDict()
    for op, key in ops:
        if op == "p":
            if key in model:
                model.move_to_end(key)
            elif len(model) >= capacity:
                model.popitem(last=False)
            model[key] = key * 2
            cache.put(key, key * 2)
        else:
            expected = model.get(key)
            if key in model:
                model.move_to_end(key)
            assert cache.get(key) == expected
    assert list(cache) == list(model)
