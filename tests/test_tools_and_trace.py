"""CLI tools and simulation tracing."""

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.simulated import SimDeployment
from repro.sim.trace import hottest_nodes, render_utilization, utilization_report
from repro.tools import campaign, figures, inspect as inspect_tool
from repro.util.sizes import KB, TB


class TestSimTrace:
    def run_some_traffic(self):
        dep = SimDeployment(
            DeploymentSpec(n_data=2, n_meta=2, n_clients=1, cache_capacity=0)
        )
        blob = dep.alloc_blob(1 * TB, 64 * KB)
        client = dep.client(0)
        client.write_virtual(blob, 0, 16 * 64 * KB)
        client.read_virtual(blob, 0, 16 * 64 * KB)
        return dep

    def test_utilization_report_covers_all_nodes(self):
        dep = self.run_some_traffic()
        report = utilization_report(dep.network)
        assert len(report) == len(dep.network.nodes)
        for u in report:
            assert 0.0 <= u.cpu <= 1.0
            assert 0.0 <= u.tx <= 1.0
            assert 0.0 <= u.rx <= 1.0

    def test_client_did_real_work(self):
        dep = self.run_some_traffic()
        by_name = {u.name: u for u in utilization_report(dep.network)}
        client = by_name["client-0"]
        assert client.cpu > 0 and client.tx > 0 and client.rx > 0

    def test_hottest_nodes_sorted(self):
        dep = self.run_some_traffic()
        top = hottest_nodes(dep.network, top=3)
        assert len(top) == 3
        values = [u.hottest[1] for u in top]
        assert values == sorted(values, reverse=True)

    def test_render_contains_every_node(self):
        dep = self.run_some_traffic()
        text = render_utilization(dep.network)
        for name in dep.network.nodes:
            assert name in text
        assert "simulated seconds" in text


class TestFiguresCli:
    def test_parser_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            figures.build_parser().parse_args(["9z"])

    def test_run_3a(self, capsys):
        assert figures.main(["3a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3(a)" in out
        assert "[measured] 10 providers" in out

    def test_run_ablation_c(self, capsys):
        assert figures.main(["ablC"]) == 0
        out = capsys.readouterr().out
        assert "aggregated RPCs" in out

    def test_run_3c_with_custom_grid(self, capsys):
        assert figures.main(["3c", "--clients", "1", "2", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "Read (cached metadata)" in out


class TestCampaignCli:
    def test_small_campaign(self, capsys):
        rc = campaign.main(
            ["--tiles", "2", "2", "--epochs", "6", "--supernovae", "2",
             "--variables", "1", "--seed", "11", "--providers", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "precision" in out and "recall" in out


class TestInspectCli:
    def test_default_script(self, capsys):
        rc = inspect_tool.main(["--pages", "8", "--writes", "0:2", "4:2",
                                "0:1", "--diff", "1", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "segment tree" in out
        assert "sharing:" in out
        assert "changed ranges v1 -> v3" in out
        assert "patch catalog" in out

    def test_rejects_non_pow2_pages(self, capsys):
        rc = inspect_tool.main(["--pages", "6", "--writes", "0:1"])
        assert rc == 2
