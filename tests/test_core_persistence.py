"""Spill-to-disk page backend."""

import pytest

from repro.core.config import DeploymentSpec
from repro.core.persistence import DiskSpill
from repro.deploy.inproc import build_inproc
from repro.errors import PageMissing
from repro.providers.data_provider import DataProvider
from repro.providers.page import PageKey, PagePayload
from repro.util.sizes import KB
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


class TestDiskSpill:
    def test_store_load_roundtrip(self, tmp_path):
        spill = DiskSpill(tmp_path)
        key = PageKey("b", "w", 0)
        spill.store(key, PagePayload.real(b"hello"))
        assert spill.load(key).as_bytes() == b"hello"
        assert spill.stores == 1 and spill.loads == 1

    def test_load_missing_returns_none(self, tmp_path):
        assert DiskSpill(tmp_path).load(PageKey("b", "w", 9)) is None

    def test_drop(self, tmp_path):
        spill = DiskSpill(tmp_path)
        key = PageKey("b", "w", 0)
        spill.store(key, PagePayload.real(b"x"))
        spill.drop(key)
        assert spill.load(key) is None
        spill.drop(key)  # idempotent

    def test_virtual_pages_persist_as_zeros(self, tmp_path):
        spill = DiskSpill(tmp_path)
        key = PageKey("b", "w", 1)
        spill.store(key, PagePayload.virtual(16))
        assert spill.load(key).as_bytes() == bytes(16)

    def test_file_fanout(self, tmp_path):
        spill = DiskSpill(tmp_path)
        for i in range(20):
            spill.store(PageKey("b", "w", i), PagePayload.real(b"z"))
        assert spill.page_files() == 20

    def test_memoryview_payload_spills_without_materializing(self, tmp_path):
        """Zero-copy spill: a view payload is written straight from the
        writer's buffer — file contents are exact and the payload object
        still holds the original (unmaterialized) view afterwards."""
        spill = DiskSpill(tmp_path)
        source = bytes(range(256)) * 16  # 4 KB
        view = memoryview(source)[1024:2048]
        payload = PagePayload.real(view)
        key = PageKey("b", "w", 3)
        spill.store(key, payload)
        assert payload.data is view  # store() did not touch the payload
        assert spill.load(key).as_bytes() == source[1024:2048]
        assert spill.bytes_spilled == 1024

    def test_bytes_spilled_counts_virtual_payloads_too(self, tmp_path):
        spill = DiskSpill(tmp_path)
        spill.store(PageKey("b", "w", 0), PagePayload.virtual(64))
        spill.store(PageKey("b", "w", 1), PagePayload.real(b"abcd"))
        assert spill.bytes_spilled == 68


class TestProviderWithSpill:
    def test_writes_flow_through(self, tmp_path):
        spill = DiskSpill(tmp_path)
        dp = DataProvider(0, spill=spill)
        dp.put_page(PageKey("b", "w", 0), PagePayload.real(b"data"))
        assert spill.page_files() == 1

    def test_read_falls_back_to_disk_after_eviction(self, tmp_path):
        spill = DiskSpill(tmp_path)
        dp = DataProvider(0, spill=spill)
        key = PageKey("b", "w", 0)
        dp.put_page(key, PagePayload.real(b"persisted"))
        evicted = dp.evict_to_spill()
        assert evicted == 1
        assert dp.page_count == 0
        assert dp.get_page(key).as_bytes() == b"persisted"

    def test_eviction_without_spill_is_noop(self):
        dp = DataProvider(0)
        dp.put_page(PageKey("b", "w", 0), PagePayload.real(b"x"))
        assert dp.evict_to_spill() == 0
        assert dp.page_count == 1

    def test_free_pages_also_drops_disk(self, tmp_path):
        spill = DiskSpill(tmp_path)
        dp = DataProvider(0, spill=spill)
        key = PageKey("b", "w", 0)
        dp.put_page(key, PagePayload.real(b"x"))
        dp.free_pages([key])
        assert spill.page_files() == 0
        with pytest.raises(PageMissing):
            dp.get_page(key)


class TestDeploymentWithSpill:
    def test_blob_survives_ram_eviction(self, tmp_path):
        """End-to-end: write, evict all RAM copies, read back from disk."""
        spills = {i: DiskSpill(tmp_path / str(i)) for i in range(2)}
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2), spills=spills)
        client = dep.client()
        blob = client.alloc(SMALL_TOTAL, SMALL_PAGE)
        client.write(blob, pages(4, b"D"), 0)
        for dp in dep.data.values():
            dp.evict_to_spill()
        assert dep.total_pages_stored() == 0
        got = client.read_bytes(blob, 0, 4 * SMALL_PAGE, version=1)
        assert got == pages(4, b"D")
