"""End-to-end supernova campaign over the blob service."""

import numpy as np
import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.deploy.threaded import build_threaded
from repro.sky.lightcurve import SUPERNOVA
from repro.sky.pipeline import SupernovaPipeline
from repro.sky.skymodel import SkyModel, SkySpec, SupernovaEvent
from repro.util.sizes import KB

SPEC = SkySpec(tiles_x=2, tiles_y=2, seed=11)
EPOCHS = 10


@pytest.fixture(scope="module")
def campaign_report():
    """One full campaign, reused by several assertions (it is expensive)."""
    model = SkyModel.with_random_events(SPEC, n_supernovae=3, n_variables=3,
                                        epochs=EPOCHS)
    dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4))
    pipe = SupernovaPipeline(model, dep.client("survey"))
    report = pipe.run_campaign(epochs=EPOCHS)
    return model, pipe, report


class TestCampaign:
    def test_all_supernovae_found(self, campaign_report):
        _, _, report = campaign_report
        assert report.true_supernovae == 3
        assert report.recall == 1.0

    def test_no_false_supernovae(self, campaign_report):
        _, _, report = campaign_report
        assert report.precision == 1.0

    def test_variables_not_claimed_as_supernovae(self, campaign_report):
        model, _, report = campaign_report
        claimed = report.supernova_tracks()
        for var in model.variables:
            for track in claimed:
                if track.tile == var.tile:
                    assert np.hypot(track.x - var.x, track.y - var.y) > 3.0

    def test_epoch_versions_monotone(self, campaign_report):
        _, _, report = campaign_report
        assert len(report.epoch_versions) == EPOCHS
        assert report.epoch_versions == sorted(report.epoch_versions)
        # each epoch writes one version per tile
        assert report.epoch_versions[0] == SPEC.n_tiles

    def test_tracks_have_curves_and_labels(self, campaign_report):
        _, _, report = campaign_report
        assert report.tracks, "campaign found no variable objects at all"
        for track in report.tracks:
            assert track.label in ("supernova", "variable", "noise")
            assert track.curve is not None and len(track.curve) == EPOCHS

    def test_io_accounting(self, campaign_report):
        _, pipe, report = campaign_report
        expected_write = EPOCHS * SPEC.n_tiles * pipe.mapping.tile_slot_bytes
        assert report.bytes_written == expected_write
        assert report.bytes_read > 0


class TestSnapshotIsolation:
    def test_reading_old_epoch_after_new_writes(self):
        """Epoch snapshots stay bit-identical while new epochs arrive —
        the versioning property the application depends on."""
        model = SkyModel.with_random_events(SPEC, 1, 1, epochs=4)
        dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4))
        pipe = SupernovaPipeline(model, dep.client())
        pipe.observe_epoch(0)
        tile = (0, 0)
        first = pipe.read_tile(tile, 0)
        for epoch in range(1, 4):
            pipe.observe_epoch(epoch)
            again = pipe.read_tile(tile, 0)
            assert np.array_equal(first, again)

    def test_epoch_images_roundtrip_exactly(self):
        model = SkyModel(spec=SPEC)
        dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4))
        pipe = SupernovaPipeline(model, dep.client())
        pipe.observe_epoch(0)
        for tile in pipe.mapping.all_tiles():
            direct = model.render_epoch(tile, 0)
            via_blob = pipe.read_tile(tile, 0)
            assert np.array_equal(direct, via_blob)


class TestConcurrentCampaign:
    def test_multiple_telescopes_and_workers(self):
        """Write/write (telescopes) + read/write (workers) concurrency on
        the threaded deployment; results equal the serial campaign."""
        model = SkyModel.with_random_events(SPEC, 2, 2, epochs=6)
        with build_threaded(DeploymentSpec(n_data=4, n_meta=4)) as dep:
            pipe = SupernovaPipeline(model, dep.client("coordinator"))
            telescopes = [dep.client(f"scope-{i}") for i in range(2)]
            workers = [dep.client(f"worker-{i}") for i in range(2)]
            report = pipe.run_campaign(
                epochs=6, telescopes=telescopes, workers=workers
            )
        serial_dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4))
        serial = SupernovaPipeline(model, serial_dep.client()).run_campaign(epochs=6)
        assert report.recall == serial.recall
        assert report.claimed_supernovae == serial.claimed_supernovae

    def test_concurrent_epoch_version_pinning(self):
        """While telescopes write epoch e+1, reads of epoch e are stable."""
        model = SkyModel(spec=SPEC)
        with build_threaded(DeploymentSpec(n_data=4, n_meta=4)) as dep:
            pipe = SupernovaPipeline(model, dep.client("coordinator"))
            telescopes = [dep.client(f"t{i}") for i in range(2)]
            pipe.observe_epoch(0, telescopes)
            baseline = {
                tile: pipe.read_tile(tile, 0) for tile in pipe.mapping.all_tiles()
            }
            import threading

            done = threading.Event()

            def write_more():
                for epoch in range(1, 4):
                    pipe.observe_epoch(epoch, telescopes)
                done.set()

            t = threading.Thread(target=write_more)
            t.start()
            reader = dep.client("reader")
            while not done.is_set():
                for tile in pipe.mapping.all_tiles():
                    again = pipe.read_tile(tile, 0, reader)
                    assert np.array_equal(baseline[tile], again)
            t.join(timeout=60)


class TestDetectionAcrossScales:
    def test_bright_supernova_single_tile(self):
        spec = SkySpec(tiles_x=1, tiles_y=1, seed=5)
        sn = SupernovaEvent(tile=(0, 0), x=100.0, y=64.0, t0=3.0, peak_flux=9000.0)
        model = SkyModel(spec=spec, supernovae=[sn])
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        pipe = SupernovaPipeline(model, dep.client())
        report = pipe.run_campaign(epochs=8)
        assert report.matched_supernovae == 1
        assert report.precision == 1.0

    def test_empty_sky_no_detections(self):
        model = SkyModel(spec=SkySpec(tiles_x=1, tiles_y=1, seed=6))
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        pipe = SupernovaPipeline(model, dep.client())
        report = pipe.run_campaign(epochs=5)
        assert report.claimed_supernovae == 0
        assert report.recall == 1.0  # vacuous but exercised
