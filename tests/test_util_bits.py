"""Power-of-two arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    align_down,
    align_up,
    ceil_div,
    ceil_pow2,
    floor_pow2,
    is_pow2,
    log2_exact,
)


class TestIsPow2:
    def test_small_powers(self):
        assert is_pow2(1)
        assert is_pow2(2)
        assert is_pow2(64)
        assert is_pow2(1 << 40)

    def test_non_powers(self):
        assert not is_pow2(0)
        assert not is_pow2(3)
        assert not is_pow2(6)
        assert not is_pow2(-4)
        assert not is_pow2((1 << 40) - 1)

    @given(st.integers(min_value=0, max_value=60))
    def test_all_shifts_are_powers(self, k):
        assert is_pow2(1 << k)


class TestLog2Exact:
    def test_roundtrip(self):
        for k in range(50):
            assert log2_exact(1 << k) == k

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(3)

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            log2_exact(0)
        with pytest.raises(ValueError):
            log2_exact(-8)


class TestCeilFloorPow2:
    def test_ceil_identity_on_powers(self):
        assert ceil_pow2(8) == 8

    def test_ceil_rounds_up(self):
        assert ceil_pow2(9) == 16
        assert ceil_pow2(1) == 1
        assert ceil_pow2(1025) == 2048

    def test_floor_identity_on_powers(self):
        assert floor_pow2(16) == 16

    def test_floor_rounds_down(self):
        assert floor_pow2(17) == 16
        assert floor_pow2(1) == 1

    def test_reject_below_one(self):
        with pytest.raises(ValueError):
            ceil_pow2(0)
        with pytest.raises(ValueError):
            floor_pow2(0)

    @given(st.integers(min_value=1, max_value=1 << 50))
    def test_bracketing(self, x):
        lo, hi = floor_pow2(x), ceil_pow2(x)
        assert lo <= x <= hi
        assert is_pow2(lo) and is_pow2(hi)
        if not is_pow2(x):
            assert hi == 2 * lo


class TestAlign:
    def test_align_down(self):
        assert align_down(0, 8) == 0
        assert align_down(7, 8) == 0
        assert align_down(8, 8) == 8
        assert align_down(15, 8) == 8

    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 8) == 16

    def test_rejects_non_pow2_alignment(self):
        with pytest.raises(ValueError):
            align_down(5, 3)
        with pytest.raises(ValueError):
            align_up(5, 0)

    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.integers(min_value=0, max_value=20),
    )
    def test_bracketing_property(self, x, k):
        a = 1 << k
        down, up = align_down(x, a), align_up(x, a)
        assert down <= x <= up
        assert down % a == 0 and up % a == 0
        assert up - down in (0, a)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounding(self):
        assert ceil_div(9, 4) == 3
        assert ceil_div(1, 4) == 1
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    @given(
        st.integers(min_value=0, max_value=1 << 40),
        st.integers(min_value=1, max_value=1 << 20),
    )
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == -(-a // b)
        assert (ceil_div(a, b) - 1) * b < a or a == 0
