"""Deterministic random substreams."""

import numpy as np

from repro.util.rng import substream


class TestSubstream:
    def test_deterministic(self):
        a = substream(42, "x").integers(0, 1000, size=16)
        b = substream(42, "x").integers(0, 1000, size=16)
        assert np.array_equal(a, b)

    def test_label_sensitivity(self):
        a = substream(42, "x").integers(0, 1 << 30, size=8)
        b = substream(42, "y").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_seed_sensitivity(self):
        a = substream(1, "x").integers(0, 1 << 30, size=8)
        b = substream(2, "x").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_multi_label_paths(self):
        a = substream(7, "noise", (0, 1), 3).normal(size=4)
        b = substream(7, "noise", (0, 1), 3).normal(size=4)
        c = substream(7, "noise", (1, 0), 3).normal(size=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_label_types_distinguished(self):
        # repr-based hashing must distinguish 1 from "1"
        a = substream(7, 1).integers(0, 1 << 30, size=8)
        b = substream(7, "1").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_independence_of_sibling_streams(self):
        """Streams for different clients are uncorrelated (rough check)."""
        xs = substream(9, "client", 0).normal(size=4096)
        ys = substream(9, "client", 1).normal(size=4096)
        corr = abs(float(np.corrcoef(xs, ys)[0, 1]))
        assert corr < 0.08
