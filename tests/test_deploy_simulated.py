"""Simulated deployment: topology, timing sanity, concurrency behaviour."""

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.simulated import SimDeployment
from repro.errors import VersionNotPublished
from repro.sim.network import ClusterSpec
from repro.util.sizes import KB, MB, TB

PAGE = 64 * KB


def make(n=4, clients=2, cache=0, cluster=None):
    return SimDeployment(
        DeploymentSpec(n_data=n, n_meta=n, n_clients=clients, cache_capacity=cache),
        cluster=cluster,
    )


class TestTopology:
    def test_colocated_layout(self):
        dep = make(n=3)
        names = set(dep.network.nodes)
        assert {"vm-node", "pm-node", "prov-0", "prov-1", "prov-2"} <= names
        assert {"client-0", "client-1"} <= names
        # data provider i and metadata provider i share a node
        assert dep.executor.node_of(("data", 1)) is dep.executor.node_of(("meta", 1))

    def test_separate_layout(self):
        dep = SimDeployment(
            DeploymentSpec(n_data=2, n_meta=3, n_clients=1, colocate=False)
        )
        assert dep.executor.node_of(("data", 0)) is not dep.executor.node_of(("meta", 0))

    def test_client_nodes_have_client_role(self):
        dep = make()
        assert all(n.role == "client" for n in dep.client_nodes)
        assert dep.executor.node_of("vm").role == "server"


class TestFunctional:
    def test_write_read_roundtrip_virtual(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        client = dep.client(0)
        wres = client.write_virtual(blob, 0, 8 * PAGE)
        assert wres.version == 1 and wres.published
        rres = client.read_virtual(blob, 0, 8 * PAGE)
        assert rres.version == 1
        assert rres.pages_fetched == 8
        assert rres.data is None  # virtual read skips assembly

    def test_unpublished_read_fails_in_sim(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        client = dep.client(0)
        with pytest.raises(VersionNotPublished):
            client.read_virtual(blob, 0, PAGE, version=3)

    def test_warm_cache_helper(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        writer = dep.client(0)
        writer.write_virtual(blob, 0, 4 * PAGE)
        reader = dep.client(1, cached=True)
        cached = dep.warm_client_cache(reader, blob)
        assert cached > 0
        res = reader.read_virtual(blob, 0, 4 * PAGE)
        assert res.nodes_fetched == 0
        assert res.cache_hits > 0

    def test_warm_cache_requires_cache(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        client = dep.client(0, cached=False)
        with pytest.raises(ValueError):
            dep.warm_client_cache(client, blob)


class TestTimingSanity:
    def test_durations_positive_and_ordered(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        client = dep.client(0)
        _, small = client.timed(client.write_virtual_proto(blob, 0, PAGE))
        _, large = client.timed(
            client.write_virtual_proto(blob, 1 * MB, 64 * PAGE)
        )
        assert 0 < small < large

    def test_cached_read_faster_than_uncached(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        writer = dep.client(0)
        writer.write_virtual(blob, 0, 32 * PAGE)
        reader = dep.client(1, cached=True)
        _, cold = reader.timed(reader.read_virtual_proto(blob, 0, 32 * PAGE))
        _, warm = reader.timed(reader.read_virtual_proto(blob, 0, 32 * PAGE))
        assert warm < cold

    def test_trace_marks_monotone(self):
        dep = make()
        blob = dep.alloc_blob(1 * TB, PAGE)
        client = dep.client(0)
        wtrace: dict[str, float] = {}
        client.run(client.write_virtual_proto(blob, 0, 4 * PAGE, trace=wtrace))
        order = [
            "start", "providers_allocated", "pages_stored",
            "version_assigned", "metadata_stored", "done",
        ]
        values = [wtrace[k] for k in order]
        assert values == sorted(values)
        rtrace: dict[str, float] = {}
        client.run(client.read_virtual_proto(blob, 0, 4 * PAGE, trace=rtrace))
        rorder = ["start", "version_resolved", "metadata_read", "pages_read", "done"]
        rvalues = [rtrace[k] for k in rorder]
        assert rvalues == sorted(rvalues)

    def test_latency_scaling(self):
        """10x link latency must slow a small read (RTT-dominated)."""
        def read_time(latency):
            dep = make(cluster=ClusterSpec(latency=latency))
            blob = dep.alloc_blob(1 * TB, PAGE)
            client = dep.client(0)
            client.write_virtual(blob, 0, PAGE)
            _, dur = client.timed(client.read_virtual_proto(blob, 0, PAGE))
            return dur

        assert read_time(1e-3) > read_time(0.1e-3) * 2

    def test_concurrent_clients_slower_than_single(self):
        """Two clients hammering the same providers see some contention."""
        def mean_duration(n_clients):
            dep = make(n=2, clients=n_clients)
            blob = dep.alloc_blob(1 * TB, PAGE)
            writer = dep.client(0)
            writer.write_virtual(blob, 0, 64 * PAGE)
            durations = []

            def loop(client):
                for _ in range(5):
                    start = dep.sim.now
                    proto = client.read_virtual_proto(blob, 0, 64 * PAGE)
                    yield from dep.executor.run_protocol(proto, client.node)
                    durations.append(dep.sim.now - start)

            procs = [
                dep.sim.process(loop(dep.client(i))) for i in range(n_clients)
            ]
            dep.sim.run(until=dep.sim.all_of(procs))
            return sum(durations) / len(durations)

        assert mean_duration(4) > mean_duration(1)

    def test_deterministic_timing(self):
        def once():
            dep = make()
            blob = dep.alloc_blob(1 * TB, PAGE)
            client = dep.client(0)
            client.write_virtual(blob, 0, 16 * PAGE)
            _, dur = client.timed(client.read_virtual_proto(blob, 0, 16 * PAGE))
            return dur

        assert once() == once()
