"""The latency histogram: bucket scheme, quantile bounds, merge, wire form.

The histogram is the recording primitive under every telemetry surface,
so its numeric contract is pinned tightly here:

- every value lands inside its bucket's inclusive bounds, and the
  buckets tile ``[0, 2**64)`` with no gaps or overlaps;
- ``quantile(p)`` never undershoots a sorted-sample oracle and
  overshoots by at most the bucket width (1/16 relative above 16);
- ``merge`` is associative and commutative (histograms fold across
  actors, nodes and scrape rounds in any order);
- the compact wire form pickles and round-trips equal.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.obs.hist import (
    NUM_BUCKETS,
    SUBBUCKETS,
    LatencyHistogram,
    bucket_bounds,
    bucket_index,
    merge_all,
)


def oracle(samples: list[int], p: float) -> int:
    """Nearest-rank quantile on the exact sorted samples."""
    ss = sorted(samples)
    rank = min(len(ss), max(1, math.ceil(p * len(ss) - 1e-9)))
    return ss[rank - 1]


class TestBuckets:
    def test_values_land_inside_their_bucket(self):
        values = list(range(0, 4 * SUBBUCKETS * SUBBUCKETS))
        rng = random.Random(7)
        values += [rng.getrandbits(k) for k in range(5, 64) for _ in range(50)]
        for v in values:
            lo, hi = bucket_bounds(bucket_index(v))
            assert lo <= v <= hi, f"value {v} outside bucket [{lo}, {hi}]"

    def test_buckets_tile_without_gaps_or_overlaps(self):
        prev_hi = -1
        for index in range(NUM_BUCKETS):
            lo, hi = bucket_bounds(index)
            assert lo == prev_hi + 1
            assert hi >= lo
            prev_hi = hi
        assert prev_hi >= (1 << 64) - 1  # full uint64 nanosecond range

    def test_small_values_are_exact(self):
        for v in range(SUBBUCKETS):
            assert bucket_bounds(bucket_index(v)) == (v, v)

    def test_bucket_relative_width_bounded(self):
        for index in range(SUBBUCKETS, NUM_BUCKETS):
            lo, hi = bucket_bounds(index)
            assert (hi - lo + 1) / lo <= 1 / SUBBUCKETS + 1e-12

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_index(1 << 70) == NUM_BUCKETS - 1
        assert bucket_index((1 << 64) - 1) == NUM_BUCKETS - 1


class TestQuantiles:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0
        assert hist.quantile(1.0) == 0
        assert hist.mean == 0.0

    def test_single_sample_every_quantile_is_it(self):
        hist = LatencyHistogram()
        hist.record(14_321)
        for p in (0.0, 0.01, 0.5, 0.99, 1.0):
            q = hist.quantile(p)
            assert 14_321 <= q <= 14_321 * (1 + 1 / SUBBUCKETS)
        assert hist.quantile(0.0) == hist.min == 14_321
        assert hist.max == 14_321

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_quantiles_bound_the_sorted_sample_oracle(self, seed):
        rng = random.Random(seed)
        samples = [
            rng.randrange(0, 10 ** rng.randrange(1, 10))
            for _ in range(rng.randrange(1, 600))
        ]
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        for p in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            exact = oracle(samples, p)
            q = hist.quantile(p)
            assert q >= exact, f"p={p}: {q} undershoots oracle {exact}"
            # overshoot bounded by the bucket width (exact below 16)
            assert q <= max(exact * (1 + 1 / SUBBUCKETS), exact + 1)

    def test_negative_samples_clamp_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-5)
        assert hist.count == 1
        assert hist.min == 0
        assert hist.quantile(0.5) == 0

    def test_p100_never_exceeds_recorded_max(self):
        hist = LatencyHistogram()
        for v in (100, 1000, 99_999):
            hist.record(v)
        assert hist.quantile(1.0) <= hist.max == 99_999

    def test_mean_is_exact_not_bucketed(self):
        hist = LatencyHistogram()
        for v in (1, 2, 1000):
            hist.record(v)
        assert hist.mean == pytest.approx((1 + 2 + 1000) / 3)


class TestMerge:
    @staticmethod
    def _hist(values) -> LatencyHistogram:
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        return h

    def test_merge_equals_recording_everything_in_one(self):
        a_vals = [3, 77, 1024, 50_000]
        b_vals = [0, 9_999_999]
        merged = self._hist(a_vals).merge(self._hist(b_vals))
        assert merged == self._hist(a_vals + b_vals)

    def test_merge_associative_and_commutative(self):
        rng = random.Random(11)
        parts = [
            [rng.randrange(0, 1 << 30) for _ in range(40)] for _ in range(3)
        ]
        a, b, c = (self._hist(p) for p in parts)
        left = self._hist(parts[0]).merge(b).merge(c)
        right = self._hist(parts[1]).merge(c).merge(a)
        assert left == right
        assert merge_all([a, b, c]) == left

    def test_merge_returns_self_and_tracks_min_max(self):
        a = self._hist([50])
        b = self._hist([5, 500])
        out = a.merge(b)
        assert out is a
        assert (a.min, a.max, a.count) == (5, 500, 3)

    def test_merge_into_empty(self):
        a = LatencyHistogram()
        b = self._hist([7])
        a.merge(b)
        assert a == b


class TestWireForm:
    def test_round_trip_equality(self):
        hist = LatencyHistogram()
        rng = random.Random(3)
        for _ in range(200):
            hist.record(rng.randrange(0, 1 << 40))
        rebuilt = LatencyHistogram.from_wire(hist.to_wire())
        assert rebuilt == hist
        assert rebuilt.quantile(0.95) == hist.quantile(0.95)

    def test_wire_form_is_sparse(self):
        hist = LatencyHistogram()
        hist.record(12)
        wire = hist.to_wire()
        # an almost-empty histogram costs a handful of pairs, not 976 ints
        assert len(wire[-1]) == 1

    def test_pickle_round_trips_through_wire_form(self):
        hist = LatencyHistogram()
        for v in (1, 16, 17, 1 << 20):
            hist.record(v)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone == hist

    def test_from_wire_rejects_garbage(self):
        with pytest.raises(ValueError):
            LatencyHistogram.from_wire(("nope", 1, 2, 3, 4, ()))
        with pytest.raises(ValueError):
            LatencyHistogram.from_wire("not a tuple")
