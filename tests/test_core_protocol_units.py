"""Protocol-layer unit tests: failover machinery, helpers, small protocols."""

import pytest

from repro.core.protocol import (
    alloc_protocol,
    fresh_write_uid,
    split_pages,
    stat_protocol,
    virtual_pages,
    _gather_with_failover,
)
from repro.errors import PageMissing, RemoteError
from repro.net.sansio import Batch, Call, run_inproc
from repro.util.sizes import KB
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


class FlakyStore:
    """Actor that fails for configured keys until a given attempt count."""

    def __init__(self, fail_keys=(), permanent=()):
        self.fail_keys = set(fail_keys)
        self.permanent = set(permanent)
        self.calls = []

    def handle(self, method, args):
        key = args[0]
        self.calls.append((method, key))
        if key in self.permanent:
            raise PageMissing(f"gone forever: {key}")
        if key in self.fail_keys:
            self.fail_keys.discard(key)
            raise PageMissing(f"transient: {key}")
        return f"value-{key}"


class TestGatherWithFailover:
    def drive(self, items, registry, routes):
        def routes_for(item):
            return routes[item]

        def call_for(item, owner, last):
            return Call(owner, "get", (item,), allow_error=not last)

        def proto():
            out = yield from _gather_with_failover(items, routes_for, call_for)
            return out

        return run_inproc(proto(), registry)

    def test_empty_items(self):
        assert self.drive([], {}, {}) == []

    def test_all_primary_success(self):
        store = FlakyStore()
        routes = {"a": ("s0",), "b": ("s0",)}
        got = self.drive(["a", "b"], {"s0": store}, routes)
        assert got == ["value-a", "value-b"]

    def test_failover_to_second_replica(self):
        primary = FlakyStore(permanent={"a"})
        backup = FlakyStore()
        routes = {"a": ("p", "b")}
        got = self.drive(["a"], {"p": primary, "b": backup}, routes)
        assert got == ["value-a"]
        assert ("get", "a") in backup.calls

    def test_partial_failover_only_retries_failures(self):
        primary = FlakyStore(permanent={"b"})
        backup = FlakyStore()
        routes = {"a": ("p", "b2"), "b": ("p", "b2")}
        got = self.drive(["a", "b"], {"p": primary, "b2": backup}, routes)
        assert got == ["value-a", "value-b"]
        assert backup.calls == [("get", "b")]  # 'a' never retried

    def test_exhausted_replicas_raise_typed(self):
        primary = FlakyStore(permanent={"a"})
        backup = FlakyStore(permanent={"a"})
        routes = {"a": ("p", "b")}
        with pytest.raises(PageMissing):
            self.drive(["a"], {"p": primary, "b": backup}, routes)

    def test_single_replica_raises_immediately(self):
        primary = FlakyStore(permanent={"a"})
        with pytest.raises(PageMissing):
            self.drive(["a"], {"p": primary}, {"a": ("p",)})


class TestSmallProtocols:
    def test_alloc_and_stat(self, dep):
        blob = dep.driver.run(alloc_protocol(SMALL_TOTAL, SMALL_PAGE))
        total, page, latest = dep.driver.run(stat_protocol(blob))
        assert (total, page, latest) == (SMALL_TOTAL, SMALL_PAGE, 0)


class TestPayloadHelpers:
    def test_split_pages(self):
        payloads = split_pages(pages(3, b"x"), SMALL_PAGE)
        assert len(payloads) == 3
        assert all(p.nbytes == SMALL_PAGE and not p.is_virtual for p in payloads)

    def test_split_pages_rejects_ragged(self):
        with pytest.raises(ValueError):
            split_pages(b"abc", SMALL_PAGE)

    def test_virtual_pages(self):
        payloads = virtual_pages(4 * SMALL_PAGE, SMALL_PAGE)
        assert len(payloads) == 4
        assert all(p.is_virtual for p in payloads)
        with pytest.raises(ValueError):
            virtual_pages(SMALL_PAGE + 1, SMALL_PAGE)

    def test_fresh_write_uid_unique(self):
        uids = {fresh_write_uid("c") for _ in range(100)}
        assert len(uids) == 100
        assert all(uid.startswith("c#") for uid in uids)


class TestGCWithReplication:
    def test_gc_respects_replicated_stores(self):
        from repro.core.config import DeploymentSpec
        from repro.deploy.inproc import build_inproc

        dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4, replication=2))
        client = dep.client()
        blob = client.alloc(SMALL_TOTAL, SMALL_PAGE)
        for v in range(3):
            client.write(blob, pages(2, bytes([v + 1])), 0)
        stats = client.gc(blob, [3], dep.data_ids, dep.meta_ids)
        # live pages counted once, but every replica of dead pages freed
        assert stats.pages_live == 2
        assert stats.pages_freed == 2 * 2 * 2  # 2 dead versions x 2 pages x r=2
        assert dep.total_pages_stored() == 2 * 2  # live pages x 2 replicas
        # the kept version still reads with a crashed replica
        dep.data[0].crash()
        got = client.read_bytes(blob, 0, 2 * SMALL_PAGE, version=3)
        assert got == pages(2, bytes([3]))
