"""Keep documentation honest: README snippets and examples must run."""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestReadmeQuickstart:
    def test_quickstart_snippet_executes(self):
        """Extract and run the quickstart code block of README.md (found
        by its printed marker, not by position — other sections carry
        python blocks of their own, e.g. the TCP cluster example with
        ``...`` placeholders that are documentation, not programs)."""
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        quickstart = [b for b in blocks if "quickstart ok" in b]
        assert quickstart, "README lost its quickstart code block"
        exec(compile(quickstart[0], "<README quickstart>", "exec"), {})


EXAMPLES = [
    "quickstart.py",
    "incremental_analytics.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_scripts_run(script):
    """Fast examples run end-to-end in a subprocess (slow ones are covered
    by their own dedicated tests and by the bench suite)."""
    result = subprocess.run(
        [sys.executable, str(ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_examples_exist_and_documented():
    listed = {"quickstart.py", "supernovae_detection.py",
              "concurrent_telescopes.py", "incremental_analytics.py",
              "cluster_experiment.py"}
    present = {p.name for p in (ROOT / "examples").glob("*.py")}
    assert listed <= present
    readme = (ROOT / "README.md").read_text()
    for name in listed:
        assert name in readme, f"{name} missing from README examples table"
