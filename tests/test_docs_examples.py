"""Keep documentation honest: README snippets, the docs/ set and the
examples must run, and the cluster modules must document themselves.

Two extraction policies, both marker-based (never positional):

- README.md: the quickstart block is found by its printed marker
  (``quickstart ok``); other python blocks are illustrative.
- docs/*.md: **every** python block must carry a ``# doc-exec:`` marker
  as its first line and execute cleanly — prose-only snippets must use a
  non-python fence (``sh``/``text``), so code the docs show can never
  drift from code that runs.
"""

import importlib
import inspect
import pathlib
import pkgutil
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestReadmeQuickstart:
    def test_quickstart_snippet_executes(self):
        """Extract and run the quickstart code block of README.md (found
        by its printed marker, not by position — other sections carry
        python blocks of their own, e.g. the TCP cluster example with
        ``...`` placeholders that are documentation, not programs)."""
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        quickstart = [b for b in blocks if "quickstart ok" in b]
        assert quickstart, "README lost its quickstart code block"
        exec(compile(quickstart[0], "<README quickstart>", "exec"), {})


DOC_FILES = ["ARCHITECTURE.md", "OPERATIONS.md"]


class TestDocsSet:
    """The architecture & operations doc set (docs/), validated in CI."""

    def test_docs_exist_and_are_linked_from_readme(self):
        readme = (ROOT / "README.md").read_text()
        for name in DOC_FILES:
            assert (ROOT / "docs" / name).exists(), f"docs/{name} missing"
            assert f"docs/{name}" in readme, f"README does not link docs/{name}"

    @pytest.mark.parametrize("name", DOC_FILES)
    def test_every_python_block_is_marked_and_executes(self, name):
        """The docs/ policy: a python fence is a *program*. Every block
        must open with a ``# doc-exec: <slug>`` marker line and run
        cleanly in an empty namespace (launched clusters and in-process
        agents included — they are the point of these docs)."""
        text = (ROOT / "docs" / name).read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, f"docs/{name} has no executable python blocks"
        for block in blocks:
            first = block.lstrip().splitlines()[0]
            assert first.startswith("# doc-exec:"), (
                f"docs/{name}: python block without a doc-exec marker "
                f"(starts {first!r}); use a sh/text fence for prose snippets"
            )
            exec(compile(block, f"<docs/{name} {first}>", "exec"), {})


class TestDocCoverage:
    """Public modules and classes of the cluster-facing packages must
    carry docstrings — the invariants live in the code, not only in
    CHANGES.md (module-level functions are held to the same bar)."""

    PACKAGES = ["repro.net", "repro.deploy"]

    def iter_modules(self):
        for pkg_name in self.PACKAGES:
            pkg = importlib.import_module(pkg_name)
            yield pkg
            for info in pkgutil.iter_modules(pkg.__path__, pkg_name + "."):
                yield importlib.import_module(info.name)

    def test_public_modules_and_classes_have_docstrings(self):
        missing = []
        for mod in self.iter_modules():
            if not inspect.getdoc(mod):
                missing.append(mod.__name__)
            for name, obj in vars(mod).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != mod.__name__:
                    continue  # re-exports are documented at their source
                if not inspect.getdoc(obj):
                    missing.append(f"{mod.__name__}.{name}")
        assert missing == [], f"undocumented public surface: {missing}"


EXAMPLES = [
    "quickstart.py",
    "incremental_analytics.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_scripts_run(script):
    """Fast examples run end-to-end in a subprocess (slow ones are covered
    by their own dedicated tests and by the bench suite)."""
    result = subprocess.run(
        [sys.executable, str(ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_examples_exist_and_documented():
    listed = {"quickstart.py", "supernovae_detection.py",
              "concurrent_telescopes.py", "incremental_analytics.py",
              "cluster_experiment.py"}
    present = {p.name for p in (ROOT / "examples").glob("*.py")}
    assert listed <= present
    readme = (ROOT / "README.md").read_text()
    for name in listed:
        assert name in readme, f"{name} missing from README examples table"
