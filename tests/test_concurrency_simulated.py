"""Concurrency semantics on the simulator: deterministic interleavings.

The threaded tests exercise real parallelism; these run the same protocol
code under the discrete-event engine, where interleavings are exactly
reproducible — so stronger end-state properties can be asserted for large
concurrent workloads (and failures are replayable).
"""

import pytest

from repro.core.config import DeploymentSpec
from repro.core.protocol import read_protocol, write_protocol, virtual_pages, fresh_write_uid
from repro.deploy.simulated import SimDeployment
from repro.util.rng import substream
from repro.util.sizes import KB, MB, TB

PAGE = 64 * KB


def make(n_clients, providers=8):
    dep = SimDeployment(
        DeploymentSpec(
            n_data=providers, n_meta=providers, n_clients=n_clients,
            cache_capacity=0,
        )
    )
    blob = dep.alloc_blob(1 * TB, PAGE)
    return dep, blob


class TestConcurrentWritersSim:
    def test_versions_unique_and_complete(self):
        n, per = 8, 5
        dep, blob = make(n)
        versions: list[int] = []

        def writer(i):
            client = dep.client(i)
            for k in range(per):
                proto = client.write_virtual_proto(blob, (i * per + k) * PAGE, PAGE)
                res = yield from dep.executor.run_protocol(proto, client.node)
                versions.append(res.version)

        procs = [dep.sim.process(writer(i)) for i in range(n)]
        dep.sim.run(until=dep.sim.all_of(procs))
        assert sorted(versions) == list(range(1, n * per + 1))
        assert dep.vm.get_latest(blob) == n * per

    def test_interleaved_overlapping_writes_all_publish(self):
        n = 10
        dep, blob = make(n)

        def writer(i):
            client = dep.client(i)
            rng = substream(4, "sim-writer", i)
            for _ in range(4):
                offset = int(rng.integers(0, 64)) * PAGE
                npages = int(rng.integers(1, 8))
                proto = client.write_virtual_proto(blob, offset, npages * PAGE)
                yield from dep.executor.run_protocol(proto, client.node)

        procs = [dep.sim.process(writer(i)) for i in range(n)]
        dep.sim.run(until=dep.sim.all_of(procs))
        assert dep.vm.get_latest(blob) == n * 4
        assert dep.vm.in_flight_versions(blob) == []

    def test_reader_never_sees_unpublished_version(self):
        """Readers polling LATEST while writers run: every observed version
        must already be published at observation time."""
        dep, blob = make(4)
        observed: list[tuple[int, int]] = []

        def writer(i):
            client = dep.client(i)
            for k in range(6):
                proto = client.write_virtual_proto(blob, (i * 6 + k) * PAGE, PAGE)
                yield from dep.executor.run_protocol(proto, client.node)

        def reader(i):
            client = dep.client(i)
            for _ in range(12):
                proto = client.read_virtual_proto(blob, 0, PAGE)
                res = yield from dep.executor.run_protocol(proto, client.node)
                observed.append((res.version, res.latest))

        procs = [dep.sim.process(writer(i)) for i in range(2)]
        procs += [dep.sim.process(reader(i)) for i in (2, 3)]
        dep.sim.run(until=dep.sim.all_of(procs))
        for version, latest in observed:
            assert version <= latest

    def test_stress_many_writers_deterministic(self):
        def run():
            dep, blob = make(16)
            log = []

            def writer(i):
                client = dep.client(i)
                for k in range(3):
                    proto = client.write_virtual_proto(blob, (i * 3 + k) * PAGE, PAGE)
                    res = yield from dep.executor.run_protocol(proto, client.node)
                    log.append((round(dep.sim.now, 9), res.version))

            procs = [dep.sim.process(writer(i)) for i in range(16)]
            dep.sim.run(until=dep.sim.all_of(procs))
            return log

        assert run() == run()


class TestMetadataConsistencyUnderConcurrency:
    def test_every_snapshot_tree_complete_after_concurrent_writes(self):
        """After n concurrent overlapping writes, every published version's
        tree must be fully traversable (no dangling weaving references)."""
        n = 12
        dep, blob = make(n)

        def writer(i):
            client = dep.client(i)
            rng = substream(9, "weave", i)
            offset = int(rng.integers(0, 32)) * PAGE
            npages = int(rng.integers(1, 16))
            proto = client.write_virtual_proto(blob, offset, npages * PAGE)
            yield from dep.executor.run_protocol(proto, client.node)

        procs = [dep.sim.process(writer(i)) for i in range(n)]
        dep.sim.run(until=dep.sim.all_of(procs))
        latest = dep.vm.get_latest(blob)
        assert latest == n
        # traverse every snapshot over the whole written window
        client = dep.client(0)
        for version in range(1, latest + 1):
            res = client.read_virtual(blob, 0, 48 * PAGE, version=version)
            assert res.version == version  # traversal completed

    def test_border_refs_only_to_smaller_versions(self):
        """Scan all stored internal nodes: children never reference a
        version newer than the node's own (acyclicity of weaving)."""
        n = 8
        dep, blob = make(n)

        def writer(i):
            client = dep.client(i)
            proto = client.write_virtual_proto(blob, (i % 4) * PAGE, 2 * PAGE)
            yield from dep.executor.run_protocol(proto, client.node)

        procs = [dep.sim.process(writer(i)) for i in range(n)]
        dep.sim.run(until=dep.sim.all_of(procs))
        for provider in dep.meta.values():
            for key in provider.list_nodes(blob):
                node = provider.get_node(key)
                if not node.is_leaf:
                    assert node.left_version <= key.version
                    assert node.right_version <= key.version
