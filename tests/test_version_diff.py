"""Snapshot structural diffing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.errors import VersionNotPublished
from repro.util.intervals import Interval
from repro.util.sizes import KB
from repro.version.diff import changed_ranges, merge_intervals
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_kept(self):
        parts = [Interval(0, 4), Interval(8, 4)]
        assert merge_intervals(parts) == parts

    def test_adjacent_coalesced(self):
        assert merge_intervals([Interval(0, 4), Interval(4, 4)]) == [Interval(0, 8)]

    def test_overlap_and_containment(self):
        got = merge_intervals([Interval(0, 10), Interval(5, 3), Interval(8, 6)])
        assert got == [Interval(0, 14)]

    def test_unsorted_input(self):
        got = merge_intervals([Interval(8, 4), Interval(0, 4), Interval(4, 4)])
        assert got == [Interval(0, 12)]


class TestChangedRanges:
    def test_no_change_same_version(self, client, blob):
        client.write(blob, pages(2), 0)
        assert changed_ranges(client, blob, 1, 1) == []

    def test_single_patch(self, client, blob):
        client.write(blob, pages(2, b"a"), 0)  # v1
        client.write(blob, pages(1, b"b"), 4 * SMALL_PAGE)  # v2
        got = changed_ranges(client, blob, 1, 2)
        assert got == [Interval(4 * SMALL_PAGE, SMALL_PAGE)]

    def test_from_zero_version(self, client, blob):
        client.write(blob, pages(3, b"a"), SMALL_PAGE)
        got = changed_ranges(client, blob, 0, 1)
        assert got == [Interval(SMALL_PAGE, 3 * SMALL_PAGE)]

    def test_multi_version_union(self, client, blob):
        client.write(blob, pages(1, b"a"), 0)  # v1
        client.write(blob, pages(1, b"b"), 0)  # v2 (same page)
        client.write(blob, pages(1, b"c"), 8 * SMALL_PAGE)  # v3
        got = changed_ranges(client, blob, 1, 3)
        assert got == [
            Interval(0, SMALL_PAGE),
            Interval(8 * SMALL_PAGE, SMALL_PAGE),
        ]

    def test_adjacent_patches_merge(self, client, blob):
        client.write(blob, pages(1, b"a"), 0)  # v1
        client.write(blob, pages(1, b"b"), SMALL_PAGE)  # v2
        client.write(blob, pages(1, b"c"), 2 * SMALL_PAGE)  # v3
        got = changed_ranges(client, blob, 1, 3)
        assert got == [Interval(SMALL_PAGE, 2 * SMALL_PAGE)]

    def test_symmetric_arguments(self, client, blob):
        client.write(blob, pages(1, b"a"), 0)
        client.write(blob, pages(2, b"b"), 4 * SMALL_PAGE)
        assert changed_ranges(client, blob, 2, 1) == changed_ranges(
            client, blob, 1, 2
        )

    def test_unpublished_version_rejected(self, client, blob):
        client.write(blob, pages(1), 0)
        with pytest.raises(VersionNotPublished):
            changed_ranges(client, blob, 1, 9)

    def test_rewrite_of_same_range_reported(self, client, blob):
        """Structural semantics: rewriting identical bytes still reports."""
        client.write(blob, pages(1, b"s"), 0)
        client.write(blob, pages(1, b"s"), 0)
        assert changed_ranges(client, blob, 1, 2) == [Interval(0, SMALL_PAGE)]

    def test_diff_prunes_shared_subtrees(self, dep, blob):
        """The efficiency claim: diffing two snapshots that differ in one
        page must not fetch the whole tree."""
        client = dep.client("differ", )
        client.cache = None  # count provider gets directly
        client.write(blob, pages(SMALL_TOTAL // SMALL_PAGE, b"f"), 0)  # full
        gets_before = sum(m.gets for m in dep.meta.values())
        client.write(blob, pages(1, b"g"), 0)
        changed_ranges(client, blob, 1, 2)
        gets_used = sum(m.gets for m in dep.meta.values()) - gets_before
        # both root-to-leaf paths (depth+1 each), nothing else
        geom = client.open(blob)
        assert gets_used <= 2 * (geom.depth + 1)


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=2,
        max_size=8,
    ),
    data=st.data(),
)
def test_diff_matches_patch_history(writes, data):
    """changed_ranges(v1, v2) == union of patches in (v1, v2], exactly."""
    TOTAL, PAGE = 256 * KB, 4 * KB
    dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
    client = dep.client()
    blob = client.alloc(TOTAL, PAGE)
    patches = []
    for first, npages in writes:
        npages = min(npages, 64 - first)
        client.write(blob, b"x" * (npages * PAGE), first * PAGE)
        patches.append(Interval(first * PAGE, npages * PAGE))
    v2 = len(patches)
    v1 = data.draw(st.integers(min_value=0, max_value=v2), label="v1")
    got = changed_ranges(client, blob, v1, v2)
    expected = merge_intervals(list(patches[v1:v2]))
    assert got == expected
