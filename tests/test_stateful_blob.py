"""Stateful property testing: the blob service vs a model, under random
operation sequences (writes, versioned reads, GC, provider churn).

Hypothesis drives arbitrary interleavings of API calls and checks after
every step that the distributed implementation is indistinguishable from
the flat reference model — including after garbage collection removed
history and after data providers joined mid-run.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.errors import NodeMissing, VersionNotPublished
from repro.util.sizes import KB

TOTAL = 128 * KB
PAGE = 4 * KB
NPAGES = TOTAL // PAGE


class BlobMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.dep = build_inproc(DeploymentSpec(n_data=3, n_meta=3))
        self.client = self.dep.client("machine")
        self.blob = self.client.alloc(TOTAL, PAGE)
        self.snapshots: list[bytes] = [bytes(TOTAL)]  # version 0
        self.live: set[int] = {0}
        self.counter = 0

    # -- rules -----------------------------------------------------------

    @rule(
        first=st.integers(min_value=0, max_value=NPAGES - 1),
        npages=st.integers(min_value=1, max_value=6),
    )
    def write(self, first: int, npages: int) -> None:
        npages = min(npages, NPAGES - first)
        self.counter += 1
        data = bytes([self.counter % 251 + 1]) * (npages * PAGE)
        result = self.client.write(self.blob, data, first * PAGE)
        latest = bytearray(self.snapshots[-1])
        latest[first * PAGE : first * PAGE + len(data)] = data
        self.snapshots.append(bytes(latest))
        assert result.version == len(self.snapshots) - 1
        self.live.add(result.version)

    @rule(
        offset=st.integers(min_value=0, max_value=TOTAL - 1),
        size=st.integers(min_value=1, max_value=3 * PAGE),
        pick=st.randoms(use_true_random=False),
    )
    def read_live_version(self, offset: int, size: int, pick) -> None:
        size = min(size, TOTAL - offset)
        version = pick.choice(sorted(self.live))
        got = self.client.read_bytes(self.blob, offset, size, version=version)
        assert got == self.snapshots[version][offset : offset + size]

    @rule(
        offset=st.integers(min_value=0, max_value=TOTAL - 1),
        pick=st.randoms(use_true_random=False),
    )
    def read_collected_version_fails(self, offset: int, pick) -> None:
        collected = [
            v for v in range(1, len(self.snapshots)) if v not in self.live
        ]
        if not collected:
            return
        version = pick.choice(collected)
        # a fresh client (no cache) must fail to traverse a collected tree
        fresh = self.dep.client(f"fresh-{self.counter}-{version}")
        try:
            fresh.read(self.blob, offset, 1, version=version)
        except NodeMissing:
            return
        raise AssertionError(f"collected version {version} still readable")

    @rule()
    def read_future_version_fails(self) -> None:
        try:
            self.client.read(self.blob, 0, 1, version=len(self.snapshots) + 3)
        except VersionNotPublished:
            return
        raise AssertionError("unpublished version readable")

    @precondition(lambda self: len(self.live) > 2)
    @rule(keep_count=st.integers(min_value=1, max_value=2))
    def collect_garbage(self, keep_count: int) -> None:
        versions = sorted(v for v in self.live if v >= 1)
        keep = versions[-keep_count:]
        self.client.gc(self.blob, keep, self.dep.data_ids, self.dep.meta_ids)
        self.live = {0, *keep}

    @precondition(lambda self: len(self.dep.data) < 6)
    @rule()
    def provider_joins(self) -> None:
        self.dep.add_data_provider()

    # -- invariants ---------------------------------------------------------

    @invariant()
    def latest_matches_model(self) -> None:
        assert self.client.latest(self.blob) == len(self.snapshots) - 1

    @invariant()
    def no_writes_in_flight(self) -> None:
        assert self.dep.vm.in_flight_versions(self.blob) == []


TestBlobStateMachine = BlobMachine.TestCase
TestBlobStateMachine.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
