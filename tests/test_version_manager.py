"""Version manager: assignment, in-order publication, read resolution."""

import pytest

from repro.errors import BlobNotFound, StaleWrite, VersionNotPublished
from repro.util.intervals import Interval
from repro.util.sizes import KB, MB
from repro.version.manager import LATEST, VersionManager

TOTAL, PAGE = 1 * MB, 4 * KB


def vm_with_blob():
    vm = VersionManager()
    return vm, vm.alloc(TOTAL, PAGE)


class TestAlloc:
    def test_ids_unique_and_stable(self):
        vm = VersionManager()
        a, b = vm.alloc(TOTAL, PAGE), vm.alloc(TOTAL, PAGE)
        assert a != b
        assert vm.blob_ids() == sorted([a, b])

    def test_stat(self):
        vm, blob = vm_with_blob()
        assert vm.stat(blob) == (TOTAL, PAGE, 0)

    def test_unknown_blob(self):
        vm = VersionManager()
        with pytest.raises(BlobNotFound):
            vm.stat("nope")
        with pytest.raises(BlobNotFound):
            vm.assign("nope", 0, PAGE)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(Exception):
            VersionManager().alloc(3 * MB, PAGE)


class TestAssign:
    def test_versions_are_successive_from_one(self):
        vm, blob = vm_with_blob()
        t1 = vm.assign(blob, 0, PAGE)
        t2 = vm.assign(blob, PAGE, PAGE)
        assert (t1.version, t2.version) == (1, 2)

    def test_ticket_refs_cover_borders(self):
        vm, blob = vm_with_blob()
        t = vm.assign(blob, 0, PAGE)
        refs = t.refs_as_dict()
        # first write: every border reference is version 0
        assert set(refs.values()) == {0}
        assert Interval(PAGE, PAGE) in refs

    def test_refs_reference_in_flight_writer(self):
        """Writer isolation (paper §IV.C): v2's refs point at v1 even
        though v1 has not completed."""
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)  # v1, in flight
        t2 = vm.assign(blob, PAGE, PAGE)
        assert t2.refs_as_dict()[Interval(0, PAGE)] == 1

    def test_unaligned_patch_rejected(self):
        vm, blob = vm_with_blob()
        with pytest.raises(Exception):
            vm.assign(blob, 7, PAGE)

    def test_patch_of(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, PAGE, 2 * PAGE)
        assert vm.patch_of(blob, 1) == Interval(PAGE, 2 * PAGE)
        with pytest.raises(StaleWrite):
            vm.patch_of(blob, 9)


class TestPublication:
    def test_in_order_completion(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.assign(blob, PAGE, PAGE)
        assert vm.complete(blob, 1) == 1
        assert vm.complete(blob, 2) == 2

    def test_out_of_order_completion_holds_publication(self):
        """The serializability core: v2 completing first must NOT publish
        until v1 completes."""
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)  # v1
        vm.assign(blob, PAGE, PAGE)  # v2
        assert vm.complete(blob, 2) == 0  # still unpublished!
        assert vm.get_latest(blob) == 0
        assert vm.complete(blob, 1) == 2  # both publish together
        assert vm.get_latest(blob) == 2

    def test_long_out_of_order_chain(self):
        vm, blob = vm_with_blob()
        n = 10
        for i in range(n):
            vm.assign(blob, i * PAGE, PAGE)
        for v in range(n, 1, -1):  # complete 10, 9, ..., 2
            assert vm.complete(blob, v) == 0
        assert vm.complete(blob, 1) == n

    def test_unknown_completion_rejected(self):
        vm, blob = vm_with_blob()
        with pytest.raises(StaleWrite):
            vm.complete(blob, 1)

    def test_double_completion_rejected(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.complete(blob, 1)
        with pytest.raises(StaleWrite):
            vm.complete(blob, 1)

    def test_in_flight_tracking(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.assign(blob, PAGE, PAGE)
        assert vm.in_flight_versions(blob) == [1, 2]
        vm.complete(blob, 1)
        assert vm.in_flight_versions(blob) == [2]


class TestReadResolution:
    def test_latest_sentinel(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.complete(blob, 1)
        assert vm.resolve_read(blob, LATEST) == (1, 1)

    def test_explicit_published_version(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.complete(blob, 1)
        assert vm.resolve_read(blob, 1) == (1, 1)
        assert vm.resolve_read(blob, 0) == (0, 1)

    def test_unpublished_version_fails(self):
        """Paper §II: 'If v has not yet been published, then the read
        fails.'"""
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)  # assigned, not completed
        with pytest.raises(VersionNotPublished):
            vm.resolve_read(blob, 1)

    def test_returned_latest_dominates_requested(self):
        """Paper §II: vr >= v for every successful read."""
        vm, blob = vm_with_blob()
        for i in range(3):
            vm.assign(blob, i * PAGE, PAGE)
            vm.complete(blob, i + 1)
        effective, latest = vm.resolve_read(blob, 2)
        assert latest >= effective == 2


class TestAbandon:
    def test_abandon_most_recent(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.abandon(blob, 1)
        # the version slot is reusable and refs are clean
        t = vm.assign(blob, 0, PAGE)
        assert t.version == 1
        assert set(t.refs_as_dict().values()) == {0}

    def test_abandon_non_latest_rejected(self):
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)
        vm.assign(blob, PAGE, PAGE)
        with pytest.raises(StaleWrite):
            vm.abandon(blob, 1)

    def test_abandon_unknown_rejected(self):
        vm, blob = vm_with_blob()
        with pytest.raises(StaleWrite):
            vm.abandon(blob, 5)

    def test_liveness_after_abandon(self):
        """A crashed last writer no longer blocks publication."""
        vm, blob = vm_with_blob()
        vm.assign(blob, 0, PAGE)  # v1 will complete
        vm.assign(blob, PAGE, PAGE)  # v2 crashes
        vm.complete(blob, 1)
        vm.abandon(blob, 2)
        t3 = vm.assign(blob, 2 * PAGE, PAGE)
        assert t3.version == 2
        assert vm.complete(blob, 2) == 2


class TestDispatch:
    def test_rpc_surface(self):
        vm, blob = vm_with_blob()
        t = vm.handle("vm.assign", (blob, 0, PAGE))
        assert t.version == 1
        assert vm.handle("vm.complete", (blob, 1)) == 1
        assert vm.handle("vm.get_latest", (blob,)) == 1
        assert vm.handle("vm.stat", (blob,)) == (TOTAL, PAGE, 1)
        assert vm.handle("vm.resolve_read", (blob, LATEST)) == (1, 1)
        assert vm.handle("vm.in_flight", (blob,)) == []
        with pytest.raises(ValueError):
            vm.handle("vm.nope", ())
