"""Tree introspection: dumps and sharing statistics."""

import pytest

from repro.metadata.inspect import TreeInspector
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages

NPAGES = SMALL_TOTAL // SMALL_PAGE


class TestDump:
    def test_version_zero(self, client, blob):
        dump = TreeInspector(client).dump(blob, 0)
        assert "all-zero" in dump

    def test_single_write_dump(self, client, blob, small_geom):
        client.write(blob, pages(1, b"d"), 0)
        dump = TreeInspector(client).dump(blob, 1)
        assert f"{blob} v1" in dump
        assert "page@providers" in dump
        assert "(zeros)" in dump
        # one line per path node + zero markers; root is first entry
        assert dump.splitlines()[1].startswith("[0, +4 MB)")

    def test_shared_annotations(self, client, blob):
        client.write(blob, pages(2, b"a"), 0)  # v1
        client.write(blob, pages(1, b"b"), 0)  # v2 shares v1's page 1
        dump = TreeInspector(client).dump(blob, 2)
        assert "<- v1" in dump  # weaving link rendered

    def test_max_depth_bounds_output(self, client, blob, small_geom):
        client.write(blob, pages(4, b"x"), 0)
        full = TreeInspector(client).dump(blob, 1)
        shallow = TreeInspector(client).dump(blob, 1, max_depth=2)
        assert len(shallow.splitlines()) < len(full.splitlines())


class TestSharingStats:
    def test_first_write_owns_everything(self, client, blob, small_geom):
        client.write(blob, pages(1, b"a"), 0)
        stats = TreeInspector(client).sharing_stats(blob, 1)
        assert stats.total_nodes == small_geom.depth + 1
        assert stats.own_nodes == stats.total_nodes
        assert stats.sharing_ratio == 0.0

    def test_small_patch_mostly_shared(self, client, blob, small_geom):
        client.write(blob, pages(NPAGES, b"f"), 0)  # full tree
        client.write(blob, pages(1, b"p"), 0)  # one path
        stats = TreeInspector(client).sharing_stats(blob, 2)
        full_tree = 2 * NPAGES - 1
        assert stats.total_nodes == full_tree
        assert stats.own_nodes == small_geom.depth + 1
        assert stats.sharing_ratio > 0.95

    def test_reachable_nodes_counts_shared_once(self, client, blob):
        client.write(blob, pages(2, b"a"), 0)
        client.write(blob, pages(2, b"b"), 4 * SMALL_PAGE)
        inspector = TreeInspector(client)
        assert inspector.reachable_nodes(blob, 2) > inspector.reachable_nodes(
            blob, 1
        )

    def test_stats_match_paper_economy_claim(self, client, blob, small_geom):
        """Across k successive single-page writes, total metadata grows by
        one path per write — not one tree per write."""
        client.write(blob, pages(NPAGES, b"0"), 0)
        inspector = TreeInspector(client)
        for k in range(2, 6):
            client.write(blob, pages(1, bytes([k])), (k % NPAGES) * SMALL_PAGE)
            stats = inspector.sharing_stats(blob, k)
            assert stats.own_nodes == small_geom.depth + 1
