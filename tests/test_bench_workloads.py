"""Bench harness: workload generators and figure scaffolding."""

import pytest

from repro.bench.figures import FigureData, Series, render_series_table
from repro.bench.workloads import SegmentPicker, populate_window, run_concurrent_clients
from repro.core.config import DeploymentSpec
from repro.deploy.simulated import SimDeployment
from repro.util.sizes import KB, MB, TB

PAGE = 64 * KB


class TestSegmentPicker:
    def test_offsets_within_window(self):
        picker = SegmentPicker(window=64 * MB, segment=8 * MB, base=1 * MB)
        gen = picker.offsets(0)
        for _ in range(20):
            off = next(gen)
            assert 1 * MB <= off < 1 * MB + 64 * MB
            assert (off - 1 * MB) % (8 * MB) == 0

    def test_each_lap_covers_all_slots(self):
        picker = SegmentPicker(window=32 * MB, segment=8 * MB)
        gen = picker.offsets(3)
        lap = {next(gen) for _ in range(4)}
        assert len(lap) == 4  # a permutation, not sampling with replacement

    def test_clients_deterministic_and_distinct(self):
        picker = SegmentPicker(window=64 * MB, segment=8 * MB)
        a1 = [next(picker.offsets(0)) for _ in range(1)]
        a2 = [next(picker.offsets(0)) for _ in range(1)]
        assert a1 == a2
        seq_a = list(zip(range(8), picker.offsets(0)))
        seq_b = list(zip(range(8), picker.offsets(1)))
        assert seq_a != seq_b

    def test_window_validation(self):
        with pytest.raises(ValueError):
            next(SegmentPicker(window=1 * MB, segment=8 * MB).offsets(0))


class TestWorkloadRuns:
    def make(self, n_clients=2):
        dep = SimDeployment(
            DeploymentSpec(n_data=4, n_meta=4, n_clients=n_clients, cache_capacity=0)
        )
        blob = dep.alloc_blob(1 * TB, PAGE)
        return dep, blob

    def test_populate_window(self):
        dep, blob = self.make()
        client = dep.client(0)
        versions = populate_window(client, blob, window=8 * MB, segment=2 * MB)
        assert versions == 4
        assert dep.vm.get_latest(blob) == 4

    def test_run_concurrent_clients_write(self):
        dep, blob = self.make(2)
        picker = SegmentPicker(window=16 * MB, segment=2 * MB)
        bws = run_concurrent_clients(dep, blob, 2, 3, picker, kind="write")
        assert len(bws) == 2
        assert all(10 < bw < 120 for bw in bws)

    def test_run_concurrent_clients_read_cached_faster(self):
        dep, blob = self.make(1)
        picker = SegmentPicker(window=8 * MB, segment=2 * MB)
        populate_window(dep.client(0), blob, 8 * MB, 2 * MB)
        uncached = run_concurrent_clients(dep, blob, 1, 4, picker, kind="read")
        dep2, blob2 = self.make(1)
        populate_window(dep2.client(0), blob2, 8 * MB, 2 * MB)
        picker2 = SegmentPicker(window=8 * MB, segment=2 * MB)
        cached = run_concurrent_clients(
            dep2, blob2, 1, 4, picker2, kind="read", cached=True
        )
        assert cached[0] > uncached[0]

    def test_unknown_kind_rejected(self):
        dep, blob = self.make(1)
        picker = SegmentPicker(window=8 * MB, segment=2 * MB)
        with pytest.raises(ValueError):
            run_concurrent_clients(dep, blob, 1, 1, picker, kind="scan")


class TestFigureScaffolding:
    def test_render_series_table(self):
        fig = FigureData(
            figure_id="Fig X",
            title="demo",
            xlabel="x",
            ylabel="y",
            series=[Series("a", [1, 2], [0.5, 1.5])],
            paper=[Series("a", [1, 2], [0.4, 1.2])],
            notes="n",
        )
        text = render_series_table(fig)
        assert "Fig X" in text and "[measured] a" in text and "[paper] a" in text
        assert "note: n" in text

    def test_series_by_label(self):
        fig = FigureData("f", "t", "x", "y", series=[Series("a", [1], [2])])
        assert fig.series_by_label("a").y == [2]
        with pytest.raises(KeyError):
            fig.series_by_label("zzz")
