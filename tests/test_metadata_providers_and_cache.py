"""Metadata provider store, router dispersal, and the client cache."""

import pytest

from repro.errors import ImmutabilityViolation, NodeMissing, ProviderUnavailable
from repro.metadata.cache import MetadataCache
from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.provider import MetadataProvider
from repro.metadata.router import StaticRouter


def node(version=1, offset=0, size=4096, blob="b"):
    return TreeNode(
        key=NodeKey(blob, version, offset, size), providers=(0,), write_uid="w"
    )


class TestMetadataProvider:
    def test_put_get_roundtrip(self):
        mp = MetadataProvider(0)
        n = node()
        mp.put_node(n)
        assert mp.get_node(n.key) == n
        assert mp.node_count == 1

    def test_missing_node(self):
        with pytest.raises(NodeMissing):
            MetadataProvider(0).get_node(NodeKey("b", 1, 0, 4096))

    def test_write_once_idempotent_identical(self):
        mp = MetadataProvider(0)
        n = node()
        mp.put_node(n)
        assert mp.put_node(n) is True  # replica retry is fine
        assert mp.puts == 1

    def test_write_once_conflict_rejected(self):
        mp = MetadataProvider(0)
        mp.put_node(node())
        conflicting = TreeNode(
            key=NodeKey("b", 1, 0, 4096), providers=(9,), write_uid="other"
        )
        with pytest.raises(ImmutabilityViolation):
            mp.put_node(conflicting)

    def test_free_and_list(self):
        mp = MetadataProvider(0)
        n1, n2 = node(version=1), node(version=2)
        mp.put_node(n1)
        mp.put_node(n2)
        mp.put_node(node(blob="other"))
        assert set(mp.list_nodes("b")) == {n1.key, n2.key}
        assert mp.free_nodes([n1.key, NodeKey("b", 99, 0, 4096)]) == 1
        assert mp.node_count == 2

    def test_failure_injection(self):
        mp = MetadataProvider(0)
        mp.crash()
        with pytest.raises(ProviderUnavailable):
            mp.get_node(NodeKey("b", 1, 0, 4096))
        with pytest.raises(ProviderUnavailable):
            mp.put_node(node())
        with pytest.raises(ProviderUnavailable):
            mp.iter_nodes("b")  # bulk path honours crash at call time too
        mp.recover()
        mp.put_node(node())

    def test_iter_nodes_matches_list_nodes(self):
        mp = MetadataProvider(0)
        n1, n2 = node(version=1), node(version=2)
        mp.put_node(n1)
        mp.put_node(n2)
        mp.put_node(node(blob="other"))
        assert {n.key for n in mp.iter_nodes("b")} == set(mp.list_nodes("b"))

    def test_rpc_dispatch(self):
        mp = MetadataProvider(0)
        n = node()
        assert mp.handle("meta.put_node", (n,)) is True
        assert mp.handle("meta.get_node", (n.key,)) == n
        assert mp.handle("meta.stats", ())["nodes"] == 1
        with pytest.raises(ValueError):
            mp.handle("meta.nope", ())


class TestStaticRouter:
    def test_deterministic(self):
        r = StaticRouter([0, 1, 2, 3])
        k = NodeKey("b", 1, 0, 4096)
        assert r.primary(k) == r.primary(k)
        assert r.route(k) == r.route(k)

    def test_replicas_distinct_successors(self):
        r = StaticRouter([0, 1, 2, 3], replication=3)
        owners = r.route(NodeKey("b", 1, 0, 4096))
        assert len(set(owners)) == 3
        ids = [o[1] for o in owners]
        # successors on the id ring
        start = ids[0]
        assert ids == [(start + i) % 4 for i in range(3)]

    def test_dispersal_is_roughly_uniform(self):
        r = StaticRouter(list(range(8)))
        counts = {i: 0 for i in range(8)}
        for v in range(2000):
            addr = r.primary(NodeKey("b", v, v * 4096, 4096))
            counts[addr[1]] += 1
        # each provider within 2x of fair share
        for c in counts.values():
            assert 100 < c < 500

    def test_version_changes_placement(self):
        r = StaticRouter(list(range(16)))
        placements = {
            r.primary(NodeKey("b", v, 0, 4096)) for v in range(40)
        }
        assert len(placements) > 5  # different versions spread out

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticRouter([])
        with pytest.raises(ValueError):
            StaticRouter([0], replication=2)
        with pytest.raises(ValueError):
            StaticRouter([0, 1], replication=0)


class TestMetadataCache:
    def test_put_get(self):
        cache = MetadataCache(capacity=4)
        n = node()
        cache.put(n)
        assert cache.get(n.key) == n
        assert n.key in cache
        assert len(cache) == 1

    def test_miss(self):
        cache = MetadataCache(4)
        assert cache.get(NodeKey("b", 1, 0, 4096)) is None
        assert cache.misses == 1

    def test_eviction_at_capacity(self):
        cache = MetadataCache(2)
        nodes = [node(version=v) for v in range(3)]
        for n in nodes:
            cache.put(n)
        assert len(cache) == 2
        assert cache.get(nodes[0].key) is None

    def test_stats(self):
        cache = MetadataCache(4)
        n = node()
        cache.put(n)
        cache.get(n.key)
        cache.get(NodeKey("x", 1, 0, 4096))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_clear(self):
        cache = MetadataCache(4)
        cache.put(node())
        cache.clear()
        assert len(cache) == 0

    def test_versioned_keys_never_alias(self):
        """The coherence-for-free property: distinct versions, distinct keys."""
        cache = MetadataCache(16)
        v1 = node(version=1)
        v2 = TreeNode(
            key=NodeKey("b", 2, 0, 4096), providers=(5,), write_uid="w2"
        )
        cache.put(v1)
        cache.put(v2)
        assert cache.get(v1.key).providers == (0,)
        assert cache.get(v2.key).providers == (5,)
