"""Segment-tree geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, OutOfBounds
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval
from repro.util.sizes import KB, MB, TB

GEOM = TreeGeometry(1 * MB, 4 * KB)  # depth 8, 256 pages


class TestConstruction:
    def test_depth_and_page_count(self):
        assert GEOM.depth == 8
        assert GEOM.page_count == 256
        assert GEOM.root == Interval(0, 1 * MB)

    def test_paper_geometry(self):
        g = TreeGeometry(1 * TB, 64 * KB)
        assert g.depth == 24
        assert g.page_count == 1 << 24

    def test_single_page_blob(self):
        g = TreeGeometry(4 * KB, 4 * KB)
        assert g.depth == 0
        assert g.is_leaf(g.root)

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigError):
            TreeGeometry(3 * MB, 4 * KB)
        with pytest.raises(ConfigError):
            TreeGeometry(1 * MB, 3000)

    def test_rejects_page_bigger_than_blob(self):
        with pytest.raises(ConfigError):
            TreeGeometry(4 * KB, 8 * KB)


class TestBoundsChecks:
    def test_check_bounds_accepts_interior(self):
        assert GEOM.check_bounds(100, 200) == Interval(100, 200)

    def test_check_bounds_rejects(self):
        with pytest.raises(OutOfBounds):
            GEOM.check_bounds(-1, 10)
        with pytest.raises(OutOfBounds):
            GEOM.check_bounds(0, 0)
        with pytest.raises(OutOfBounds):
            GEOM.check_bounds(1 * MB - 10, 20)

    def test_check_aligned(self):
        assert GEOM.check_aligned(4 * KB, 8 * KB) == Interval(4 * KB, 8 * KB)
        with pytest.raises(OutOfBounds):
            GEOM.check_aligned(100, 4 * KB)
        with pytest.raises(OutOfBounds):
            GEOM.check_aligned(0, 100)


class TestRelations:
    def test_children(self):
        left, right = GEOM.children(GEOM.root)
        assert left == Interval(0, 512 * KB)
        assert right == Interval(512 * KB, 512 * KB)

    def test_leaf_has_no_children(self):
        with pytest.raises(ValueError):
            GEOM.children(Interval(0, 4 * KB))

    def test_parent(self):
        assert GEOM.parent(Interval(0, 4 * KB)) == Interval(0, 8 * KB)
        assert GEOM.parent(Interval(12 * KB, 4 * KB)) == Interval(8 * KB, 8 * KB)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            GEOM.parent(GEOM.root)

    def test_page_index_roundtrip(self):
        for idx in (0, 1, 255):
            assert GEOM.page_index(GEOM.leaf_interval(idx)) == idx

    def test_page_index_bounds(self):
        with pytest.raises(OutOfBounds):
            GEOM.leaf_interval(256)
        with pytest.raises(ValueError):
            GEOM.page_index(Interval(0, 8 * KB))

    def test_depth_of(self):
        assert GEOM.depth_of(GEOM.root) == 0
        assert GEOM.depth_of(Interval(0, 4 * KB)) == 8


class TestDecomposition:
    def test_leaves_for_single_byte(self):
        assert list(GEOM.leaves_for(Interval(5, 1))) == [Interval(0, 4 * KB)]

    def test_leaves_for_straddling(self):
        got = list(GEOM.leaves_for(Interval(4 * KB - 1, 2)))
        assert got == [Interval(0, 4 * KB), Interval(4 * KB, 4 * KB)]

    def test_level_intervals_root(self):
        assert list(GEOM.level_intervals(0, Interval(0, 1))) == [GEOM.root]

    def test_visit_intervals_small_request(self):
        visits = list(GEOM.visit_intervals(Interval(0, 4 * KB)))
        # exactly one node per level for a single-page read at offset 0
        assert len(visits) == GEOM.depth + 1
        assert visits[0] == GEOM.root
        assert visits[-1] == Interval(0, 4 * KB)

    def test_count_matches_enumeration(self):
        for iv in (
            Interval(0, 4 * KB),
            Interval(8 * KB, 64 * KB),
            Interval(4 * KB, 12 * KB),
            Interval(0, 1 * MB),
        ):
            assert GEOM.count_visit_nodes(iv) == len(list(GEOM.visit_intervals(iv)))

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=256),
    )
    def test_visit_intervals_properties(self, first, npages):
        npages = min(npages, 256 - first)
        if npages == 0:
            return
        req = Interval(first * 4 * KB, npages * 4 * KB)
        visits = list(GEOM.visit_intervals(req))
        # every visited interval intersects the request
        assert all(iv.intersects(req) for iv in visits)
        # the visited leaves are exactly the request's pages
        leaves = [iv for iv in visits if GEOM.is_leaf(iv)]
        assert leaves == list(GEOM.leaves_for(req))
        # parents of every non-root visit are also visited
        visit_set = set(visits)
        for iv in visits:
            if iv != GEOM.root:
                assert GEOM.parent(iv) in visit_set
