"""Driver equivalence and driver-specific behaviour.

The drivers must be observationally equivalent for any protocol (the full
five-driver certification lives in test_driver_conformance.py); the
threaded driver must additionally survive concurrent callers, and the sim
driver must charge simulated time.
"""

import threading

import pytest

from repro.errors import RemoteError
from repro.net.inproc import InprocDriver
from repro.net.sansio import Batch, Call, Compute
from repro.net.simdriver import SimRpcExecutor
from repro.net.threaded import ThreadedDriver
from repro.sim.engine import Simulator
from repro.sim.network import ClusterSpec, Network


class Counter:
    """Actor with state, to observe aggregation and ordering."""

    def __init__(self):
        self.value = 0
        self.calls = 0

    def handle(self, method, args):
        self.calls += 1
        if method == "add":
            self.value += args[0]
            return self.value
        if method == "get":
            return self.value
        if method == "fail":
            raise RuntimeError("nope")
        raise ValueError(method)


def summing_protocol():
    total = 0
    results = yield Batch([Call(("c", i % 2), "add", (i,)) for i in range(6)])
    total += sum(results)
    yield Compute("client.touch_page", 1)
    (a,) = yield Batch([Call(("c", 0), "get")])
    (b,) = yield Batch([Call(("c", 1), "get")])
    return total, a, b


def expected_result():
    # c0 gets 0,2,4 cumulative 0,2,6; c1 gets 1,3,5 cumulative 1,4,9
    return (0 + 2 + 6 + 1 + 4 + 9, 6, 9)


class TestEquivalence:
    def run_inproc(self):
        driver = InprocDriver({("c", 0): Counter(), ("c", 1): Counter()})
        return driver.run(summing_protocol())

    def run_threaded(self):
        with ThreadedDriver({("c", 0): Counter(), ("c", 1): Counter()}) as driver:
            return driver.run(summing_protocol())

    def run_sim(self):
        sim = Simulator()
        net = Network(sim, ClusterSpec())
        ex = SimRpcExecutor(sim, net)
        client = net.add_node("client", role="client")
        ex.register(("c", 0), Counter(), net.add_node("s0"))
        ex.register(("c", 1), Counter(), net.add_node("s1"))
        proc = sim.process(ex.run_protocol(summing_protocol(), client))
        return sim.run(until=proc)

    def test_all_drivers_agree(self):
        expected = expected_result()
        assert self.run_inproc() == expected
        assert self.run_threaded() == expected
        assert tuple(self.run_sim()) == expected

    def test_empty_batch_yields_empty_results(self):
        """Batch([]) resumes the protocol with [] on every driver."""

        def proto():
            results = yield Batch([])
            return results

        driver = InprocDriver({("c", 0): Counter()})
        assert driver.run(proto()) == []

        sim = Simulator()
        net = Network(sim, ClusterSpec())
        ex = SimRpcExecutor(sim, net)
        client = net.add_node("client", role="client")
        ex.register(("c", 0), Counter(), net.add_node("s0"))
        proc = sim.process(ex.run_protocol(proto(), client))
        assert sim.run(until=proc) == []


class TestThreadedDriver:
    def test_aggregation_one_rpc_per_destination(self):
        c0, c1 = Counter(), Counter()
        with ThreadedDriver({("c", 0): c0, ("c", 1): c1}) as driver:

            def proto():
                yield Batch([Call(("c", i % 2), "add", (1,)) for i in range(8)])
                return True

            driver.run(proto())
            stats = driver.server_stats()
            # 8 sub-calls but only 1 wire RPC per destination
            assert stats[("c", 0)] == (1, 4)
            assert stats[("c", 1)] == (1, 4)

    def test_concurrent_callers(self):
        counter = Counter()
        with ThreadedDriver({"c": counter}) as driver:

            def proto():
                yield Batch([Call("c", "add", (1,))])
                return True

            threads = [
                threading.Thread(target=lambda: driver.run(proto()))
                for _ in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert counter.value == 16

    def test_spawn_future(self):
        with ThreadedDriver({"c": Counter()}) as driver:

            def proto():
                (v,) = yield Batch([Call("c", "add", (5,))])
                return v

            fut = driver.spawn(proto())
            assert fut.result(timeout=10) == 5
            assert fut.done()

    def test_future_carries_exception(self):
        with ThreadedDriver({"c": Counter()}) as driver:

            def proto():
                yield Batch([Call("c", "fail")])

            fut = driver.spawn(proto())
            with pytest.raises(RemoteError):
                fut.result(timeout=10)

    def test_register_after_start(self):
        with ThreadedDriver() as driver:
            driver.register("late", Counter())

            def proto():
                (v,) = yield Batch([Call("late", "add", (2,))])
                return v

            assert driver.run(proto()) == 2

    def test_duplicate_registration_rejected(self):
        with ThreadedDriver({"c": Counter()}) as driver:
            with pytest.raises(ValueError):
                driver.register("c", Counter())

    def test_unknown_destination(self):
        with ThreadedDriver() as driver:

            def proto():
                yield Batch([Call("ghost", "x")])

            with pytest.raises(KeyError):
                driver.run(proto())

    def test_close_idempotent(self):
        driver = ThreadedDriver({"c": Counter()})
        driver.close()
        driver.close()


class TestSimDriver:
    def make(self, spec=None):
        sim = Simulator()
        net = Network(sim, spec or ClusterSpec())
        ex = SimRpcExecutor(sim, net)
        client = net.add_node("client", role="client")
        counter = Counter()
        ex.register("c", counter, net.add_node("server"))
        return sim, ex, client, counter

    def run_proto(self, sim, ex, client, proto):
        proc = sim.process(ex.run_protocol(proto, client))
        return sim.run(until=proc)

    def test_time_advances(self):
        sim, ex, client, _ = self.make()

        def proto():
            yield Batch([Call("c", "add", (1,))])
            return sim.now

        end = self.run_proto(sim, ex, client, proto())
        assert end > 2 * ClusterSpec().latency  # at least a round trip

    def test_compute_charges_client_cpu(self):
        sim, ex, client, _ = self.make()

        def proto():
            yield Compute("client.build_node", 1000)
            return sim.now

        end = self.run_proto(sim, ex, client, proto())
        expected = ClusterSpec().compute_cost("client.build_node", 1000)
        assert end == pytest.approx(expected, rel=0.01)

    def test_aggregation_wire_rpc_accounting(self):
        sim, ex, client, counter = self.make()

        def proto():
            yield Batch([Call("c", "add", (1,)) for _ in range(10)])
            return True

        self.run_proto(sim, ex, client, proto())
        assert ex.wire_rpcs == 1
        assert ex.sub_calls == 10
        assert counter.calls == 10

    def test_aggregation_disabled_one_rpc_each(self):
        sim, ex, client, counter = self.make(ClusterSpec(aggregate=False))

        def proto():
            yield Batch([Call("c", "add", (1,)) for _ in range(10)])
            return True

        self.run_proto(sim, ex, client, proto())
        assert ex.wire_rpcs == 10
        assert counter.value == 10

    def test_aggregation_is_faster(self):
        def run(aggregate):
            sim, ex, client, _ = self.make(ClusterSpec(aggregate=aggregate))

            def proto():
                yield Batch([Call("c", "add", (1,)) for _ in range(50)])
                return sim.now

            return self.run_proto(sim, ex, client, proto())

        assert run(True) < run(False)

    def test_handler_errors_surface(self):
        sim, ex, client, _ = self.make()

        def proto():
            try:
                yield Batch([Call("c", "fail")])
            except RemoteError as exc:
                return exc.error_type

        assert self.run_proto(sim, ex, client, proto()) == "RuntimeError"

    def test_duplicate_registration_rejected(self):
        sim, ex, client, _ = self.make()
        with pytest.raises(ValueError):
            ex.register("c", Counter(), client)

    def test_concurrent_protocols_serialize_on_server_cpu(self):
        """Two clients' service time accumulates on the shared server."""
        sim = Simulator()
        spec = ClusterSpec()
        net = Network(sim, spec)
        ex = SimRpcExecutor(sim, net)
        counter = Counter()
        ex.register("c", counter, net.add_node("server"))
        clients = [net.add_node(f"cl{i}", role="client") for i in range(4)]

        def proto():
            yield Batch([Call("c", "add", (1,)) for _ in range(100)])
            return sim.now

        procs = [sim.process(ex.run_protocol(proto(), c)) for c in clients]
        sim.run(until=sim.all_of(procs))
        service = 100 * spec.service_time("add") + spec.rpc_overhead
        # 4 clients' service must stack on the single server CPU lane
        assert sim.now >= 4 * service
