"""Heartbeat failure detection and its provider-manager integration."""

import pytest

from repro.providers.health import HealthState, HealthTracker
from repro.providers.manager import ProviderManager


def tracker():
    return HealthTracker(suspect_after=3.0, evict_after=10.0)


class TestHealthTracker:
    def test_fresh_provider_alive(self):
        t = tracker()
        t.register(0)
        assert t.state_of(0) == HealthState.ALIVE
        assert t.allocatable() == [0]

    def test_unknown_provider_is_dead(self):
        assert tracker().state_of(99) == HealthState.DEAD

    def test_silence_leads_to_suspicion(self):
        t = tracker()
        t.register(0)
        transitions = t.advance(3.0)
        assert transitions == [(0, HealthState.SUSPECT)]
        assert t.allocatable() == []
        assert t.members() == [0]  # suspect is still a member

    def test_prolonged_silence_evicts(self):
        t = tracker()
        t.register(0)
        t.advance(3.0)  # SUSPECT at t=3
        t.advance(10.0)  # silent 10s AND dwelt 7s in SUSPECT
        assert t.state_of(0) == HealthState.DEAD
        assert t.members() == []

    def test_one_big_clock_step_cannot_skip_suspect_dwell(self):
        """A single jump past evict_after marks SUSPECT, never DEAD: the
        grace window (evict_after - suspect_after of SUSPECT dwell) is
        observed even when the clock arrives in one step."""
        t = tracker()
        t.register(0)
        t.advance(50.0)
        assert t.state_of(0) == HealthState.SUSPECT
        assert t.members() == [0]
        t.advance(56.9)  # dwell 6.9s < 7s: still within grace
        assert t.state_of(0) == HealthState.SUSPECT
        t.advance(57.0)  # dwell complete
        assert t.state_of(0) == HealthState.DEAD

    def test_heartbeat_at_evict_boundary_keeps_membership(self):
        """The beat is credited before the clock advances: a provider
        reporting exactly at the evict_after boundary stays ALIVE and is
        never churned through a deregister/register cycle."""
        t = tracker()
        t.register(0)
        assert t.heartbeat(0, now=10.0) == HealthState.ALIVE
        assert t.state_of(0) == HealthState.ALIVE
        assert t.members() == [0]

    def test_heartbeat_revives_suspect(self):
        t = tracker()
        t.register(0)
        t.advance(4.0)
        assert t.state_of(0) == HealthState.SUSPECT
        t.heartbeat(0)
        assert t.state_of(0) == HealthState.ALIVE
        assert t.allocatable() == [0]

    def test_heartbeat_implicitly_registers(self):
        t = tracker()
        assert t.heartbeat(7, now=1.0) == HealthState.ALIVE
        assert t.members() == [7]

    def test_regular_heartbeats_keep_alive(self):
        t = tracker()
        t.register(0)
        for step in range(1, 20):
            t.heartbeat(0, now=float(step))
        assert t.state_of(0) == HealthState.ALIVE

    def test_clock_monotonicity_enforced(self):
        t = tracker()
        t.advance(5.0)
        with pytest.raises(ValueError):
            t.advance(4.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HealthTracker(suspect_after=0, evict_after=1)
        with pytest.raises(ValueError):
            HealthTracker(suspect_after=5, evict_after=5)

    def test_summary(self):
        t = tracker()
        t.register(0)
        t.register(1)
        t.heartbeat(1, now=0.0)
        t.advance(4.0)
        t.heartbeat(1)
        assert t.summary() == {"alive": 1, "suspect": 1, "members": 2}

    def test_mixed_population_transitions(self):
        t = tracker()
        for pid in range(4):
            t.register(pid)
        t.heartbeat(0, now=2.0)
        t.heartbeat(1, now=2.0)
        transitions = t.advance(4.0)  # 2 and 3 silent for 4s
        assert sorted(pid for pid, _ in transitions) == [2, 3]
        assert t.allocatable() == [0, 1]


class TestManagerIntegration:
    def make_pm(self):
        pm = ProviderManager(health=tracker())
        for pid in range(4):
            pm.register(pid)
        return pm

    def test_allocation_skips_suspects(self):
        pm = self.make_pm()
        pm.heartbeat(0, now=2.0)
        pm.heartbeat(1, now=2.0)
        pm.tick(4.0)  # 2 and 3 have been silent since t=0: suspect
        groups = pm.get_providers("b", 8, 4096)
        used = {g[0] for g in groups}
        assert used == {0, 1}

    def test_dead_providers_deregistered(self):
        pm = self.make_pm()
        for step in range(1, 12):
            pm.heartbeat(0, now=float(step))
        assert pm.providers() == [0]  # 1-3 silent > evict_after: evicted

    def test_revived_provider_reused(self):
        pm = self.make_pm()
        pm.tick(4.0)  # everyone suspect except... all silent -> all suspect
        pm.heartbeat(2)
        groups = pm.get_providers("b", 4, 4096)
        assert {g[0] for g in groups} == {2}

    def test_heartbeat_without_tracker_is_noop(self):
        pm = ProviderManager()
        pm.register(0)
        assert pm.heartbeat(0) == "untracked"
        assert pm.tick(5.0) == []

    def test_rpc_surface(self):
        pm = self.make_pm()
        assert pm.handle("pm.heartbeat", (1, 0.5)) == "alive"
        assert pm.handle("pm.tick", (1.0,)) == []

    def test_heartbeat_registers_new_provider(self):
        pm = self.make_pm()
        pm.heartbeat(9)
        assert 9 in pm.providers()
