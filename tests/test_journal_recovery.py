"""Durable control plane: journal framing, crash-point fault injection,
vm/pm recovery semantics, state-dir locking, and the DiskSpill fsyncs.

The centerpiece is the crash-point sweep: a seeded random vm workload is
journaled once to learn every record boundary, then re-run with the
journal's ``fail_after`` hook killing the write at every boundary (clean
cut) and inside every record (torn tail). Recovery must always land on a
*valid prefix*: the state an uninterrupted vm reaches after exactly the
ops whose records fit before the crash point, with every unpublished
assignment rolled back — never a half-applied record, never a fatal
error from a torn tail.
"""

from __future__ import annotations

import logging
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.journal import (
    Journal,
    JournalCrashed,
    JournalError,
    StateDirLock,
)
from repro.core.persistence import DiskSpill
from repro.errors import ConfigError
from repro.providers.health import HealthTracker
from repro.providers.manager import ProviderManager
from repro.providers.page import PageKey, PagePayload
from repro.providers.strategies import make_strategy
from repro.tools.node import main as node_main
from repro.util.sizes import KB
from repro.version.manager import VersionManager

TOTAL = 32 * KB
PAGE = 4 * KB
NPAGES = TOTAL // PAGE
SEED = 0x1A6B


# ---------------------------------------------------------------------------
# journal framing units
# ---------------------------------------------------------------------------


class TestJournalFraming:
    def test_append_replay_roundtrip(self, tmp_path):
        j = Journal(tmp_path)
        assert j.open() == (None, [])
        records = [("alloc", 1, 2), ("assign", "b", 0, 4096), ("x", [1, 2])]
        for r in records:
            j.append(r)
        j.close()
        state, replayed = Journal(tmp_path).open()
        assert state is None
        assert replayed == records

    def test_torn_tail_is_truncated_and_logged(self, tmp_path, caplog):
        j = Journal(tmp_path)
        j.open()
        j.append(("keep", 1))
        j.append(("keep", 2))
        clean = j.tail_offset
        j.close()
        wal = tmp_path / "wal.log"
        wal.write_bytes(wal.read_bytes() + b"\x99\x00torn-garbage")
        j2 = Journal(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.journal"):
            _, replayed = j2.open()
        assert replayed == [("keep", 1), ("keep", 2)]
        assert j2.truncated_bytes == len(b"\x99\x00torn-garbage")
        assert any("torn tail" in r.message for r in caplog.records)
        # the truncation is physical: the next open sees a clean log
        assert wal.stat().st_size == clean
        j3 = Journal(tmp_path)
        assert j3.open()[1] == [("keep", 1), ("keep", 2)]

    def test_corrupted_record_body_stops_replay_at_prefix(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(("a",))
        keep = j.tail_offset
        j.append(("b",))
        j.close()
        raw = bytearray((tmp_path / "wal.log").read_bytes())
        raw[-1] ^= 0xFF  # flip a byte inside the second record's body
        (tmp_path / "wal.log").write_bytes(raw)
        _, replayed = Journal(tmp_path).open()
        assert replayed == [("a",)]
        assert (tmp_path / "wal.log").stat().st_size == keep

    def test_compact_skips_covered_records(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(("old", 1))
        j.compact({"n": 1})
        j.append(("new", 2))
        j.close()
        state, replayed = Journal(tmp_path).open()
        assert state == {"n": 1}
        assert replayed == [("new", 2)]

    def test_crash_between_snapshot_and_truncate_never_double_applies(
        self, tmp_path
    ):
        """The compaction crash window: the snapshot is published but the
        log still holds the records it covers. Seqnos must dedupe."""
        j = Journal(tmp_path)
        j.open()
        j.append(("r", 1))
        j.append(("r", 2))
        wal_with_records = (tmp_path / "wal.log").read_bytes()
        j.compact({"applied": 2})
        j.close()
        # simulate the crash: restore the pre-truncate log next to the
        # already-published snapshot
        (tmp_path / "wal.log").write_bytes(wal_with_records)
        state, replayed = Journal(tmp_path).open()
        assert state == {"applied": 2}
        assert replayed == []  # both records are covered by the snapshot

    def test_should_compact_policy(self, tmp_path):
        j = Journal(tmp_path, snapshot_every=3)
        j.open()
        for i in range(2):
            j.append(("r", i))
            assert not j.should_compact()
        j.append(("r", 2))
        assert j.should_compact()
        j.compact({})
        assert not j.should_compact()
        assert Journal(tmp_path, snapshot_every=None).open() == ({}, [])

    def test_unreadable_snapshot_is_fatal_not_silent(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.compact({"real": True})
        j.close()
        (tmp_path / "snapshot.pkl").write_bytes(b"not a pickle")
        with pytest.raises(JournalError, match="snapshot"):
            Journal(tmp_path).open()

    def test_bad_config_knobs_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="fsync"):
            Journal(tmp_path, fsync="sometimes")
        with pytest.raises(ConfigError, match="snapshot_every"):
            Journal(tmp_path, snapshot_every=0)

    def test_fsync_always_roundtrip(self, tmp_path):
        j = Journal(tmp_path, fsync="always")
        j.open()
        j.append(("durable", 1))
        j.compact({"s": 1})
        j.append(("durable", 2))
        j.close()
        assert Journal(tmp_path).open() == ({"s": 1}, [("durable", 2)])


class TestFaultInjection:
    def test_fail_after_tears_exactly_at_the_limit(self, tmp_path):
        j = Journal(tmp_path, fail_after=27)
        j.open()
        with pytest.raises(JournalCrashed):
            j.append(("record", "x" * 50))
        # the torn bytes ARE on disk, exactly up to the crash point —
        # like a real power cut mid-write
        assert (tmp_path / "wal.log").stat().st_size == 27

    def test_crashed_journal_stays_dead(self, tmp_path):
        j = Journal(tmp_path, fail_after=1)
        j.open()
        with pytest.raises(JournalCrashed):
            j.append(("r",))
        with pytest.raises(JournalCrashed):
            j.append(("r",))
        with pytest.raises(JournalCrashed):
            j.compact({})


# ---------------------------------------------------------------------------
# crash-point sweep: recovery is always a valid prefix
# ---------------------------------------------------------------------------


def build_vm_ops(seed: int, n: int = 40) -> list[tuple]:
    """A seeded random-but-valid vm workload over up to 3 blobs.

    Ops are ``("alloc", total, page)``, ``("assign", blob_idx, offset,
    size)``, ``("complete", blob_idx, version)`` and ``("abandon",
    blob_idx, version)`` — validity (version in flight, abandon only the
    most recent) is guaranteed by shadowing the vm's bookkeeping here, so
    every op appends exactly one journal record when executed.
    """
    rng = random.Random(seed)
    ops: list[tuple] = []
    blobs: list[dict] = []  # shadow: {"next": int, "in_flight": set}
    for _ in range(n):
        choices = []
        if len(blobs) < 3:
            choices.append("alloc")
        if blobs:
            choices += ["assign", "assign"]
        if any(b["in_flight"] for b in blobs):
            choices += ["complete", "complete", "complete"]
        if any((b["next"] - 1) in b["in_flight"] for b in blobs):
            choices.append("abandon")
        op = rng.choice(choices)
        if op == "alloc":
            blobs.append({"next": 1, "in_flight": set()})
            ops.append(("alloc", TOTAL, PAGE))
        elif op == "assign":
            i = rng.randrange(len(blobs))
            npages = rng.choice((1, 1, 2))
            offset = rng.randrange(0, NPAGES - npages + 1) * PAGE
            ops.append(("assign", i, offset, npages * PAGE))
            blobs[i]["in_flight"].add(blobs[i]["next"])
            blobs[i]["next"] += 1
        elif op == "complete":
            i = rng.choice([k for k, b in enumerate(blobs) if b["in_flight"]])
            v = rng.choice(sorted(blobs[i]["in_flight"]))
            ops.append(("complete", i, v))
            blobs[i]["in_flight"].discard(v)
        else:  # abandon the most recent assignment of an eligible blob
            i = rng.choice(
                [k for k, b in enumerate(blobs)
                 if (b["next"] - 1) in b["in_flight"]]
            )
            v = blobs[i]["next"] - 1
            ops.append(("abandon", i, v))
            blobs[i]["in_flight"].discard(v)
            blobs[i]["next"] -= 1
    return ops


def apply_ops(vm: VersionManager, ops: list[tuple]) -> None:
    """Execute ops; raises JournalCrashed where the fault injection hits."""
    blob_ids: list[str] = []
    for op in ops:
        if op[0] == "alloc":
            blob_ids.append(vm.alloc(op[1], op[2]))
        elif op[0] == "assign":
            vm.assign(blob_ids[op[1]], op[2], op[3])
        elif op[0] == "complete":
            vm.complete(blob_ids[op[1]], op[2])
        else:
            vm.abandon(blob_ids[op[1]], op[2])


def vm_fingerprint(vm: VersionManager) -> dict:
    return {
        "counters": (vm.assigns, vm.completions),
        "blobs": {
            b: (vm.stat(b), vm.patches(b), vm.in_flight_versions(b))
            for b in vm.blob_ids()
        },
    }


def prefix_reference(ops: list[tuple], k: int) -> dict:
    """What recovery must produce after the first ``k`` ops: the
    uninterrupted state machine, with the unpublished tail resolved."""
    vm = VersionManager()
    apply_ops(vm, ops[:k])
    vm.rollback_unpublished()
    return vm_fingerprint(vm)


def test_crash_point_sweep_every_boundary_recovers_a_valid_prefix(tmp_path):
    ops = build_vm_ops(SEED)

    # pass 1: journal the whole workload once to learn record boundaries
    learn_dir = tmp_path / "learn"
    vm = VersionManager(journal=Journal(learn_dir))
    boundaries = [vm.journal.tail_offset]  # offset 0: crash before any record
    blob_ids: list[str] = []
    for op in ops:
        # inline apply to capture the boundary after each op
        if op[0] == "alloc":
            blob_ids.append(vm.alloc(op[1], op[2]))
        elif op[0] == "assign":
            vm.assign(blob_ids[op[1]], op[2], op[3])
        elif op[0] == "complete":
            vm.complete(blob_ids[op[1]], op[2])
        else:
            vm.abandon(blob_ids[op[1]], op[2])
        boundaries.append(vm.journal.tail_offset)
    vm.journal.close()
    assert len(boundaries) == len(ops) + 1
    assert sorted(set(boundaries)) == boundaries, "ops must append monotonically"

    # pass 2: the sweep — for every boundary, crash exactly on it (clean
    # cut after op k) and inside the following record (torn record k+1);
    # recovery must equal the resolved prefix of exactly k ops either way
    sweep: list[tuple[int, int]] = []
    for k, at in enumerate(boundaries):
        sweep.append((k, at))
        if k < len(ops):
            width = boundaries[k + 1] - at
            sweep.append((k, at + 1))            # torn: header cut short
            sweep.append((k, at + width - 1))    # torn: one byte missing
    for k, fail_after in sweep:
        d = tmp_path / f"crash-{k}-{fail_after}"
        crashed = VersionManager(journal=Journal(d, fail_after=fail_after))
        try:
            apply_ops(crashed, ops)
            # only the final boundary fits the whole workload: that sweep
            # point is "SIGKILL immediately after the last append"
            assert k == len(ops), f"fail_after={fail_after} never crashed"
            crashed.journal.close()
        except JournalCrashed:
            pass
        recovered = VersionManager(journal=Journal(d))
        expected = prefix_reference(ops, k)
        got = vm_fingerprint(recovered)
        assert got == expected, (
            f"crash at byte {fail_after} (prefix {k}): recovered state is "
            f"not the resolved prefix"
        )
        for b in recovered.blob_ids():
            assert recovered.in_flight_versions(b) == []
        recovered.journal.close()


def test_recovered_vm_continues_the_workload(tmp_path):
    """After a mid-workload crash and recovery, the surviving prefix is a
    fully functional vm: new assignments take the next version numbers
    and publish in order on the recovered history."""
    ops = build_vm_ops(SEED, n=25)
    vm = VersionManager(journal=Journal(tmp_path, fail_after=600))
    with pytest.raises(JournalCrashed):
        apply_ops(vm, ops)
    vm2 = VersionManager(journal=Journal(tmp_path))
    for b in vm2.blob_ids():
        latest = vm2.get_latest(b)
        t = vm2.assign(b, 0, PAGE)
        assert t.version == latest + 1
        assert vm2.complete(b, t.version) == t.version
    vm2.close()
    # clean shutdown compacted: a third incarnation replays zero records
    vm3 = VersionManager(journal=Journal(tmp_path))
    assert vm3.replayed_records == 0
    assert vm_fingerprint(vm3) == vm_fingerprint(vm2)


def test_clean_shutdown_replays_nothing(tmp_path):
    vm = VersionManager(journal=Journal(tmp_path))
    b = vm.alloc(TOTAL, PAGE)
    t = vm.assign(b, 0, PAGE)
    vm.complete(b, t.version)
    vm.close()
    vm2 = VersionManager(journal=Journal(tmp_path))
    assert vm2.replayed_records == 0 and vm2.rolled_back == 0
    assert vm2.get_latest(b) == 1


def test_runtime_compaction_is_transparent(tmp_path):
    vm = VersionManager(journal=Journal(tmp_path, snapshot_every=5))
    b = vm.alloc(TOTAL, PAGE)
    for _ in range(20):
        t = vm.assign(b, 0, PAGE)
        vm.complete(b, t.version)
    assert vm.journal.records_since_snapshot < 5
    vm.journal.close()  # unclean: recovery goes through snapshot + tail
    vm2 = VersionManager(journal=Journal(tmp_path, snapshot_every=5))
    assert vm_fingerprint(vm2) == vm_fingerprint(vm)


# ---------------------------------------------------------------------------
# provider manager recovery
# ---------------------------------------------------------------------------


class TestProviderManagerRecovery:
    def make(self, d, strategy="round_robin", **kw):
        return ProviderManager(
            make_strategy(strategy, **kw), journal=Journal(d)
        )

    def test_membership_load_and_cursor_survive(self, tmp_path):
        pm = self.make(tmp_path)
        for i in range(5):
            pm.register(i)
        pm.deregister(4)
        first = pm.get_providers("b", 5, PAGE)
        pm.journal.close()  # crash

        ref = ProviderManager(make_strategy("round_robin"))
        for i in range(5):
            ref.register(i)
        ref.deregister(4)
        assert ref.get_providers("b", 5, PAGE) == first

        pm2 = self.make(tmp_path)
        assert pm2.providers() == [0, 1, 2, 3]
        assert pm2.load_view() == ref.load_view()
        # the round-robin cursor resumed: placement continues where the
        # dead incarnation stopped, not from provider 0
        assert pm2.get_providers("b", 3, PAGE) == ref.get_providers("b", 3, PAGE)

    def test_rng_strategy_stream_survives(self, tmp_path):
        pm = self.make(tmp_path, "random_k", k=2, seed=11)
        for i in range(6):
            pm.register(i)
        a = pm.get_providers("b", 4, PAGE)
        pm.journal.close()
        pm2 = self.make(tmp_path, "random_k", k=2, seed=11)
        b = pm2.get_providers("b", 4, PAGE)
        ref = ProviderManager(make_strategy("random_k", k=2, seed=11))
        for i in range(6):
            ref.register(i)
        assert a == ref.get_providers("b", 4, PAGE)
        assert b == ref.get_providers("b", 4, PAGE)

    def test_settings_mismatch_refuses_loudly(self, tmp_path):
        pm = self.make(tmp_path)
        pm.register(0)
        pm.journal.close()
        with pytest.raises(ConfigError, match="refusing"):
            ProviderManager(
                make_strategy("round_robin"),
                replication=2,
                journal=Journal(tmp_path),
            )

    def test_health_evictions_survive_a_restart(self, tmp_path):
        pm = ProviderManager(
            make_strategy("round_robin"),
            health=HealthTracker(suspect_after=5.0, evict_after=10.0),
            journal=Journal(tmp_path),
        )
        for i in range(3):
            pm.register(i)
        pm.tick(5.0)  # provider 2 never beats: SUSPECT from t=5
        pm.heartbeat(0, now=8.0)
        pm.heartbeat(1, now=8.0)
        # silent >= evict_after AND a full SUSPECT dwell served: DEAD,
        # journaled as deregister
        pm.tick(11.0)
        assert pm.providers() == [0, 1]
        pm.journal.close()  # crash
        pm2 = ProviderManager(
            make_strategy("round_robin"),
            health=HealthTracker(suspect_after=5.0, evict_after=10.0),
            journal=Journal(tmp_path),
        )
        assert pm2.providers() == [0, 1], "a dead provider was resurrected"
        # recovered members are re-registered with the fresh detector
        assert set(pm2.health.allocatable()) == {0, 1}


# ---------------------------------------------------------------------------
# state-dir locking and the CLI
# ---------------------------------------------------------------------------


class TestStateDirLock:
    def test_exclusive_within_and_across_acquires(self, tmp_path):
        lock = StateDirLock(tmp_path).acquire()
        assert lock.held
        with pytest.raises(ConfigError, match="locked by a live agent"):
            StateDirLock(tmp_path).acquire()
        lock.release()
        assert not lock.held
        StateDirLock(tmp_path).acquire().release()  # free after release

    def test_lock_names_the_holder_pid(self, tmp_path):
        import os

        lock = StateDirLock(tmp_path).acquire()
        try:
            with pytest.raises(ConfigError, match=str(os.getpid())):
                StateDirLock(tmp_path).acquire()
        finally:
            lock.release()


class TestNodeCliStateDir:
    def test_state_dir_that_is_a_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "occupied"
        path.write_text("i am a file")
        code = node_main(["--actor", "vm", "--state-dir", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_locked_state_dir_exits_2(self, tmp_path, capsys):
        lock = StateDirLock(tmp_path).acquire()
        try:
            code = node_main(["--actor", "vm", "--state-dir", str(tmp_path)])
        finally:
            lock.release()
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "locked by a live agent" in err

    def test_state_dir_is_created_and_locked_for_real_agents(self, tmp_path):
        """Two real CLI processes on one state dir: the second must exit 2
        with the one-line error while the first is alive."""
        import os

        state = tmp_path / "vm-state"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONPATH=src)
        argv = [sys.executable, "-m", "repro.tools.node",
                "--actor", "vm", "--port", "0", "--state-dir", str(state)]
        first = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            assert first.stdout.readline().startswith("READY")
            assert state.is_dir() and (state / "agent.lock").exists()
            second = subprocess.run(
                argv, capture_output=True, text=True, timeout=30, env=env,
            )
            assert second.returncode == 2
            assert "locked by a live agent" in second.stderr
            assert second.stderr.strip().count("\n") == 0
        finally:
            first.kill()
            first.wait(10)


# ---------------------------------------------------------------------------
# DiskSpill durability knob
# ---------------------------------------------------------------------------


class TestDiskSpillFsync:
    def test_default_never_policy_does_not_fsync(self, tmp_path):
        spill = DiskSpill(tmp_path)
        spill.store(PageKey("b", "w", 0), PagePayload.real(b"x" * 64))
        assert spill.fsyncs == 0

    def test_always_policy_fsyncs_file_and_directory(self, tmp_path):
        spill = DiskSpill(tmp_path, fsync="always")
        spill.store(PageKey("b", "w", 0), PagePayload.real(b"x" * 64))
        assert spill.fsyncs == 2  # tmp file before rename + parent dir after
        assert spill.load(PageKey("b", "w", 0)).as_bytes() == b"x" * 64

    def test_policy_knob_shares_the_journal_vocabulary(self, tmp_path):
        with pytest.raises(ConfigError, match="fsync"):
            DiskSpill(tmp_path, fsync="usually")
