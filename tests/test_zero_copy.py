"""Zero-copy page handling: split -> store -> fetch without materializing.

``split_pages`` keeps memoryview slices of the caller's buffer, the data
provider stores the payload object as-is, and a fetched page still shares
the original memory. Pages are write-once/immutable downstream, which is
what makes the sharing safe (the same argument that makes lock-free reads
safe in the paper).
"""

from __future__ import annotations

import pytest

from repro.core.config import DeploymentSpec
from repro.core.protocol import split_pages
from repro.deploy.inproc import build_inproc
from repro.providers.data_provider import DataProvider
from repro.providers.page import PageKey, PagePayload

PAGE = 4096


class TestSplitPagesZeroCopy:
    def test_slices_share_the_source_buffer(self):
        data = bytes(range(256)) * 48  # 3 pages
        payloads = split_pages(data, PAGE)
        assert len(payloads) == 3
        for p in payloads:
            assert type(p.data) is memoryview
            # .obj is the buffer a memoryview was sliced from: no copy made
            assert p.data.obj is data

    def test_contents_are_correct_views(self):
        data = b"a" * PAGE + b"b" * PAGE
        first, second = split_pages(data, PAGE)
        assert first.as_bytes() == b"a" * PAGE
        assert second.as_bytes() == b"b" * PAGE
        assert first.nbytes == second.nbytes == PAGE

    def test_payload_equality_across_representations(self):
        view = memoryview(b"xyzw")
        assert PagePayload.real(view) == PagePayload.real(b"xyzw")


class TestPagePayloadSources:
    def test_bytes_kept_as_is(self):
        data = b"q" * 64
        assert PagePayload.real(data).data is data

    def test_memoryview_kept_as_is(self):
        view = memoryview(b"q" * 64)
        assert PagePayload.real(view).data is view

    def test_bytearray_is_snapshotted(self):
        """Mutable sources must be copied: published pages are immutable."""
        buf = bytearray(b"mutable!")
        payload = PagePayload.real(buf)
        buf[0:1] = b"X"
        assert payload.as_bytes() == b"mutable!"

    def test_writable_memoryview_is_snapshotted(self):
        """A view over a mutable buffer aliases it — must be copied too."""
        buf = bytearray(b"A" * 8)
        payload = PagePayload.real(memoryview(buf)[0:4])
        buf[0:4] = b"ZZZZ"
        assert payload.as_bytes() == b"AAAA"

    def test_readonly_view_over_mutable_buffer_is_snapshotted(self):
        """toreadonly() hides writes through the view, not through the
        underlying bytearray — the base's mutability is what matters."""
        buf = bytearray(b"A" * 8)
        payload = PagePayload.real(memoryview(buf).toreadonly()[0:4])
        buf[0:4] = b"ZZZZ"
        assert payload.as_bytes() == b"AAAA"

    def test_non_byte_itemsize_view_is_snapshotted_with_byte_length(self):
        import array

        view = memoryview(array.array("i", [7] * 16))
        payload = PagePayload.real(view)
        assert payload.nbytes == view.nbytes == 64
        assert len(payload.as_bytes()) == 64

    def test_split_pages_of_bytearray_does_not_alias(self):
        buf = bytearray(b"A" * (2 * PAGE))
        pages = split_pages(buf, PAGE)  # type: ignore[arg-type]
        buf[0:PAGE] = b"Z" * PAGE
        assert pages[0].as_bytes() == b"A" * PAGE


class TestProviderPassthrough:
    def test_put_get_preserve_the_payload_object(self):
        data = b"d" * (2 * PAGE)
        payloads = split_pages(data, PAGE)
        dp = DataProvider(0)
        for i, payload in enumerate(payloads):
            dp.put_page(PageKey("blob", "w1", i), payload)
        for i, payload in enumerate(payloads):
            fetched = dp.get_page(PageKey("blob", "w1", i))
            assert fetched is payload  # no copy anywhere in the store
            assert fetched.data.obj is data  # still the caller's buffer

    def test_bytes_stored_accounting_uses_view_length(self):
        dp = DataProvider(0)
        dp.put_page(PageKey("b", "w", 0), split_pages(bytes(PAGE), PAGE)[0])
        assert dp.bytes_stored == PAGE


class TestReadIntoCallerBuffer:
    """Zero-copy READ assembly: scatter into a caller-supplied buffer."""

    def _dep_with_blob(self, npages_written=4):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("ri")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        data = bytes(range(256)) * (npages_written * PAGE // 256)
        client.write(blob, data, offset=0)
        return dep, client, blob, data

    def test_result_view_aliases_the_caller_buffer(self):
        _, client, blob, data = self._dep_with_blob()
        buf = bytearray(2 * PAGE)
        res = client.read_into(blob, buf, offset=0)
        assert type(res.data) is memoryview
        assert res.data.obj is buf  # no intermediate buffer anywhere
        assert bytes(buf) == data[: 2 * PAGE]
        assert res.size == 2 * PAGE and res.pages_fetched == 2

    def test_partial_page_scatter_crossing_boundary(self):
        _, client, blob, data = self._dep_with_blob()
        buf = bytearray(100)
        res = client.read_into(blob, buf, offset=PAGE - 50)
        assert bytes(buf) == data[PAGE - 50 : PAGE + 50]
        assert res.zero_bytes == 0

    def test_memoryview_window_of_larger_buffer(self):
        _, client, blob, data = self._dep_with_blob()
        backing = bytearray(b"\xee" * (4 * PAGE))
        window = memoryview(backing)[PAGE : 2 * PAGE]
        client.read_into(blob, window, offset=0)
        assert backing[PAGE : 2 * PAGE] == data[:PAGE]
        # bytes outside the window are untouched
        assert backing[:PAGE] == b"\xee" * PAGE
        assert backing[2 * PAGE :] == b"\xee" * (2 * PAGE)

    def test_version_zero_read_zero_fills_dirty_buffer(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("rz")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        buf = bytearray(b"\xff" * PAGE)
        res = client.read_into(blob, buf, offset=0)
        assert bytes(buf) == bytes(PAGE)
        assert res.version == 0 and res.zero_bytes == PAGE

    def test_zero_gap_regions_are_zero_filled(self):
        """A read spanning written and never-written pages must zero the
        gaps even when the caller's buffer arrives dirty."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("rg")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        client.write(blob, b"W" * PAGE, offset=0)  # page 0 only
        buf = bytearray(b"\xff" * (2 * PAGE))
        res = client.read_into(blob, buf, offset=0)
        assert bytes(buf) == b"W" * PAGE + bytes(PAGE)
        assert res.zero_bytes == PAGE

    def test_interior_zero_gap_between_written_pages(self):
        """Gap zeroing is interval-exact: only the uncovered middle page
        is cleared, written pages land by scatter alone."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("rgi")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        client.write(blob, b"A" * PAGE, offset=0)         # page 0
        client.write(blob, b"C" * PAGE, offset=2 * PAGE)  # page 2
        buf = bytearray(b"\xff" * (3 * PAGE))
        res = client.read_into(blob, buf, offset=0)
        assert bytes(buf) == b"A" * PAGE + bytes(PAGE) + b"C" * PAGE
        assert res.zero_bytes == PAGE

    def test_mutating_the_buffer_cannot_disturb_the_snapshot(self):
        _, client, blob, data = self._dep_with_blob()
        buf = bytearray(PAGE)
        client.read_into(blob, buf, offset=0)
        buf[:] = b"\x00" * PAGE  # scribble over the caller buffer
        assert client.read_bytes(blob, 0, PAGE, version=1) == data[:PAGE]

    def test_readonly_buffer_rejected(self):
        _, client, blob, _ = self._dep_with_blob()
        with pytest.raises(ValueError, match="writable"):
            client.read_into(blob, memoryview(bytes(PAGE)), offset=0)

    def test_empty_buffer_rejected(self):
        from repro.errors import OutOfBounds

        _, client, blob, _ = self._dep_with_blob()
        with pytest.raises(OutOfBounds):
            client.read_into(blob, bytearray(0), offset=0)

    def test_undersized_out_rejected_at_protocol_level(self):
        from repro.core.protocol import read_protocol

        dep, client, blob, _ = self._dep_with_blob()
        geom = client.open(blob)
        with pytest.raises(ValueError, match="cannot hold"):
            dep.driver.run(
                read_protocol(
                    blob, geom, 0, 2 * PAGE, dep.router, out=bytearray(PAGE)
                )
            )


class TestPlainReadAliasFastPath:
    """Plain reads alias the stored page when that is provably safe."""

    def test_single_full_page_roundtrip_is_zero_copy(self):
        """bytes in == the very same bytes object out: a whole-page write
        stores the caller's bytes as-is, and a whole-page read returns it
        without any copy (immutable + write-once makes aliasing safe)."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("alias")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        data = bytes(range(256)) * (PAGE // 256)
        client.write(blob, data, offset=0)
        res = client.read(blob, 0, PAGE)
        assert res.data is data

    def test_multi_page_reads_still_materialize_fresh_bytes(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("alias2")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        data = b"x" * (2 * PAGE)
        client.write(blob, data, offset=0)
        res = client.read(blob, 0, 2 * PAGE)
        assert type(res.data) is bytes and res.data == data
        assert res.data is not data

    def test_full_page_read_of_view_payload_returns_bytes(self):
        """Pages stored as memoryviews (multi-page writes) must surface as
        immutable bytes on the plain-read path."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("alias3")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        client.write(blob, b"a" * PAGE + b"b" * PAGE, offset=0)
        res = client.read(blob, 0, PAGE)
        assert type(res.data) is bytes and res.data == b"a" * PAGE

    def test_gapped_single_page_read_does_not_alias(self):
        """zero_bytes > 0 must disable the alias fast path."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("alias4")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        data = bytes(range(256)) * (PAGE // 256)
        client.write(blob, data, offset=0)
        res = client.read(blob, 0, 2 * PAGE)  # page 1 never written
        assert res.data == data + bytes(PAGE)


class TestPayloadView:
    def test_view_of_bytes_payload_is_zero_copy(self):
        data = b"v" * 64
        payload = PagePayload.real(data)
        view = payload.view()
        assert type(view) is memoryview and view.obj is data

    def test_view_of_view_payload_is_the_same_view(self):
        view = memoryview(b"v" * 64)
        assert PagePayload.real(view).view() is view

    def test_virtual_payload_has_no_view(self):
        assert PagePayload.virtual(64).view() is None


class TestEndToEndWrite:
    def test_written_pages_share_client_buffer_until_read(self):
        """Full WRITE path: pages land on providers as views of the input."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("zc")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        data = b"Z" * (4 * PAGE)
        client.write(blob, data, offset=0)
        stored = [
            payload
            for provider in dep.data.values()
            for payload in provider._pages.values()
        ]
        assert len(stored) == 4
        for payload in stored:
            assert type(payload.data) is memoryview
            assert payload.data.obj is data
        # and a READ still returns the right bytes
        assert client.read_bytes(blob, 0, 4 * PAGE) == data

    def test_read_assembly_handles_view_payloads(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("zc2")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        client.write(blob, b"A" * PAGE + b"B" * PAGE, offset=0)
        # sub-page read crosses the page boundary: slices views on assembly
        assert client.read_bytes(blob, PAGE - 2, 4) == b"AABB"
