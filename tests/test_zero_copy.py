"""Zero-copy page handling: split -> store -> fetch without materializing.

``split_pages`` keeps memoryview slices of the caller's buffer, the data
provider stores the payload object as-is, and a fetched page still shares
the original memory. Pages are write-once/immutable downstream, which is
what makes the sharing safe (the same argument that makes lock-free reads
safe in the paper).
"""

from __future__ import annotations

import pytest

from repro.core.config import DeploymentSpec
from repro.core.protocol import split_pages
from repro.deploy.inproc import build_inproc
from repro.providers.data_provider import DataProvider
from repro.providers.page import PageKey, PagePayload

PAGE = 4096


class TestSplitPagesZeroCopy:
    def test_slices_share_the_source_buffer(self):
        data = bytes(range(256)) * 48  # 3 pages
        payloads = split_pages(data, PAGE)
        assert len(payloads) == 3
        for p in payloads:
            assert type(p.data) is memoryview
            # .obj is the buffer a memoryview was sliced from: no copy made
            assert p.data.obj is data

    def test_contents_are_correct_views(self):
        data = b"a" * PAGE + b"b" * PAGE
        first, second = split_pages(data, PAGE)
        assert first.as_bytes() == b"a" * PAGE
        assert second.as_bytes() == b"b" * PAGE
        assert first.nbytes == second.nbytes == PAGE

    def test_payload_equality_across_representations(self):
        view = memoryview(b"xyzw")
        assert PagePayload.real(view) == PagePayload.real(b"xyzw")


class TestPagePayloadSources:
    def test_bytes_kept_as_is(self):
        data = b"q" * 64
        assert PagePayload.real(data).data is data

    def test_memoryview_kept_as_is(self):
        view = memoryview(b"q" * 64)
        assert PagePayload.real(view).data is view

    def test_bytearray_is_snapshotted(self):
        """Mutable sources must be copied: published pages are immutable."""
        buf = bytearray(b"mutable!")
        payload = PagePayload.real(buf)
        buf[0:1] = b"X"
        assert payload.as_bytes() == b"mutable!"

    def test_writable_memoryview_is_snapshotted(self):
        """A view over a mutable buffer aliases it — must be copied too."""
        buf = bytearray(b"A" * 8)
        payload = PagePayload.real(memoryview(buf)[0:4])
        buf[0:4] = b"ZZZZ"
        assert payload.as_bytes() == b"AAAA"

    def test_readonly_view_over_mutable_buffer_is_snapshotted(self):
        """toreadonly() hides writes through the view, not through the
        underlying bytearray — the base's mutability is what matters."""
        buf = bytearray(b"A" * 8)
        payload = PagePayload.real(memoryview(buf).toreadonly()[0:4])
        buf[0:4] = b"ZZZZ"
        assert payload.as_bytes() == b"AAAA"

    def test_non_byte_itemsize_view_is_snapshotted_with_byte_length(self):
        import array

        view = memoryview(array.array("i", [7] * 16))
        payload = PagePayload.real(view)
        assert payload.nbytes == view.nbytes == 64
        assert len(payload.as_bytes()) == 64

    def test_split_pages_of_bytearray_does_not_alias(self):
        buf = bytearray(b"A" * (2 * PAGE))
        pages = split_pages(buf, PAGE)  # type: ignore[arg-type]
        buf[0:PAGE] = b"Z" * PAGE
        assert pages[0].as_bytes() == b"A" * PAGE


class TestProviderPassthrough:
    def test_put_get_preserve_the_payload_object(self):
        data = b"d" * (2 * PAGE)
        payloads = split_pages(data, PAGE)
        dp = DataProvider(0)
        for i, payload in enumerate(payloads):
            dp.put_page(PageKey("blob", "w1", i), payload)
        for i, payload in enumerate(payloads):
            fetched = dp.get_page(PageKey("blob", "w1", i))
            assert fetched is payload  # no copy anywhere in the store
            assert fetched.data.obj is data  # still the caller's buffer

    def test_bytes_stored_accounting_uses_view_length(self):
        dp = DataProvider(0)
        dp.put_page(PageKey("b", "w", 0), split_pages(bytes(PAGE), PAGE)[0])
        assert dp.bytes_stored == PAGE


class TestEndToEndWrite:
    def test_written_pages_share_client_buffer_until_read(self):
        """Full WRITE path: pages land on providers as views of the input."""
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("zc")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        data = b"Z" * (4 * PAGE)
        client.write(blob, data, offset=0)
        stored = [
            payload
            for provider in dep.data.values()
            for payload in provider._pages.values()
        ]
        assert len(stored) == 4
        for payload in stored:
            assert type(payload.data) is memoryview
            assert payload.data.obj is data
        # and a READ still returns the right bytes
        assert client.read_bytes(blob, 0, 4 * PAGE) == data

    def test_read_assembly_handles_view_payloads(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        client = dep.client("zc2")
        blob = client.alloc(total_size=1 << 20, pagesize=PAGE)
        client.write(blob, b"A" * PAGE + b"B" * PAGE, offset=0)
        # sub-page read crosses the page boundary: slices views on assembly
        assert client.read_bytes(blob, PAGE - 2, 4) == b"AABB"
