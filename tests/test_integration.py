"""Cross-module integration scenarios."""

import numpy as np
import pytest

from repro.core.client import BlobClient
from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.dht.adapter import DhtMetadataService, SingleServiceRouter
from repro.dht.ring import ChordRing
from repro.util.rng import substream
from repro.util.sizes import KB, MB
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


class TestMultiBlob:
    def test_independent_version_spaces(self, dep, client):
        a = client.alloc(SMALL_TOTAL, SMALL_PAGE)
        b = client.alloc(SMALL_TOTAL, SMALL_PAGE)
        client.write(a, pages(1, b"a"), 0)
        client.write(a, pages(1, b"A"), 0)
        client.write(b, pages(1, b"b"), 0)
        assert client.latest(a) == 2
        assert client.latest(b) == 1
        assert client.read_bytes(a, 0, 4, version=2) == b"AAAA"
        assert client.read_bytes(b, 0, 4, version=1) == b"bbbb"

    def test_different_geometries_coexist(self, dep, client):
        small = client.alloc(256 * KB, 4 * KB)
        large = client.alloc(4 * MB, 16 * KB)
        client.write(small, b"s" * 8 * KB, 0)
        client.write(large, b"L" * 32 * KB, 0)
        assert client.read_bytes(small, 0, 3) == b"sss"
        assert client.read_bytes(large, 16 * KB, 3) == b"LLL"


class TestManyClientsOneDriver:
    def test_clients_have_private_caches(self, dep, blob):
        w = dep.client("writer")
        w.write(blob, pages(2, b"p"), 0)
        r1, r2 = dep.client("r1"), dep.client("r2")
        r1.read(blob, 0, SMALL_PAGE)
        assert len(r1.cache._lru) > 0
        assert len(r2.cache._lru) == 0

    def test_write_uids_never_collide(self, dep, blob):
        clients = [dep.client(f"c{i}") for i in range(4)]
        for c in clients:
            for _ in range(3):
                c.write(blob, pages(1, b"u"), 0)
        # 12 writes → 12 distinct pages stored (write-once never violated)
        assert dep.total_pages_stored() == 12


class TestFullLifecycle:
    def test_write_read_gc_rewrite_cycle(self, dep, client, blob):
        rng = substream(1, "lifecycle")
        reference = {}
        for v in range(1, 6):
            data = rng.integers(0, 256, size=2 * SMALL_PAGE, dtype=np.uint8).tobytes()
            client.write(blob, data, 0)
            reference[v] = data
        client.gc(blob, [3, 5], dep.data_ids, dep.meta_ids)
        assert client.read_bytes(blob, 0, 2 * SMALL_PAGE, version=3) == reference[3]
        assert client.read_bytes(blob, 0, 2 * SMALL_PAGE, version=5) == reference[5]
        # the system keeps working after GC
        data = rng.integers(0, 256, size=SMALL_PAGE, dtype=np.uint8).tobytes()
        res = client.write(blob, data, SMALL_PAGE)
        assert res.version == 6
        assert client.read_bytes(blob, SMALL_PAGE, SMALL_PAGE) == data


class TestDhtBackedDeployment:
    def test_full_blob_stack_over_chord(self):
        """The general substrate: blob protocols with metadata served by
        the Chord ring through the adapter, including churn mid-workload."""
        dep = build_inproc(DeploymentSpec(n_data=4, n_meta=1))
        ring = ChordRing([f"m{i}" for i in range(6)], replication=2)
        svc = DhtMetadataService(ring)
        dep.driver.unregister(("meta", 0))
        dep.driver.register(("meta", 0), svc)
        client = BlobClient(dep.driver, SingleServiceRouter())
        blob = client.alloc(SMALL_TOTAL, SMALL_PAGE)

        client.write(blob, pages(4, b"1"), 0)
        ring.add_node("late-joiner")
        client.write(blob, pages(2, b"2"), 0)
        ring.remove_node("m1", graceful=True)
        # all snapshots intact across churn
        assert client.read_bytes(blob, 0, 4 * SMALL_PAGE, version=1) == pages(4, b"1")
        expected_v2 = pages(2, b"2") + pages(2, b"1")
        assert client.read_bytes(blob, 0, 4 * SMALL_PAGE, version=2) == expected_v2

    def test_chord_crash_with_replication_keeps_blob(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=1))
        ring = ChordRing([f"m{i}" for i in range(5)], replication=3)
        svc = DhtMetadataService(ring)
        dep.driver.unregister(("meta", 0))
        dep.driver.register(("meta", 0), svc)
        client = BlobClient(dep.driver, SingleServiceRouter())
        blob = client.alloc(SMALL_TOTAL, SMALL_PAGE)
        client.write(blob, pages(3, b"K"), 0)
        loaded = max(ring.load_distribution(), key=ring.load_distribution().get)
        ring.remove_node(loaded, graceful=False)
        assert client.read_bytes(blob, 0, 3 * SMALL_PAGE, version=1) == pages(3, b"K")


class TestScaleGeometry:
    def test_terabyte_blob_sparse_access(self, dep):
        """The paper's headline geometry: 1 TB logical size costs nothing
        until written; a single write materializes one path + pages."""
        from repro.util.sizes import GB, TB

        client = dep.client()
        blob = client.alloc(1 * TB, 64 * KB)
        geom = client.geometry(blob)
        assert geom.depth == 24
        res = client.write(blob, b"t" * 128 * KB, 512 * GB)
        assert res.pages_written == 2
        # one node per level 0..23 plus the two leaves of the aligned patch
        assert res.nodes_written == 26
        got = client.read_bytes(blob, 512 * GB, 10, version=1)
        assert got == b"t" * 10
        # reading an untouched region is pure zero-fill
        far = client.read(blob, 0, 64 * KB, version=1)
        assert far.pages_fetched == 0
        assert far.zero_bytes == 64 * KB
