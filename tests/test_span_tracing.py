"""Distributed span tracing: buffers, alignment, export, flight recorder.

The pins for PR 9's span layer, working outward from the primitives:

- span buffers and ``trace_operation`` (client-compute coverage spans);
- cross-process clock alignment — real worker OS processes whose raw
  timestamps provably do *not* nest until alignment shifts them;
- the end-to-end ``repro.tools.trace run --check`` acceptance on a live
  TCP cluster (>= 95 % op coverage, reconciliation, Chrome validity);
- simulated timelines: same schema, deterministic modulo random ids;
- the flight recorder: segment rotation, torn tails, and a SIGKILLed
  agent leaving readable samples behind;
- operator knobs that ride along: ``REPRO_LOG`` and ``--watch``.

Every blocking wait is wall-clock bounded (tests/conftest.py watchdog).
"""

from __future__ import annotations

import json
import logging
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.process import build_process
from repro.deploy.simulated import SimDeployment
from repro.deploy.tcp import build_tcp
from repro.obs.export import (
    align_spans,
    chrome_trace,
    coverage,
    render_critical_path,
    validate_chrome,
    validate_span,
    validate_spans,
)
from repro.obs.metrics import collect_spans, reconcile
from repro.obs.recorder import (
    FlightRecorder,
    list_segments,
    read_flight_records,
)
from repro.obs.spans import (
    CALLER,
    SIM_DOMAIN,
    SpanBuffer,
    make_span,
    new_span_id,
    trace_operation,
)
from repro.util.sizes import KB, MB, TB

PAGE = 4 * KB
TOTAL = 1 * MB


def strip_ids(span: dict) -> dict:
    """A span with its randomly minted identifiers removed — what must
    be reproducible across runs of a deterministic simulation."""
    return {
        k: v for k, v in span.items() if k not in ("trace", "span", "parent")
    }


# ---------------------------------------------------------------------------
# primitives: buffers, trace_operation, schema validation
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_span_buffer_is_a_bounded_ring(self):
        buf = SpanBuffer(capacity=4)
        for i in range(10):
            buf.record(
                make_span(1, i + 1, None, "rpc", f"s{i}", "client", i, i + 1)
            )
        spans = buf.snapshot()
        assert len(spans) == 4 and buf.seen == 10
        assert {s["name"] for s in spans} == {"s6", "s7", "s8", "s9"}
        buf.clear()
        assert buf.snapshot() == [] and buf.seen == 0

    def test_trace_operation_covers_its_own_window(self):
        """With no RPCs inside, the op's wall time is all client compute:
        exit records one client span spanning the whole op window."""
        got: list[dict] = []
        with trace_operation("idle-op", collector=got.append) as tid:
            pass
        assert validate_spans(got) == []
        kinds = {s["kind"]: s for s in got}
        assert set(kinds) == {"op", "client"}
        op, client = kinds["op"], kinds["client"]
        assert op["trace"] == client["trace"] == tid
        assert client["parent"] == op["span"]
        assert client["start_ns"] == op["start_ns"]
        assert client["end_ns"] <= op["end_ns"]
        assert coverage(got)[tid] == pytest.approx(1.0)

    def test_trace_operation_records_errors(self):
        got: list[dict] = []
        with pytest.raises(RuntimeError):
            with trace_operation("doomed", collector=got.append):
                raise RuntimeError("boom")
        op = next(s for s in got if s["kind"] == "op")
        assert op["error"] is True and op["name"] == "doomed"

    def test_validate_span_rejects_malformed(self):
        good = make_span(1, 2, None, "rpc", "data/0", "client", 0, 5)
        assert validate_span(good) == []
        assert validate_span({**good, "kind": "banana"})
        assert validate_span({**good, "start_ns": 9, "end_ns": 3})
        assert validate_span({k: v for k, v in good.items() if k != "trace"})
        assert validate_span({**good, "extra": 1})


# ---------------------------------------------------------------------------
# cross-process clock alignment (real forked worker processes)
# ---------------------------------------------------------------------------


class TestProcessAlignment:
    def test_children_nest_only_after_alignment(self):
        """Worker processes re-mint their span epoch at fork, so their raw
        serving timestamps live in clock domains unrelated to the
        caller's. The negative control pins that the alignment step is
        load-bearing: raw server spans do NOT sit inside their parent rpc
        windows; aligned ones all do, and together the spans cover the
        traced op nearly wall-to-wall."""
        dep = build_process(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0))
        try:
            client = dep.client("span-test")
            blob = client.alloc(TOTAL, PAGE)
            client.write(blob, b"\x01" * (4 * PAGE), 0)  # warm-up, untraced
            CALLER.clear()
            with trace_operation("proc-write") as tid:
                client.write(blob, b"\x02" * (4 * PAGE), 0)
            spans = collect_spans(dep.metrics()) + CALLER.snapshot()
        finally:
            dep.close()
        assert validate_spans(spans) == []
        assert {s["kind"] for s in spans} == {"op", "client", "rpc", "server"}
        # several genuine clock domains: the caller plus worker processes
        assert len({s["domain"] for s in spans}) >= 3

        def nested(pairs):
            return [
                s["start_ns"] >= p["start_ns"] and s["end_ns"] <= p["end_ns"]
                for p, s in pairs
            ]

        def rpc_server_pairs(span_list):
            by_id = {s["span"]: s for s in span_list}
            return [
                (by_id[s["parent"]], s)
                for s in span_list
                if s["kind"] == "server" and s["parent"] in by_id
            ]

        # negative control: the workers' epochs were minted long after the
        # caller's, so unaligned serving times fall far outside the rpc
        # windows — no cross-process pair nests until the clocks are
        # reconciled. (Same-process pairs — the in-process control plane —
        # share the caller's domain and nest trivially; exclude them.)
        cross = [
            (p, s) for p, s in rpc_server_pairs(spans)
            if p["domain"] != s["domain"]
        ]
        assert cross, "worker serving spans must link to caller rpc spans"
        assert not any(nested(cross))

        aligned, offsets = align_spans(spans)
        assert len(offsets) == len({s["domain"] for s in spans})
        assert all(nested(rpc_server_pairs(aligned)))
        assert coverage(aligned)[tid] >= 0.95

    def test_chrome_export_of_aligned_timeline(self):
        dep = build_process(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0))
        try:
            client = dep.client("chrome-test")
            blob = client.alloc(TOTAL, PAGE)
            CALLER.clear()
            with trace_operation("proc-read-write"):
                client.write(blob, b"\x03" * (2 * PAGE), 0)
                client.read_bytes(blob, 0, 2 * PAGE)
            spans = collect_spans(dep.metrics()) + CALLER.snapshot()
        finally:
            dep.close()
        aligned, _ = align_spans(spans)
        doc = chrome_trace(aligned)
        assert validate_chrome(doc) == []
        json.dumps(doc)  # must be serializable as-is
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert any(n.startswith("server:") for n in names)
        assert any(n.startswith("rpc:") for n in names)
        report = render_critical_path(aligned)
        assert "critical path:" in report and "serving side" in report


# ---------------------------------------------------------------------------
# the trace CLI on a live TCP cluster (the PR's acceptance gate)
# ---------------------------------------------------------------------------


class TestTraceCli:
    def test_run_check_exports_and_validates(self, tmp_path, capsys):
        """``trace run --check`` on a loopback TCP cluster: >= 95 % op
        coverage after alignment, clean reconciliation against the PR 8
        histograms, and a valid Chrome document on disk — exactly what CI
        runs as the trace-export conformance step."""
        from repro.tools.trace import main as trace_main

        chrome_out = tmp_path / "trace.json"
        spans_out = tmp_path / "spans.json"
        rc = trace_main([
            "run", "--data", "2", "--meta", "2",
            "--size", str(64 * KB), "--reads", "1",
            "--chrome", str(chrome_out), "--spans", str(spans_out),
            "--critical-path", "--check",
        ])
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "check: OK" in captured.err
        assert "clock domain" in captured.out
        doc = json.loads(chrome_out.read_text())
        assert validate_chrome(doc) == []
        assert doc["traceEvents"], "exported timeline must not be empty"
        spans = json.loads(spans_out.read_text())
        assert validate_spans(spans) == []
        # one aligned timeline: every domain tag rewritten to the reference
        assert len({s["domain"] for s in spans}) == 1

    def test_attach_scrapes_live_cluster(self, tmp_path, capsys):
        from repro.tools.trace import main as trace_main

        with build_tcp(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0)) as dep:
            client = dep.client("attach-test")
            blob = client.alloc(TOTAL, PAGE)
            CALLER.clear()
            with trace_operation("attached-write"):
                client.write(blob, b"\x04" * (2 * PAGE), 0)
            endpoints = tmp_path / "cluster.json"
            endpoints.write_text(json.dumps(dep.cluster_map.to_spec()))
            before = dep.workload_stats()
            rc = trace_main([
                "attach", "--endpoints", f"@{endpoints}",
                "--chrome", str(tmp_path / "attached.json"),
            ])
            captured = capsys.readouterr()
            assert rc == 0, captured.err
            assert "attached:" in captured.out
            # attaching is control-only: no workload counter moved
            assert dep.workload_stats() == before
        doc = json.loads((tmp_path / "attached.json").read_text())
        assert validate_chrome(doc) == []

    def test_attach_bad_endpoints_exits_2(self, capsys):
        from repro.tools.trace import main as trace_main

        assert trace_main(["attach", "--endpoints", "[]"]) == 2
        assert capsys.readouterr().err.startswith("error:")


# ---------------------------------------------------------------------------
# simulated timelines: same schema, deterministic modulo ids
# ---------------------------------------------------------------------------


class TestSimSpans:
    def make(self):
        return SimDeployment(
            DeploymentSpec(n_data=4, n_meta=4, n_clients=1, cache_capacity=0)
        )

    def run_traced(self, dep):
        blob = dep.alloc_blob(1 * TB, 64 * KB)
        client = dep.client(0)
        dep.clear_spans()
        _, tid = client.traced(
            client.write_virtual_proto(blob, 0, 8 * 64 * KB), name="sim-write"
        )
        return dep.spans(), tid

    def test_sim_spans_share_the_real_schema(self):
        spans, tid = self.run_traced(self.make())
        assert validate_spans(spans) == []
        assert {s["kind"] for s in spans} >= {"op", "rpc", "server"}
        assert all(s["domain"] == SIM_DOMAIN for s in spans)
        assert all(s["trace"] == tid for s in spans)
        # born aligned: exporting needs no offset estimation
        aligned, offsets = align_spans(spans)
        assert offsets == {SIM_DOMAIN: 0}
        assert validate_chrome(chrome_trace(aligned)) == []
        # serving spans nest inside their rpc windows by construction
        by_id = {s["span"]: s for s in spans}
        servers = [s for s in spans if s["kind"] == "server"]
        assert servers
        for s in servers:
            parent = by_id[s["parent"]]
            assert parent["start_ns"] <= s["start_ns"] <= s["end_ns"] <= parent["end_ns"]

    def test_sim_spans_are_deterministic_modulo_ids(self):
        """Two identical simulations must model the identical timeline;
        only the randomly minted trace/span ids may differ. This pins
        that recording spans schedules no extra simulator events."""
        first, _ = self.run_traced(self.make())
        second, _ = self.run_traced(self.make())
        assert [strip_ids(s) for s in first] == [strip_ids(s) for s in second]

    def test_tracing_leaves_sim_timing_untouched(self):
        dep_plain, dep_traced = self.make(), self.make()
        blob_p = dep_plain.alloc_blob(1 * TB, 64 * KB)
        blob_t = dep_traced.alloc_blob(1 * TB, 64 * KB)
        dep_plain.client(0).write_virtual(blob_p, 0, 8 * 64 * KB)
        dep_traced.client(0).traced(
            dep_traced.client(0).write_virtual_proto(blob_t, 0, 8 * 64 * KB)
        )
        assert dep_plain.sim.now == dep_traced.sim.now


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_segment_ring_rotates_and_reclaims(self, tmp_path):
        ticks = iter(range(10_000))
        rec = FlightRecorder(
            tmp_path,
            lambda: {"tick": next(ticks), "pad": "x" * 200},
            max_segment_bytes=1024,
            max_segments=3,
        )
        for _ in range(64):
            rec.sample()
        segments = [Path(p) for p in list_segments(str(tmp_path))]
        assert 1 <= len(segments) <= 3
        assert all(p.stat().st_size <= 1024 + 512 for p in segments)
        records = read_flight_records(tmp_path)
        assert records, "the ring must retain the newest samples"
        kept = [r["sample"]["tick"] for r in records]
        assert kept == sorted(kept) and kept[-1] == 63
        assert 0 not in kept, "oldest segments must have been reclaimed"

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path, caplog):
        rec = FlightRecorder(tmp_path, lambda: {"ok": True})
        rec.sample()
        rec.sample()
        seg = list_segments(str(tmp_path))[-1]
        with open(seg, "a") as fh:
            fh.write('{"t": 1, "sample": {"torn...')  # crash mid-write
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            records = read_flight_records(tmp_path)
        assert len(records) == 2
        assert all(r["sample"] == {"ok": True} for r in records)
        assert any("skipping" in r.message for r in caplog.records)

    def test_source_errors_are_recorded_not_raised(self, tmp_path):
        rec = FlightRecorder(tmp_path, lambda: 1 / 0)
        rec.sample()  # must not raise: keep recording through a crash
        (record,) = read_flight_records(tmp_path)
        assert "error" in record and "division" in record["error"]

    def test_background_sampler_start_stop(self, tmp_path):
        rec = FlightRecorder(tmp_path, lambda: {"n": 1}, interval_s=0.02)
        with rec:
            time.sleep(0.1)
        assert rec.samples_taken >= 2  # several periodic + the final one
        records = read_flight_records(tmp_path)
        assert len(records) == rec.samples_taken

    def test_sigkilled_agent_leaves_readable_samples(self, tmp_path):
        """The whole point: a node agent killed with SIGKILL (no atexit,
        no flush handlers) leaves a readable metrics trail on disk."""
        flight = tmp_path / "flight"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.node",
             "--actor", "data/0", "--port", "0",
             "--flight-recorder", str(flight), "--flight-interval", "0.05"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            assert proc.stdout.readline().startswith("READY")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if flight.is_dir() and read_flight_records(flight):
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            proc.kill()
            proc.wait(timeout=10)
        records = read_flight_records(flight)
        assert records, "samples must survive a SIGKILLed agent"
        sample = records[-1]["sample"]
        assert sample["source"] == "node"
        assert "data/0" in sample["actors"]


# ---------------------------------------------------------------------------
# operator knobs: REPRO_LOG, metrics --watch
# ---------------------------------------------------------------------------


@pytest.fixture
def clean_repro_logger():
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level)
    root.handlers = [
        h for h in root.handlers if not getattr(h, "_repro_obs_handler", False)
    ]
    yield root
    root.handlers, root.level = saved


class TestReproLogEnv:
    def test_env_overrides_requested_level(self, monkeypatch, clean_repro_logger):
        from repro.obs.logconfig import configure_logging

        monkeypatch.setenv("REPRO_LOG", "debug")
        assert configure_logging(logging.INFO).level == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG", "15")
        assert configure_logging(logging.INFO).level == 15

    def test_unrecognized_value_is_ignored_with_note(
        self, monkeypatch, clean_repro_logger, capsys
    ):
        from repro.obs.logconfig import configure_logging

        monkeypatch.setenv("REPRO_LOG", "shouty")
        assert configure_logging(logging.INFO).level == logging.INFO
        assert "ignoring unrecognized REPRO_LOG" in capsys.readouterr().err


class TestMetricsWatch:
    def test_watch_reprints_with_delta_column(self, tmp_path, capsys):
        from repro.tools.metrics import main as metrics_main

        with build_tcp(DeploymentSpec(n_data=1, n_meta=1, cache_capacity=0)) as dep:
            client = dep.client("watcher")
            blob = client.alloc(TOTAL, PAGE)
            client.write(blob, b"\x05" * (2 * PAGE), 0)
            endpoints = tmp_path / "cluster.json"
            endpoints.write_text(json.dumps(dep.cluster_map.to_spec()))
            rc = metrics_main([
                "--endpoints", f"@{endpoints}",
                "--watch", "0.05", "--iterations", "2",
            ])
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        # initial table plus two re-scrapes; re-scrapes carry the Δ column
        assert captured.out.count("actor") >= 3
        assert captured.out.count("Δcount") == 2

    def test_caller_rtt_is_folded_into_the_scrape(self):
        from repro.deploy.threaded import build_threaded

        with build_threaded(DeploymentSpec(n_data=2, n_meta=2)) as dep:
            client = dep.client("rtt")
            blob = client.alloc(TOTAL, PAGE)
            client.write(blob, b"\x06" * (2 * PAGE), 0)
            doc = dep.metrics()
        assert "caller_rtt" in doc
        assert {"vm", "data", "meta"} <= set(doc["caller_rtt"])
        assert all(row["count"] >= 1 for row in doc["caller_rtt"].values())
