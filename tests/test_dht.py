"""Chord DHT substrate: hashing, routing, churn, replication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.adapter import DhtMetadataService, SingleServiceRouter
from repro.dht.chord import ChordNode
from repro.dht.hashing import RING_SIZE, in_interval, key_id, node_id
from repro.dht.ring import ChordRing
from repro.errors import NodeMissing


class TestHashing:
    def test_ids_in_range(self):
        assert 0 <= key_id(("blob", 1)) < RING_SIZE
        assert 0 <= node_id("n1") < RING_SIZE

    def test_determinism(self):
        assert key_id(("a", 1)) == key_id(("a", 1))
        assert node_id("x") == node_id("x")

    def test_distinct_names_distinct_ids(self):
        ids = {node_id(f"node-{i}") for i in range(64)}
        assert len(ids) == 64

    def test_in_interval_simple(self):
        assert in_interval(5, 1, 10)
        assert in_interval(10, 1, 10)  # right-inclusive
        assert not in_interval(1, 1, 10)  # left-exclusive
        assert not in_interval(11, 1, 10)

    def test_in_interval_wrapped(self):
        top = RING_SIZE - 1
        assert in_interval(0, top, 5)
        assert in_interval(5, top, 5)
        assert not in_interval(top, top, 5)
        assert in_interval(top, 5, top)

    def test_in_interval_full_ring(self):
        assert in_interval(7, 3, 3)  # a == b denotes the full ring
        assert not in_interval(3, 3, 3, inclusive_right=False)

    @given(
        st.integers(min_value=0, max_value=RING_SIZE - 1),
        st.integers(min_value=0, max_value=RING_SIZE - 1),
        st.integers(min_value=0, max_value=RING_SIZE - 1),
    )
    def test_exclusive_matches_partition(self, x, a, b):
        """x in (a,b] xor x in (b,a] for x != a, b (circular partition)."""
        if x in (a, b) or a == b:
            return
        assert in_interval(x, a, b) != in_interval(x, b, a)


class TestRingBasics:
    def test_single_node_owns_everything(self):
        ring = ChordRing(["only"])
        ring.put("k", 1)
        assert ring.get("k") == 1
        node = ring.nodes["only"]
        assert node.owns(key_id("k"))

    def test_put_get_many(self):
        ring = ChordRing([f"n{i}" for i in range(8)])
        for i in range(100):
            ring.put(("key", i), i)
        for i in range(100):
            assert ring.get(("key", i)) == i

    def test_missing_key(self):
        ring = ChordRing(["a", "b"])
        with pytest.raises(NodeMissing):
            ring.get("ghost")

    def test_delete(self):
        ring = ChordRing(["a", "b"], replication=2)
        ring.put("k", 1)
        assert ring.delete("k") == 2
        with pytest.raises(NodeMissing):
            ring.get("k")

    def test_owner_is_successor_of_key(self):
        ring = ChordRing([f"n{i}" for i in range(12)])
        live = sorted(ring.nodes.values(), key=lambda n: n.id)
        for i in range(50):
            kid = key_id(("probe", i))
            owner = ring.owner_of(("probe", i))
            expected = next((n for n in live if n.id >= kid), live[0])
            assert owner is expected

    def test_lookup_hops_logarithmic(self):
        ring = ChordRing([f"n{i}" for i in range(32)])
        for i in range(200):
            ring.owner_of(("k", i))
        # log2(32) = 5; generous bound on the mean
        assert ring.mean_lookup_hops <= 6.0

    def test_load_roughly_balanced(self):
        ring = ChordRing([f"n{i}" for i in range(8)])
        for i in range(800):
            ring.put(("k", i), i)
        loads = ring.load_distribution()
        assert sum(loads.values()) == 800
        assert max(loads.values()) < 800 * 0.5  # no node hoards half


class TestChurn:
    def test_join_preserves_data(self):
        ring = ChordRing([f"n{i}" for i in range(4)])
        for i in range(120):
            ring.put(("k", i), i * 7)
        ring.add_node("newcomer")
        for i in range(120):
            assert ring.get(("k", i)) == i * 7

    def test_join_moves_only_owed_keys(self):
        ring = ChordRing([f"n{i}" for i in range(4)])
        for i in range(120):
            ring.put(("k", i), i)
        node = ring.add_node("newcomer")
        # everything the newcomer holds must be keys it now owns
        for key in node.store:
            assert node.owns(key_id(key))

    def test_graceful_leave_preserves_data(self):
        ring = ChordRing([f"n{i}" for i in range(5)])
        for i in range(100):
            ring.put(("k", i), i)
        ring.remove_node("n2", graceful=True)
        for i in range(100):
            assert ring.get(("k", i)) == i

    def test_crash_without_replication_loses_data(self):
        ring = ChordRing([f"n{i}" for i in range(5)], replication=1)
        for i in range(100):
            ring.put(("k", i), i)
        victim = max(ring.load_distribution().items(), key=lambda kv: kv[1])[0]
        ring.remove_node(victim, graceful=False)
        lost = 0
        for i in range(100):
            try:
                ring.get(("k", i))
            except NodeMissing:
                lost += 1
        assert lost > 0  # honesty check: r=1 is not fault tolerant

    def test_crash_with_replication_keeps_data(self):
        ring = ChordRing([f"n{i}" for i in range(6)], replication=3)
        for i in range(100):
            ring.put(("k", i), i)
        victim = max(ring.load_distribution().items(), key=lambda kv: kv[1])[0]
        ring.remove_node(victim, graceful=False)
        for i in range(100):
            assert ring.get(("k", i)) == i

    def test_sequential_churn_storm(self):
        ring = ChordRing([f"n{i}" for i in range(4)], replication=2)
        for i in range(60):
            ring.put(("k", i), i)
        for step in range(4):
            ring.add_node(f"extra-{step}")
            ring.remove_node(f"n{step}", graceful=True)
            for i in range(60):
                assert ring.get(("k", i)) == i

    def test_ring_consistency_after_churn(self):
        ring = ChordRing([f"n{i}" for i in range(6)])
        ring.add_node("x")
        ring.remove_node("n0")
        assert ring._consistent()
        live = sorted(
            (n for n in ring.nodes.values() if n.alive), key=lambda n: n.id
        )
        for i, node in enumerate(live):
            assert node.successor is live[(i + 1) % len(live)]


class TestReplicationInvariant:
    def test_every_key_on_exactly_k_nodes(self):
        k = 3
        ring = ChordRing([f"n{i}" for i in range(8)], replication=k)
        for i in range(100):
            ring.put(("k", i), i)
        for i in range(100):
            holders = [
                n for n in ring.nodes.values() if ("k", i) in n.store and n.alive
            ]
            assert len(holders) == k
            # holders are owner + ring successors
            owner = ring.owner_of(("k", i))
            expected = list(owner.replica_targets(k))
            assert set(holders) == set(expected)

    def test_rereplication_after_join(self):
        k = 2
        ring = ChordRing([f"n{i}" for i in range(5)], replication=k)
        for i in range(80):
            ring.put(("k", i), i)
        ring.add_node("late")
        for i in range(80):
            holders = [
                n for n in ring.nodes.values() if ("k", i) in n.store and n.alive
            ]
            assert len(holders) == k


class TestChordNodeEdgeCases:
    def test_isolated_node_self_loops(self):
        n = ChordNode("solo")
        assert n.successor is n
        assert n.owns(12345)

    def test_find_successor_on_single_node(self):
        n = ChordNode("solo")
        owner, hops = n.find_successor(key_id("k"))
        assert owner is n
        assert hops == 0


class TestDhtMetadataAdapter:
    def make(self):
        from repro.metadata.node import NodeKey, TreeNode

        ring = ChordRing([f"m{i}" for i in range(6)], replication=2)
        svc = DhtMetadataService(ring)
        node = TreeNode(
            key=NodeKey("b", 1, 0, 4096), providers=(0,), write_uid="w"
        )
        return svc, node

    def test_put_get(self):
        svc, node = self.make()
        assert svc.put_node(node) is True
        assert svc.get_node(node.key) == node

    def test_idempotent_put(self):
        svc, node = self.make()
        svc.put_node(node)
        assert svc.put_node(node) is True

    def test_conflicting_put_rejected(self):
        from repro.errors import ImmutabilityViolation
        from repro.metadata.node import TreeNode

        svc, node = self.make()
        svc.put_node(node)
        other = TreeNode(key=node.key, providers=(9,), write_uid="zz")
        with pytest.raises(ImmutabilityViolation):
            svc.put_node(other)

    def test_free_and_list(self):
        svc, node = self.make()
        svc.put_node(node)
        assert svc.list_nodes("b") == [node.key]
        assert svc.free_nodes([node.key]) == 1
        assert svc.list_nodes("b") == []

    def test_single_service_router(self):
        from repro.metadata.node import NodeKey

        r = SingleServiceRouter(("meta", 0))
        key = NodeKey("b", 1, 0, 4096)
        assert r.route(key) == (("meta", 0),)
        assert r.primary(key) == ("meta", 0)

    def test_single_service_router_initializes_base_class(self):
        """Regression: __init__ used to bypass StaticRouter.__init__
        entirely, leaving base-class state (the route cache) unset."""
        r = SingleServiceRouter(("meta", 3))
        assert r.meta_ids == (3,)
        assert r._route_cache == {}
        assert r.replication == 1

    def test_single_service_router_honors_ring_replication(self):
        """Regression: replication was hardcoded to 1 no matter what the
        ring behind the service actually replicates at."""
        from repro.metadata.node import NodeKey

        ring = ChordRing([f"m{i}" for i in range(6)], replication=3)
        r = SingleServiceRouter.for_ring(ring)
        assert r.replication == 3
        # one visible endpoint still: dispersal happens inside the ring
        assert r.route(NodeKey("b", 1, 0, 4096)) == (("meta", 0),)
