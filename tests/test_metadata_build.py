"""Write-subtree construction and weaving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata.build import border_intervals, count_write_nodes, plan_write_tree
from repro.metadata.node import NodeKey
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval
from repro.util.sizes import KB, MB

GEOM = TreeGeometry(64 * KB, 4 * KB)  # depth 4, 16 pages


def groups(n):
    return [(0,)] * n


def refs_for(patch, version=2, value=1):
    return {iv: value for iv in border_intervals(GEOM, patch)}


class TestPlanWriteTree:
    def test_full_blob_write_is_complete_tree(self):
        patch = Interval(0, 64 * KB)
        nodes = plan_write_tree(GEOM, "b", 1, patch, {}, groups(16), "w1")
        assert len(nodes) == 31  # complete binary tree over 16 leaves
        assert nodes[0].key == NodeKey("b", 1, 0, 64 * KB)
        leaves = [n for n in nodes if n.is_leaf]
        assert len(leaves) == 16

    def test_single_page_write_is_one_path(self):
        patch = Interval(0, 4 * KB)
        nodes = plan_write_tree(GEOM, "b", 2, patch, refs_for(patch), groups(1), "w")
        assert len(nodes) == GEOM.depth + 1  # root..leaf path
        internal = [n for n in nodes if not n.is_leaf]
        # every internal node on the path references version 2 on the
        # patched side and the border version on the other
        for node in internal:
            assert {node.left_version, node.right_version} <= {1, 2}

    def test_root_always_included(self):
        patch = Interval(60 * KB, 4 * KB)  # last page only
        nodes = plan_write_tree(GEOM, "b", 2, patch, refs_for(patch), groups(1), "w")
        assert nodes[0].interval == GEOM.root

    def test_node_count_closed_form(self):
        for patch in (
            Interval(0, 4 * KB),
            Interval(8 * KB, 16 * KB),
            Interval(4 * KB, 8 * KB),
            Interval(0, 64 * KB),
        ):
            nodes = plan_write_tree(
                GEOM, "b", 2, patch, refs_for(patch),
                groups(patch.size // (4 * KB)), "w",
            )
            assert len(nodes) == count_write_nodes(GEOM, patch)

    def test_leaf_payloads(self):
        patch = Interval(8 * KB, 8 * KB)
        provider_groups = [(3,), (7,)]
        nodes = plan_write_tree(GEOM, "b", 5, patch, refs_for(patch, 5), provider_groups, "w9")
        leaves = sorted(
            (n for n in nodes if n.is_leaf), key=lambda n: n.key.offset
        )
        assert [l.providers for l in leaves] == [(3,), (7,)]
        assert all(l.write_uid == "w9" for l in leaves)
        assert [l.key.offset for l in leaves] == [8 * KB, 12 * KB]

    def test_missing_border_ref_rejected(self):
        patch = Interval(0, 4 * KB)
        with pytest.raises(KeyError, match="missing border reference"):
            plan_write_tree(GEOM, "b", 2, patch, {}, groups(1), "w")

    def test_future_border_ref_rejected(self):
        patch = Interval(0, 4 * KB)
        bad = {iv: 2 for iv in border_intervals(GEOM, patch)}  # >= version
        with pytest.raises(ValueError, match="expected < 2"):
            plan_write_tree(GEOM, "b", 2, patch, bad, groups(1), "w")

    def test_wrong_group_count_rejected(self):
        patch = Interval(0, 8 * KB)
        with pytest.raises(ValueError, match="provider"):
            plan_write_tree(GEOM, "b", 1, patch, refs_for(patch), groups(1), "w")

    def test_unaligned_patch_rejected(self):
        with pytest.raises(Exception):
            plan_write_tree(
                GEOM, "b", 1, Interval(100, 4 * KB), {}, groups(1), "w"
            )

    def test_dfs_order_root_first(self):
        patch = Interval(0, 16 * KB)
        nodes = plan_write_tree(GEOM, "b", 1, patch, refs_for(patch, 1, 0), groups(4), "w")
        seen = set()
        for node in nodes:
            if node.interval != GEOM.root:
                assert GEOM.parent(node.interval) in seen
            seen.add(node.interval)


class TestBorderIntervals:
    def test_full_write_has_no_borders(self):
        assert border_intervals(GEOM, Interval(0, 64 * KB)) == []

    def test_first_page_borders(self):
        borders = border_intervals(GEOM, Interval(0, 4 * KB))
        # one sibling per level: depth siblings
        assert len(borders) == GEOM.depth
        assert Interval(32 * KB, 32 * KB) in borders
        assert Interval(4 * KB, 4 * KB) in borders

    def test_borders_disjoint_from_patch(self):
        patch = Interval(16 * KB, 16 * KB)
        for iv in border_intervals(GEOM, patch):
            assert not iv.intersects(patch)

    @settings(max_examples=60)
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=16),
    )
    def test_borders_union_covers_complement(self, first, npages):
        npages = min(npages, 16 - first)
        if npages == 0:
            return
        patch = Interval(first * 4 * KB, npages * 4 * KB)
        borders = border_intervals(GEOM, patch)
        # borders are disjoint and their union is exactly root \ patch
        total = sum(iv.size for iv in borders)
        assert total == GEOM.total_size - patch.size
        for a in borders:
            for b in borders:
                if a != b:
                    assert not a.intersects(b)

    @settings(max_examples=60)
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=16),
    )
    def test_plan_consumes_exactly_borders(self, first, npages):
        """plan_write_tree uses exactly the border_intervals key set."""
        npages = min(npages, 16 - first)
        if npages == 0:
            return
        patch = Interval(first * 4 * KB, npages * 4 * KB)
        consumed: set = set()

        class Tracker(dict):
            def __getitem__(self, key):
                consumed.add(key)
                return 0

            def __missing__(self, key):  # pragma: no cover
                raise KeyError(key)

        refs = Tracker({iv: 0 for iv in border_intervals(GEOM, patch)})
        plan_write_tree(GEOM, "b", 1, patch, refs, groups(npages), "w")
        assert consumed == set(border_intervals(GEOM, patch))
