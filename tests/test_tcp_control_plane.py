"""Fully distributed control plane: vm/pm on their own node agents.

These are the pins for the sixth deployment configuration — the paper's
layout in full, where the version manager and provider manager run on
dedicated hosts and *no* actor lives in the client parent:

- deployment-wide provider registration: a data-hosting agent registers
  its providers with the pm agent at start (``--pm`` / ``pm_endpoint``),
  retrying with backoff, and does so again after a restart — the replay
  that lets a storage node rejoin the allocation pool by itself;
- vm on its own agent: killing it turns publishes into *typed* fast
  failures (``RemoteError``), and a restarted vm agent on the same
  endpoint resumes service through the driver's reconnect backoff with
  no driver restart;
- the hello/welcome handshake binds control-plane connections exactly
  like provider connections, including RPCs pipelined behind the hello
  (raw-socket pin against a vm agent);
- ``build_tcp(control_plane="agents")`` launches (or dials, inferred
  from ``DeploymentSpec.endpoints``) the control-plane agents and
  guarantees the pm knows every data provider before the first write.

Everything here is wall-clock bounded: every blocking wait carries a
timeout, and the module-level watchdog (conftest.py, enabled via
``REPRO_TEST_TIMEOUT``) hard-kills a stalled run.
"""

from __future__ import annotations

import socket as socket_mod
import threading
import time

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.tcp import (
    ProviderManagerProxy,
    VersionManagerProxy,
    build_tcp,
)
from repro.errors import (
    BlobNotFound,
    ConfigError,
    ImmutabilityViolation,
    RemoteError,
)
from repro.net.address import ClusterMap
from repro.net.codec import MessageDecoder, decode_body, encode_message
from repro.net.node import NodeAgent, build_actor
from repro.net.tcp import TcpDriver
from repro.util.sizes import KB, MB

TOTAL = 1 * MB
PAGE = 4 * KB

JOIN_TIMEOUT = 60.0


def fill(i: int) -> bytes:
    return bytes([i % 251 + 1]) * PAGE


def wait_until(predicate, timeout: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"{what} not reached within {timeout}s")


# ---------------------------------------------------------------------------
# launched mode: the CI cluster with zero in-parent actors
# ---------------------------------------------------------------------------


def test_fully_remote_build_serves_with_zero_in_parent_actors():
    """The whole deployment — data, meta, vm, pm — behind sockets: the
    driver's registry holds only remote peers, the workload round-trips,
    the inspection surface (vm/pm proxies, server stats) reads over the
    wire, and a clean close exits every agent 0."""
    dep = build_tcp(
        DeploymentSpec(n_data=3, n_meta=2, cache_capacity=0),
        control_plane="agents",
    )
    try:
        assert dep.remote_control_plane
        assert dep.in_parent_actors() == []
        assert isinstance(dep.vm, VersionManagerProxy)
        assert isinstance(dep.pm, ProviderManagerProxy)
        # the launched layout: vm and pm agents first, then storage nodes
        assert [a.actor_names for a in dep.agents] == [
            ["vm"], ["pm"], ["data/0", "meta/0"], ["data/1", "meta/1"],
            ["data/2"],
        ]
        assert dep.pm.providers() == [0, 1, 2]

        client = dep.client("remote-cp")
        blob = client.alloc(TOTAL, PAGE)
        res = client.write(blob, fill(1) * 2, 0)
        assert client.read_bytes(blob, 0, 2 * PAGE, version=res.version) == fill(1) * 2
        assert dep.vm.get_latest(blob) == 1
        assert dep.vm.patches(blob) == [(1, 0, 2 * PAGE)]
        assert dep.total_pages_stored() == 2

        stats = dep.driver.server_stats()
        assert "vm" in stats and "pm" in stats  # control actors answer stats
        assert stats["vm"][0] > 0
    finally:
        dep.close()
    assert dep.agent_exitcodes() == [0] * 5


def test_replica_failover_with_remote_control_plane():
    """Replica fail-over must survive a storage-agent death even when the
    pm that allocated the replicas lives on its own agent: the vm/pm
    peers stay up, reads retry onto the surviving copy."""
    dep = build_tcp(
        DeploymentSpec(n_data=3, n_meta=2, replication=2, cache_capacity=0),
        control_plane="agents",
    )
    try:
        client = dep.client("failover")
        blob = client.alloc(TOTAL, PAGE)
        data = fill(3) + fill(4)
        res = client.write(blob, data, 0)
        victim = next(
            pid for pid, proxy in dep.data.items()
            if any(True for _ in proxy.iter_pages(blob))
        )
        dep.kill_agent(dep.agent_index_for(("data", victim)))
        assert client.read_bytes(blob, 0, len(data), version=res.version) == data
        assert dep.vm.get_latest(blob) == 1  # control plane unaffected
    finally:
        dep.close()


# ---------------------------------------------------------------------------
# pm registration: at agent start, and again after a restart
# ---------------------------------------------------------------------------


def test_data_agent_registers_with_pm_at_start_and_after_restart():
    """The paper's §III.A membership protocol over real sockets: a data
    agent told where the pm lives registers its providers at start; a
    *restarted* agent replays that registration, so a provider evicted
    while its node was down rejoins the allocation pool with no
    deployment-builder involvement."""
    pm_agent = NodeAgent({"pm": build_actor("pm")[1]})
    pm_agent.start()
    driver = TcpDriver()
    first = NodeAgent(
        {("data", 0): build_actor("data/0")[1]},
        pm_endpoint=pm_agent.endpoint,
    )
    first.start()
    try:
        driver.register_remote("pm", pm_agent.endpoint)
        driver.wait_connected()
        assert first.pm_registered.wait(JOIN_TIMEOUT), "agent never registered"
        assert driver.call("pm", "pm.providers") == [0]

        # the node goes down; the operator (or a failure detector) evicts it
        first.close()
        assert driver.call("pm", "pm.deregister", (0,)) == 0
        assert driver.call("pm", "pm.providers") == []

        # the node comes back: registration replays from the agent itself
        second = NodeAgent(
            {("data", 0): build_actor("data/0")[1]},
            pm_endpoint=pm_agent.endpoint,
        )
        second.start()
        try:
            assert second.pm_registered.wait(JOIN_TIMEOUT), "restart never re-registered"
            assert driver.call("pm", "pm.providers") == [0]
        finally:
            second.close()
    finally:
        first.close()
        driver.close()
        pm_agent.close()


def test_registration_retries_until_pm_comes_up():
    """Start order must not matter: an agent whose pm endpoint is not yet
    listening keeps retrying with backoff and registers the moment the pm
    agent appears (the launched builder starts the pm first, but real
    clusters make no such promise)."""
    # reserve an endpoint, then free it: nothing listens there yet
    placeholder = socket_mod.create_server(("127.0.0.1", 0))
    pm_port = placeholder.getsockname()[1]
    placeholder.close()

    agent = NodeAgent(
        {("data", 4): build_actor("data/4")[1]},
        pm_endpoint=f"127.0.0.1:{pm_port}",
    )
    agent.start()
    pm_agent = None
    try:
        assert not agent.pm_registered.wait(0.3)  # pm is not up yet
        pm_agent = NodeAgent({"pm": build_actor("pm")[1]}, port=pm_port)
        pm_agent.start()
        assert agent.pm_registered.wait(JOIN_TIMEOUT), (
            "agent never registered after the pm came up"
        )
        assert pm_agent._services["pm"].actor.providers() == [4]
    finally:
        agent.close()
        if pm_agent is not None:
            pm_agent.close()


def test_close_cancels_in_flight_registration():
    """A stopped agent must not register itself afterwards: ``close()``
    severs an in-flight registration connection and reaps the thread
    promptly, so an operator taking a node down never races it back into
    the allocation pool. Driven deterministically with a pm actor that
    stalls inside ``pm.register``."""

    class StallingPm:
        def __init__(self):
            self.entered = threading.Event()
            self.release = threading.Event()

        def handle(self, method, args):
            self.entered.set()
            self.release.wait(JOIN_TIMEOUT)
            return 1

    stall = StallingPm()
    pm_agent = NodeAgent({"pm": stall})
    pm_agent.start()
    agent = NodeAgent(
        {("data", 0): build_actor("data/0")[1]},
        pm_endpoint=pm_agent.endpoint,
    )
    agent.start()
    try:
        assert stall.entered.wait(JOIN_TIMEOUT), "registration never reached pm"
        start = time.monotonic()
        agent.close()  # must sever the registration socket, not wait it out
        register_thread = agent._register_thread
        assert register_thread is not None
        register_thread.join(timeout=2.0)
        assert not register_thread.is_alive(), "registration survived close"
        assert time.monotonic() - start < 3.0, "close waited out the stall"
        assert not agent.pm_registered.is_set()
    finally:
        stall.release.set()
        agent.close()
        pm_agent.close()


# ---------------------------------------------------------------------------
# vm on its own agent: kill -> typed failure -> restart -> recovery
# ---------------------------------------------------------------------------


def test_vm_agent_kill_gives_typed_publish_failure_then_recovers():
    """The serialization point going down must fail writes *fast and
    typed* (RemoteError naming the unreachable peer — never a hang), and
    a vm agent restarted on the same endpoint must resume service through
    the reconnect backoff: new blobs allocate and publish with no driver
    restart. State the old vm held is gone (it has no persistence tier),
    which must surface as the typed BlobNotFound, not corruption."""
    agents = [
        NodeAgent({"vm": build_actor("vm")[1]}),
        NodeAgent({"pm": build_actor("pm")[1]}),
        NodeAgent({("data", 0): build_actor("data/0")[1],
                   ("meta", 0): build_actor("meta/0")[1]}),
    ]
    for a in agents:
        a.start()
    vm_agent, pm_agent, storage_agent = agents
    vm_port = vm_agent.endpoint.port
    endpoints = {
        "vm": str(vm_agent.endpoint),
        "pm": str(pm_agent.endpoint),
        "data/0": str(storage_agent.endpoint),
        "meta/0": str(storage_agent.endpoint),
    }
    dep = build_tcp(
        DeploymentSpec(n_data=1, n_meta=1, cache_capacity=0),
        endpoints=endpoints,
    )
    revived = None
    try:
        assert dep.remote_control_plane  # inferred from the endpoint map
        client = dep.client("vm-kill")
        blob = client.alloc(TOTAL, PAGE)
        res = client.write(blob, fill(7), 0)
        assert res.published

        vm_agent.close()  # the vm's host goes down
        wait_until(
            lambda: not dep.driver.peer("vm").connected,
            what="vm peer noticing the death",
        )
        start = time.monotonic()
        with pytest.raises(RemoteError) as exc_info:
            client.write(blob, fill(8), 0)  # assign/publish both need the vm
        assert "PeerUnavailable" in str(exc_info.value)
        assert time.monotonic() - start < 2.0, "publish failure was not fast"

        # restart: a fresh vm on the same endpoint; the connector redials
        revived = NodeAgent({"vm": build_actor("vm")[1]}, port=vm_port)
        revived.start()
        assert dep.driver.peer("vm").wait_connected(timeout=15), (
            "driver never redialed the revived vm agent"
        )
        # the old blob died with the old vm: typed error, not corruption
        with pytest.raises(BlobNotFound):
            client.read_bytes(blob, 0, PAGE)
        # the stateless restart recycles blob ids, and the providers'
        # surviving *immutable* state refuses the recycled (blob,
        # version) — again typed, never silent corruption (a persistent
        # vm tier is the paper's future-work answer to this)
        recycled = client.alloc(TOTAL, PAGE)
        assert recycled == blob
        with pytest.raises(ImmutabilityViolation):
            client.write(recycled, fill(8), 0)
        # but the deployment is live again: fresh blobs publish end to end
        blob2 = client.alloc(TOTAL, PAGE)
        assert blob2 != blob
        res2 = client.write(blob2, fill(9), 0)
        assert res2.published
        assert client.read_bytes(blob2, 0, PAGE, version=res2.version) == fill(9)
    finally:
        dep.close()
        if revived is not None:
            revived.close()
        for a in agents:
            a.close()


# ---------------------------------------------------------------------------
# handshake: pipelined hello against a control-plane agent (raw socket)
# ---------------------------------------------------------------------------


def test_pipelined_hello_to_vm_agent_is_honored():
    """Control-plane agents speak the exact storage-agent wire protocol:
    a client may pipeline vm RPCs behind its hello, and the agent must
    resume the stream where the handshake left it — including a partial
    frame straddling the handshake/service boundary."""
    agent = NodeAgent({"vm": build_actor("vm")[1]})
    agent.start()
    sock = socket_mod.create_connection(
        (agent.endpoint.host, agent.endpoint.port), timeout=10
    )
    try:
        sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
        stream = (
            encode_message(0, ("hello", "vm"))
            + encode_message(1, ("rpc", [("vm.alloc", (TOTAL, PAGE))]))
            + encode_message(2, ("rpc", [("vm.alloc", (TOTAL, PAGE))]))
        )
        # burst everything but the last frame's tail, so the agent's
        # handshake read buffers a complete rpc AND a partial one
        sock.sendall(stream[:-5])
        time.sleep(0.05)
        sock.sendall(stream[-5:])
        decoder = MessageDecoder()
        seen = {}
        sock.settimeout(10)
        while len(seen) < 3:
            chunk = sock.recv(1 << 16)
            assert chunk, "vm agent closed a pipelined connection"
            for req_id, body in decoder.feed(chunk):
                seen[req_id] = decode_body(body)
        assert seen[0] == ("welcome", "vm")
        # served in pipeline order: the vm minted sequential blob ids
        assert seen[1] == ["blob-000001"]
        assert seen[2] == ["blob-000002"]
    finally:
        sock.close()
        agent.close()


# ---------------------------------------------------------------------------
# builder surface: inference, registration replay, config errors
# ---------------------------------------------------------------------------


def test_connected_mode_replays_registration_for_bare_agents():
    """Operator-run agents that were started *without* ``--pm`` (so they
    never self-registered) must still produce a working deployment: the
    builder replays deployment-wide ``pm.register`` over the wire before
    returning, and close() shuts the operator's agents down cleanly."""
    agents = [
        NodeAgent({"vm": build_actor("vm")[1]}),
        NodeAgent({"pm": build_actor("pm")[1]}),
        NodeAgent({("data", 0): build_actor("data/0")[1],
                   ("meta", 0): build_actor("meta/0")[1]}),
        NodeAgent({("data", 1): build_actor("data/1")[1]}),
    ]
    for a in agents:
        a.start()
    endpoints = {
        "vm": str(agents[0].endpoint),
        "pm": str(agents[1].endpoint),
        "data/0": str(agents[2].endpoint),
        "meta/0": str(agents[2].endpoint),
        "data/1": str(agents[3].endpoint),
    }
    dep = build_tcp(
        DeploymentSpec(n_data=2, n_meta=1, cache_capacity=0, endpoints=endpoints)
    )
    try:
        assert dep.agents == []  # nothing launched: agents are "elsewhere"
        assert dep.remote_control_plane
        assert dep.pm.providers() == [0, 1]  # the builder's replay
        client = dep.client("ext")
        blob = client.alloc(TOTAL, PAGE)
        res = client.write(blob, fill(2) * 3, 0)
        assert client.read_bytes(blob, 0, 3 * PAGE, version=res.version) == fill(2) * 3
    finally:
        dep.close()
        for a in agents:
            assert a.wait_stopped(timeout=10)


def test_control_plane_config_errors():
    cmap = ClusterMap({"vm": "127.0.0.1:1", "pm": "127.0.0.1:1"})
    assert cmap.has_control_plane()
    assert not ClusterMap({"vm": "127.0.0.1:1"}).has_control_plane()

    with pytest.raises(ConfigError):
        build_tcp(DeploymentSpec(n_data=1, n_meta=1), control_plane="bogus")
    # agents mode over explicit endpoints needs vm AND pm entries
    with pytest.raises(ConfigError):
        build_tcp(
            DeploymentSpec(n_data=1, n_meta=1),
            endpoints={"data/0": "127.0.0.1:1", "meta/0": "127.0.0.1:1",
                       "vm": "127.0.0.1:1"},
            control_plane="agents",
        )
    # naming control endpoints while keeping the control plane in-parent
    # is contradictory: refuse instead of silently ignoring the entries
    with pytest.raises(ConfigError):
        build_tcp(
            DeploymentSpec(n_data=1, n_meta=1),
            endpoints={"data/0": "127.0.0.1:1", "meta/0": "127.0.0.1:1",
                       "vm": "127.0.0.1:1", "pm": "127.0.0.1:1"},
            control_plane="parent",
        )
    # a *partial* control map (only one of vm/pm) must refuse too — a
    # silent fall-back would build a fresh in-parent vm next to the
    # operator's vm agent: two disjoint version histories
    with pytest.raises(ConfigError):
        build_tcp(
            DeploymentSpec(n_data=1, n_meta=1),
            endpoints={"data/0": "127.0.0.1:1", "meta/0": "127.0.0.1:1",
                       "vm": "127.0.0.1:1"},
        )
    # a bad pm endpoint is rejected before the agent binds its listener
    with pytest.raises(ConfigError):
        NodeAgent({("data", 0): build_actor("data/0")[1]},
                  pm_endpoint="not-an-endpoint")


def test_pm_config_mismatch_fails_the_build():
    """An operator's pm agent started with different allocation settings
    than the client's DeploymentSpec assumes must fail the build loudly:
    a silent replication mismatch would surface only as data loss at the
    first storage-node failure."""
    agents = [
        NodeAgent({"vm": build_actor("vm")[1]}),
        NodeAgent({"pm": build_actor("pm")[1]}),  # replication=1
        NodeAgent({("data", 0): build_actor("data/0")[1],
                   ("meta", 0): build_actor("meta/0")[1]}),
        NodeAgent({("data", 1): build_actor("data/1")[1],
                   ("meta", 1): build_actor("meta/1")[1]}),
    ]
    for a in agents:
        a.start()
    endpoints = {
        "vm": str(agents[0].endpoint),
        "pm": str(agents[1].endpoint),
        **{f"data/{i}": str(agents[2 + i].endpoint) for i in range(2)},
        **{f"meta/{i}": str(agents[2 + i].endpoint) for i in range(2)},
    }
    try:
        with pytest.raises(ConfigError) as exc_info:
            build_tcp(
                DeploymentSpec(n_data=2, n_meta=2, replication=2,
                               cache_capacity=0, endpoints=endpoints)
            )
        assert "replication" in str(exc_info.value)
        # the same agents with a matching spec build fine afterwards
        dep = build_tcp(
            DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0,
                           endpoints=endpoints)
        )
        assert dep.pm.config() == {
            "replication": 1, "strategy": "round_robin", "strategy_kwargs": {},
        }
        dep.close()
    finally:
        for a in agents:
            a.close()


def test_node_cli_rejects_mismatched_strategy_kwargs(capsys):
    """Config mistakes exit 2 with a one-line error — including kwargs
    that do not fit the chosen strategy's constructor."""
    from repro.tools.node import main

    rc = main(["--port", "0", "--actor", "pm",
               "--strategy", "round_robin", "--strategy-kwargs", '{"k": 2}'])
    assert rc == 2
    assert "error:" in capsys.readouterr().err
