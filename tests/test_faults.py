"""Failure injection and replica fail-over.

The paper defers full fault tolerance to future work but relies on the
DHT's replication for metadata; we implement page and metadata-node
replication (``DeploymentSpec.replication``) and verify that reads
survive provider crashes up to replication-1 failures.
"""

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.errors import (
    NotEnoughProviders,
    PageMissing,
    ProviderUnavailable,
    RemoteError,
)
from repro.util.sizes import KB, MB
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


def make(replication=2, n=4):
    dep = build_inproc(
        DeploymentSpec(n_data=n, n_meta=n, replication=replication)
    )
    client = dep.client()
    blob = client.alloc(SMALL_TOTAL, SMALL_PAGE)
    return dep, client, blob


class TestReadFailover:
    def test_read_survives_one_data_provider_crash(self):
        dep, client, blob = make(replication=2)
        client.write(blob, pages(8, b"R"), 0)
        dep.data[1].crash()
        got = client.read_bytes(blob, 0, 8 * SMALL_PAGE, version=1)
        assert got == pages(8, b"R")

    def test_read_survives_metadata_provider_crash(self):
        dep, client, blob = make(replication=2)
        client.write(blob, pages(8, b"M"), 0)
        dep.meta[2].crash()
        fresh = dep.client("fresh")  # empty cache: must hit providers
        got = fresh.read_bytes(blob, 0, 8 * SMALL_PAGE, version=1)
        assert got == pages(8, b"M")

    def test_read_survives_combined_crashes(self):
        dep, client, blob = make(replication=3, n=6)
        client.write(blob, pages(8, b"C"), 0)
        dep.data[0].crash()
        dep.meta[1].crash()
        dep.data[3].crash()
        dep.meta[4].crash()
        fresh = dep.client("fresh")
        assert fresh.read_bytes(blob, 0, 8 * SMALL_PAGE, version=1) == pages(8, b"C")

    def test_too_many_crashes_fail_loudly(self):
        dep, client, blob = make(replication=2)
        client.write(blob, pages(4, b"x"), 0)
        # find both replicas of some page and kill them
        holders = [
            i for i, dp in dep.data.items() if dp.list_pages(blob)
        ]
        page_key = dep.data[holders[0]].list_pages(blob)[0]
        owners = [i for i, dp in dep.data.items() if dp.has_page(page_key)]
        assert len(owners) == 2
        for i in owners:
            dep.data[i].crash()
        fresh = dep.client("fresh")
        with pytest.raises(ProviderUnavailable):
            fresh.read_bytes(blob, 0, 4 * SMALL_PAGE, version=1)

    def test_recovery_restores_service(self):
        dep, client, blob = make(replication=1)
        client.write(blob, pages(2, b"v"), 0)
        for dp in dep.data.values():
            dp.crash()
        fresh = dep.client("fresh")
        with pytest.raises(ProviderUnavailable):
            fresh.read_bytes(blob, 0, SMALL_PAGE, version=1)
        for dp in dep.data.values():
            dp.recover()
        assert fresh.read_bytes(blob, 0, SMALL_PAGE, version=1) == pages(1, b"v")


class TestWriteFaults:
    def test_write_fails_when_chosen_provider_down(self):
        dep, client, blob = make(replication=1)
        dep.data[0].crash()
        # round robin will hit provider 0 for one of these pages
        with pytest.raises(ProviderUnavailable):
            client.write(blob, pages(4, b"w"), 0)

    def test_crashed_writer_blocks_publication(self):
        """A writer that got a version but died blocks later publication
        (the liveness hazard the paper leaves to future work); abandon
        only applies while the dead writer is the *newest* assignment —
        once later versions exist, the rollback is correctly refused."""
        from repro.errors import StaleWrite

        dep, client, blob = make()
        # simulate a crashed writer: assign without completing
        ticket = dep.vm.assign(blob, 0, SMALL_PAGE)
        res = client.write(blob, pages(1, b"k"), SMALL_PAGE)
        assert res.version == 2
        assert not res.published  # stuck behind the dead writer
        assert client.latest(blob) == 0
        with pytest.raises(StaleWrite):
            dep.vm.abandon(blob, ticket.version)
        assert client.latest(blob) == 0

    def test_replicated_writes_place_page_copies(self):
        dep, client, blob = make(replication=3, n=6)
        client.write(blob, pages(2, b"r"), 0)
        total_copies = sum(dp.page_count for dp in dep.data.values())
        assert total_copies == 2 * 3

    def test_not_enough_providers_for_replication(self):
        with pytest.raises(Exception):
            build_inproc(DeploymentSpec(n_data=2, n_meta=2, replication=3))

    def test_provider_join_expands_capacity(self):
        dep, client, blob = make(replication=1, n=2)
        new_id = dep.add_data_provider()
        assert new_id == 2
        client.write(blob, pages(3, b"j"), 0)
        assert dep.data[2].page_count == 1  # round robin reached it
        assert client.read_bytes(blob, 0, 3 * SMALL_PAGE) == pages(3, b"j")


class TestAbandonEndToEnd:
    def test_abandon_last_writer_restores_liveness(self):
        dep, client, blob = make()
        ticket = dep.vm.assign(blob, 0, SMALL_PAGE)  # dead writer (newest)
        dep.vm.abandon(blob, ticket.version)
        res = client.write(blob, pages(1, b"L"), 0)
        assert res.version == ticket.version  # slot reused
        assert res.published
        assert client.read_bytes(blob, 0, 4) == b"LLLL"
