"""Synthetic sky model and the 2D→1D blob mapping."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sky.mapping import SkyMapping
from repro.sky.skymodel import SkyModel, SkySpec, SupernovaEvent, VariableStar
from repro.util.sizes import KB

SPEC = SkySpec(tiles_x=2, tiles_y=2, seed=3)


class TestSkySpec:
    def test_tile_bytes_default_is_one_page(self):
        assert SkySpec().tile_bytes == 64 * KB

    def test_counts(self):
        assert SPEC.n_tiles == 4
        assert SPEC.tile_pixels == 128 * 256


class TestEvents:
    def test_supernova_light_curve_shape(self):
        sn = SupernovaEvent(tile=(0, 0), x=10, y=10, t0=5.0, peak_flux=1000.0)
        fluxes = [sn.flux(t) for t in range(12)]
        assert max(fluxes) == pytest.approx(1000.0)
        assert np.argmax(fluxes) == 5
        # asymmetry: decays slower than it rises
        assert sn.flux(7.0) > sn.flux(3.0)
        # vanishes long before t0
        assert sn.flux(0.0) < 1.0

    def test_variable_star_periodicity(self):
        var = VariableStar(
            tile=(0, 0), x=5, y=5, base_flux=100.0, amplitude=50.0, period=4.0
        )
        assert var.flux(0.0) == pytest.approx(var.flux(4.0))
        assert var.flux(1.0) == pytest.approx(150.0)
        assert var.flux(3.0) == pytest.approx(50.0)


class TestSkyModel:
    def test_base_field_deterministic(self):
        m = SkyModel(spec=SPEC)
        a = m.base_field((0, 0))
        b = m.base_field((0, 0))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, m.base_field((1, 0)))

    def test_render_shape_and_dtype(self):
        img = SkyModel(spec=SPEC).render_epoch((0, 0), 0)
        assert img.shape == (SPEC.tile_height, SPEC.tile_width)
        assert img.dtype == np.uint16

    def test_epoch_noise_varies(self):
        m = SkyModel(spec=SPEC)
        a = m.render_epoch((0, 0), 0).astype(float)
        b = m.render_epoch((0, 0), 1).astype(float)
        assert not np.array_equal(a, b)
        # but only by noise: the difference has ~zero median
        assert abs(float(np.median(a - b))) < 3 * SPEC.noise_sigma

    def test_supernova_appears_at_peak(self):
        sn = SupernovaEvent(tile=(0, 0), x=50.0, y=40.0, t0=3.0, peak_flux=8000.0)
        m = SkyModel(spec=SPEC, supernovae=[sn])
        quiet = m.render_epoch((0, 0), 0).astype(float)
        peak = m.render_epoch((0, 0), 3).astype(float)
        bump = (peak - quiet)[38:43, 48:53].sum()
        assert bump > 5 * SPEC.noise_sigma * 25

    def test_event_only_in_its_tile(self):
        sn = SupernovaEvent(tile=(1, 1), x=50.0, y=40.0, t0=2.0, peak_flux=8000.0)
        m = SkyModel(spec=SPEC, supernovae=[sn])
        other_quiet = m.base_field((0, 0))
        other_peak = m.render_epoch((0, 0), 2).astype(float)
        assert abs(float((other_peak - other_quiet).mean())) < 2 * SPEC.noise_sigma

    def test_with_random_events_deterministic(self):
        a = SkyModel.with_random_events(SPEC, 3, 2, epochs=8)
        b = SkyModel.with_random_events(SPEC, 3, 2, epochs=8)
        assert a.supernovae == b.supernovae
        assert a.variables == b.variables
        assert len(a.supernovae) == 3 and len(a.variables) == 2

    def test_events_in_tile(self):
        m = SkyModel.with_random_events(SPEC, 4, 4, epochs=8)
        counted = sum(len(m.events_in_tile(t)) for t in
                      [(x, y) for x in range(2) for y in range(2)])
        assert counted == 8


class TestSkyMapping:
    def test_slot_is_page_aligned(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        assert mapping.tile_slot_bytes == 64 * KB
        assert mapping.blob_size >= mapping.used_bytes
        assert mapping.blob_size & (mapping.blob_size - 1) == 0

    def test_padding_when_tile_smaller_than_page(self):
        small = SkySpec(tiles_x=1, tiles_y=1, tile_height=16, tile_width=16)
        mapping = SkyMapping(small, pagesize=4 * KB)
        assert small.tile_bytes == 512
        assert mapping.tile_slot_bytes == 4 * KB

    def test_offsets_row_major_and_disjoint(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        offsets = [mapping.tile_offset(t) for t in mapping.all_tiles()]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == 4
        assert mapping.tile_offset((1, 0)) - mapping.tile_offset((0, 0)) == (
            mapping.tile_slot_bytes
        )

    def test_offset_roundtrip(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        for tile in mapping.all_tiles():
            assert mapping.tile_of_offset(mapping.tile_offset(tile)) == tile

    def test_bad_tile_rejected(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        with pytest.raises(ConfigError):
            mapping.tile_offset((5, 0))
        with pytest.raises(ConfigError):
            mapping.tile_of_offset(mapping.blob_size * 2)

    def test_encode_decode_roundtrip(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        img = SkyModel(spec=SPEC).render_epoch((0, 0), 0)
        data = mapping.encode_tile(img)
        assert len(data) == mapping.tile_slot_bytes
        assert np.array_equal(mapping.decode_tile(data), img)

    def test_encode_validates_shape_dtype(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        with pytest.raises(ConfigError):
            mapping.encode_tile(np.zeros((4, 4), dtype=np.uint16))
        with pytest.raises(ConfigError):
            mapping.encode_tile(
                np.zeros((SPEC.tile_height, SPEC.tile_width), dtype=np.float64)
            )

    def test_decode_validates_length(self):
        mapping = SkyMapping(SPEC, pagesize=64 * KB)
        with pytest.raises(ConfigError):
            mapping.decode_tile(b"short")
