"""The perf-regression differ: loading, diffing, and CLI behavior."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    Comparison,
    compare_dirs,
    compare_results,
    load_results,
    main,
    result_payload,
)
from repro.bench.figures import Series


def _payload(name="bench_a", wall=10.0, y=(1.0, 2.0), counters=None):
    return result_payload(
        name,
        "Fig X",
        [Series("s1", [1, 2], list(y))],
        wall_clock_s=wall,
        counters=counters or {"events": 100},
    )


def _write(directory, payload):
    path = directory / f"{payload['name']}.json"
    path.write_text(json.dumps(payload))
    return path


class TestLoad:
    def test_roundtrip(self, tmp_path):
        _write(tmp_path, _payload())
        results = load_results(tmp_path)
        assert set(results) == {"bench_a"}
        assert results["bench_a"]["wall_clock_s"] == 10.0
        assert results["bench_a"]["series"][0]["label"] == "s1"

    def test_empty_dir(self, tmp_path):
        assert load_results(tmp_path) == {}


class TestCompare:
    def test_identical_sets_are_clean(self):
        old = {"bench_a": _payload()}
        new = {"bench_a": _payload()}
        comparison = compare_results(old, new)
        assert comparison.ok
        assert not any(f.kind == "regression" for f in comparison.findings)

    def test_wall_clock_regression_flagged(self):
        old = {"bench_a": _payload(wall=10.0)}
        new = {"bench_a": _payload(wall=20.0)}
        comparison = compare_results(old, new)
        assert not comparison.ok
        (finding,) = comparison.regressions
        assert finding.kind == "regression"
        assert "2.00x" in finding.detail

    def test_wall_clock_noise_tolerated(self):
        old = {"bench_a": _payload(wall=10.0)}
        new = {"bench_a": _payload(wall=11.5)}  # +15% < default 25% tolerance
        assert compare_results(old, new).ok

    def test_sub_floor_baselines_skip_the_wall_ratio(self):
        """A 0.05s baseline blowing up 8x is scheduler noise, not a
        regression: below the floor the ratio tripwire must not fire in
        either direction (this is what keeps the CI gate honest on hosts
        slower than the baseline machine)."""
        old = {"bench_a": _payload(wall=0.05)}
        new = {"bench_a": _payload(wall=0.42)}
        comparison = compare_results(old, new)
        assert comparison.ok
        assert not any(
            f.kind in ("regression", "improvement") for f in comparison.findings
        )
        # an explicit lower floor restores the comparison
        assert not compare_results(old, new, wall_floor=0.01).ok

    def test_improvement_reported_not_failed(self):
        old = {"bench_a": _payload(wall=20.0)}
        new = {"bench_a": _payload(wall=8.0)}
        comparison = compare_results(old, new)
        assert comparison.ok
        assert any(f.kind == "improvement" for f in comparison.findings)

    def test_series_drift_is_a_failure(self):
        old = {"bench_a": _payload(y=(1.0, 2.0))}
        new = {"bench_a": _payload(y=(1.0, 2.5))}
        comparison = compare_results(old, new)
        assert not comparison.ok
        assert any(f.kind == "series_drift" for f in comparison.regressions)

    def test_series_bitwise_equality_required(self):
        old = {"bench_a": _payload(y=(1.0, 2.0))}
        new = {"bench_a": _payload(y=(1.0, 2.0 + 1e-6))}
        assert not compare_results(old, new).ok

    def test_truncated_series_is_a_failure(self):
        """Same x-axis but fewer y points must not slip through the zip."""
        old = {"bench_a": _payload(y=(1.0, 2.0))}
        new = {"bench_a": _payload(y=(1.0,))}
        new["bench_a"]["series"][0]["x"] = old["bench_a"]["series"][0]["x"]
        comparison = compare_results(old, new)
        assert not comparison.ok
        assert any("y length changed" in f.detail for f in comparison.regressions)

    def test_counter_changes_are_informational(self):
        old = {"bench_a": _payload(counters={"events": 100})}
        new = {"bench_a": _payload(counters={"events": 50})}
        comparison = compare_results(old, new)
        assert comparison.ok
        (finding,) = [f for f in comparison.findings if f.kind == "counters"]
        assert "100 -> 50" in finding.detail

    def test_missing_benchmarks_reported(self):
        comparison = compare_results({"gone": _payload(name="gone")}, {})
        assert any(f.kind == "missing" for f in comparison.findings)
        assert comparison.ok  # a removed bench is a warning, not a regression

    def test_render_empty(self):
        assert "no differences" in Comparison().render()


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        _write(old_dir, _payload(wall=10.0))
        _write(new_dir, _payload(wall=10.5))
        assert main([str(old_dir), str(new_dir)]) == 0

        _write(new_dir, _payload(wall=100.0))
        assert main([str(old_dir), str(new_dir)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_tolerance_flag(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        _write(old_dir, _payload(wall=10.0))
        _write(new_dir, _payload(wall=15.0))
        assert main([str(old_dir), str(new_dir)]) == 1
        assert main([str(old_dir), str(new_dir), "--wall-tolerance", "0.6"]) == 0

    def test_compare_dirs_helper(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        _write(old_dir, _payload())
        _write(new_dir, _payload())
        assert compare_dirs(old_dir, new_dir).ok
