"""Sans-io vocabulary and the reference in-process runner."""

import pytest

from repro.errors import RemoteError, VersionNotPublished
from repro.net.message import estimate_size
from repro.net.sansio import Batch, Call, Compute, Mark, dispatch_call, run_inproc


class Echo:
    """Toy actor: echoes, doubles, or explodes."""

    def handle(self, method, args):
        if method == "echo":
            return args[0]
        if method == "double":
            return args[0] * 2
        if method == "boom":
            raise RuntimeError("kapow")
        if method == "typed_boom":
            raise VersionNotPublished("blob-x", 9, 2)
        raise ValueError(f"unknown {method}")


REG = {"svc": Echo(), ("svc", 2): Echo()}


class TestVocabulary:
    def test_call_payload_estimate_from_args(self):
        call = Call("svc", "echo", (b"abcd",))
        assert call.payload_bytes() == 8 + 4  # tuple overhead + bytes

    def test_call_payload_override(self):
        call = Call("svc", "echo", (b"abcd",), request_bytes=999)
        assert call.payload_bytes() == 999

    def test_batch_from_iterable(self):
        b = Batch(Call("svc", "echo", (i,)) for i in range(3))
        assert len(b) == 3

    def test_estimate_size_structures(self):
        assert estimate_size(b"abc") == 3
        assert estimate_size(bytearray(b"abcd")) == 4
        assert estimate_size(memoryview(b"ab")) == 2
        assert estimate_size(None) == 16
        assert estimate_size([b"ab", b"cd"]) == 8 + 4
        assert estimate_size({"k": b"abc"}) > 3


class TestDispatch:
    def test_value_passthrough(self):
        assert dispatch_call(Echo(), Call("svc", "double", (21,))) == 42

    def test_exception_wrapped(self):
        res = dispatch_call(Echo(), Call("svc", "boom"))
        assert isinstance(res, RemoteError)
        assert res.error_type == "RuntimeError"
        assert isinstance(res.original, RuntimeError)

    def test_unwrap_semantic_error(self):
        res = dispatch_call(Echo(), Call("svc", "typed_boom"))
        assert isinstance(res.unwrap(), VersionNotPublished)

    def test_unwrap_infrastructure_error(self):
        res = dispatch_call(Echo(), Call("svc", "boom"))
        assert res.unwrap() is res


class TestRunInproc:
    def test_simple_protocol(self):
        def proto():
            (a, b) = yield Batch(
                [Call("svc", "echo", (1,)), Call(("svc", 2), "double", (2,))]
            )
            return a + b

        assert run_inproc(proto(), REG) == 5

    def test_compute_is_noop(self):
        def proto():
            yield Compute("anything", 5)
            (v,) = yield Batch([Call("svc", "echo", ("ok",))])
            return v

        assert run_inproc(proto(), REG) == "ok"

    def test_mark_returns_time(self):
        def proto():
            t1 = yield Mark("a")
            t2 = yield Mark("b")
            return t1, t2

        t1, t2 = run_inproc(proto(), {})
        assert isinstance(t1, float) and t2 >= t1

    def test_error_raised_at_yield_point(self):
        def proto():
            try:
                yield Batch([Call("svc", "boom")])
            except RemoteError as exc:
                return f"caught {exc.error_type}"

        assert run_inproc(proto(), REG) == "caught RuntimeError"

    def test_semantic_error_typed_at_yield_point(self):
        def proto():
            try:
                yield Batch([Call("svc", "typed_boom")])
            except VersionNotPublished as exc:
                return exc.latest

        assert run_inproc(proto(), REG) == 2

    def test_allow_error_delivers_wrapper(self):
        def proto():
            (res,) = yield Batch([Call("svc", "boom", allow_error=True)])
            return isinstance(res, RemoteError)

        assert run_inproc(proto(), REG) is True

    def test_unknown_address_raises(self):
        def proto():
            yield Batch([Call("ghost", "echo", (1,))])

        with pytest.raises(KeyError):
            run_inproc(proto(), REG)

    def test_bad_yield_type_raises(self):
        def proto():
            yield 42  # type: ignore[misc]

        with pytest.raises(TypeError):
            run_inproc(proto(), REG)

    def test_results_in_call_order(self):
        def proto():
            results = yield Batch(
                [Call("svc", "echo", (i,)) for i in range(10)]
            )
            return results

        assert run_inproc(proto(), REG) == list(range(10))
