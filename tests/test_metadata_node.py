"""Tree-node records."""

import pytest

from repro.metadata.node import NodeKey, TreeNode
from repro.net.message import NODE_WIRE_BYTES, estimate_size
from repro.util.intervals import Interval


def leaf(version=1, offset=0, size=4096):
    return TreeNode(
        key=NodeKey("b", version, offset, size), providers=(3,), write_uid="w1"
    )


def internal(version=1, offset=0, size=8192, lv=1, rv=0):
    return TreeNode(
        key=NodeKey("b", version, offset, size), left_version=lv, right_version=rv
    )


class TestNodeKey:
    def test_interval_view(self):
        assert NodeKey("b", 3, 8, 16).interval == Interval(8, 16)

    def test_hashable_and_ordered_fields(self):
        a = NodeKey("b", 1, 0, 8)
        b = NodeKey("b", 1, 0, 8)
        assert a == b and hash(a) == hash(b)


class TestTreeNode:
    def test_leaf_classification(self):
        assert leaf().is_leaf
        assert not internal().is_leaf

    def test_leaf_requires_page_reference(self):
        with pytest.raises(ValueError):
            TreeNode(key=NodeKey("b", 1, 0, 4096))

    def test_leaf_requires_write_uid(self):
        with pytest.raises(ValueError):
            TreeNode(key=NodeKey("b", 1, 0, 4096), providers=(1,))

    def test_internal_requires_both_children(self):
        with pytest.raises(ValueError):
            TreeNode(key=NodeKey("b", 1, 0, 8192), left_version=1)

    def test_internal_cannot_carry_page_ref(self):
        with pytest.raises(ValueError):
            TreeNode(
                key=NodeKey("b", 1, 0, 8192),
                left_version=1,
                right_version=1,
                providers=(1,),
                write_uid="w",
            )

    def test_child_keys(self):
        node = internal(version=5, offset=0, size=8192, lv=5, rv=2)
        lkey, rkey = node.child_keys()
        assert lkey == NodeKey("b", 5, 0, 4096)
        assert rkey == NodeKey("b", 2, 4096, 4096)

    def test_child_keys_on_leaf_rejected(self):
        with pytest.raises(ValueError):
            leaf().child_keys()

    def test_immutability(self):
        node = leaf()
        with pytest.raises(Exception):
            node.providers = (9,)  # type: ignore[misc]

    def test_wire_size_registered(self):
        assert estimate_size(leaf()) == NODE_WIRE_BYTES
        assert estimate_size(internal()) == NODE_WIRE_BYTES

    def test_replicated_leaf(self):
        node = TreeNode(
            key=NodeKey("b", 1, 0, 4096), providers=(1, 2, 3), write_uid="w"
        )
        assert node.providers == (1, 2, 3)
