"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        t = sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0
        assert t.triggered and t.ok

    def test_timeout_value(self):
        sim = Simulator()
        t = sim.timeout(1.0, value="done")
        sim.run()
        assert t.value == "done"

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().timeout(-1)

    def test_run_until_deadline(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_same_time_fifo_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.timeout(1.0).add_callback(lambda _, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestEvents:
    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_unhandled_failure_surfaces(self):
        sim = Simulator()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self):
        sim = Simulator()
        ev = sim.event()
        ev.defuse()
        ev.fail(RuntimeError("boom"))
        sim.run()  # no raise


class TestProcesses:
    def test_process_returns_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(2.0)
            return "answer"

        p = sim.process(proc())
        assert sim.run(until=p) == "answer"
        assert sim.now == 2.0

    def test_yield_from_composition(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        p = sim.process(outer())
        assert sim.run(until=p) == 20
        assert sim.now == 2.0

    def test_process_exception_propagates_via_event(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise ValueError("inside")

        p = sim.process(proc())
        with pytest.raises(ValueError, match="inside"):
            sim.run(until=p)

    def test_failed_event_thrown_into_process(self):
        sim = Simulator()
        trigger = sim.event()
        caught = []

        def proc():
            try:
                yield trigger
            except RuntimeError as exc:
                caught.append(str(exc))
            return "recovered"

        p = sim.process(proc())
        sim._schedule(1.0, lambda: trigger.fail(RuntimeError("remote")))
        assert sim.run(until=p) == "recovered"
        assert caught == ["remote"]

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def proc():
            yield 42  # type: ignore[misc]

        p = sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run(until=p)

    def test_interrupt(self):
        sim = Simulator()
        log = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                log.append(i.cause)
            return "out"

        def attacker(p):
            yield sim.timeout(1.0)
            p.interrupt("stop now")

        p = sim.process(victim())
        sim.process(attacker(p))
        assert sim.run(until=p) == "out"
        assert log == ["stop now"]
        assert sim.now == pytest.approx(1.0)

    def test_run_until_event_with_drained_queue(self):
        sim = Simulator()
        orphan = sim.event()  # never triggered
        with pytest.raises(SimulationError):
            sim.run(until=orphan)


class TestCompositions:
    def test_all_of_gathers_in_order(self):
        sim = Simulator()
        a = sim.timeout(3.0, value="a")
        b = sim.timeout(1.0, value="b")
        all_ev = AllOf(sim, [a, b])
        sim.run()
        assert all_ev.value == ["a", "b"]
        assert sim.now == 3.0

    def test_all_of_empty(self):
        sim = Simulator()
        ev = AllOf(sim, [])
        sim.run()
        assert ev.value == []

    def test_all_of_fails_fast(self):
        sim = Simulator()
        bad = sim.event()
        slow = sim.timeout(10.0)
        all_ev = AllOf(sim, [bad, slow])
        all_ev.defuse()
        sim._schedule(1.0, lambda: bad.fail(RuntimeError("x")))
        sim.run()
        assert all_ev.triggered and not all_ev.ok

    def test_any_of_first_wins(self):
        sim = Simulator()
        a = sim.timeout(3.0, value="slow")
        b = sim.timeout(1.0, value="fast")
        any_ev = AnyOf(sim, [a, b])
        sim.run()
        assert any_ev.value == (1, "fast")

    def test_any_of_requires_children(self):
        with pytest.raises(SimulationError):
            AnyOf(Simulator(), [])


class TestDeterminism:
    def test_identical_runs_identical_trajectories(self):
        def build():
            sim = Simulator()
            log = []

            def worker(i):
                for k in range(3):
                    yield sim.timeout(0.5 * (i + 1))
                    log.append((sim.now, i, k))

            procs = [sim.process(worker(i)) for i in range(3)]
            sim.run(until=AllOf(sim, procs))
            return log

        assert build() == build()
