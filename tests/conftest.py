"""Shared fixtures: small deployments and blob geometries.

Tests default to small blobs (a few MB, 4 KB pages) so trees stay shallow
and failures readable; scale-sensitive behaviour (1 TB geometry) is tested
explicitly where it matters.
"""

from __future__ import annotations

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.deploy.threaded import build_threaded
from repro.metadata.tree import TreeGeometry
from repro.util.sizes import KB, MB

SMALL_TOTAL = 4 * MB
SMALL_PAGE = 4 * KB


@pytest.fixture
def small_geom() -> TreeGeometry:
    """4 MB blob with 4 KB pages: depth 10, 1024 pages."""
    return TreeGeometry(SMALL_TOTAL, SMALL_PAGE)


@pytest.fixture
def dep():
    """In-process deployment: 4 data + 4 metadata providers."""
    return build_inproc(DeploymentSpec(n_data=4, n_meta=4))


@pytest.fixture
def client(dep):
    return dep.client("test-client")


@pytest.fixture
def blob(dep, client):
    """A freshly allocated small blob id."""
    return client.alloc(SMALL_TOTAL, SMALL_PAGE)


@pytest.fixture
def threaded_dep():
    d = build_threaded(DeploymentSpec(n_data=4, n_meta=4))
    yield d
    d.close()


def pages(n: int, fill: bytes = b"x", pagesize: int = SMALL_PAGE) -> bytes:
    """n pages of repeated fill bytes."""
    unit = (fill * (pagesize // len(fill) + 1))[:pagesize]
    return unit * n
