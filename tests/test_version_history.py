"""Patch history: the latest-writer index behind border precomputation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata.build import border_intervals
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval
from repro.util.sizes import KB
from repro.version.history import PatchHistory

GEOM = TreeGeometry(64 * KB, 4 * KB)  # 16 pages


def patch(first_page, npages):
    return Interval(first_page * 4 * KB, npages * 4 * KB)


class TestRecordAndLatest:
    def test_empty_history_is_version_zero(self):
        h = PatchHistory(GEOM)
        assert h.latest(GEOM.root) == 0
        assert h.latest(Interval(0, 4 * KB)) == 0

    def test_record_stamps_intersecting_intervals(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 2))
        assert h.latest(GEOM.root) == 1
        assert h.latest(Interval(0, 4 * KB)) == 1
        assert h.latest(Interval(0, 8 * KB)) == 1
        # untouched sibling stays at zero
        assert h.latest(Interval(8 * KB, 8 * KB)) == 0

    def test_later_version_overwrites(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 4))
        h.record(2, patch(0, 1))
        assert h.latest(Interval(0, 4 * KB)) == 2
        assert h.latest(Interval(4 * KB, 4 * KB)) == 1  # untouched by v2

    def test_versions_must_increase(self):
        h = PatchHistory(GEOM)
        h.record(2, patch(0, 1))
        with pytest.raises(ValueError):
            h.record(2, patch(0, 1))
        with pytest.raises(ValueError):
            h.record(1, patch(0, 1))

    def test_versions_intersecting(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 2))
        h.record(2, patch(4, 2))
        h.record(3, patch(1, 1))
        assert h.versions_intersecting(Interval(0, 8 * KB)) == [1, 3]


class TestBorderRefs:
    def test_refs_before_any_write_are_zero(self):
        h = PatchHistory(GEOM)
        refs = h.border_refs(patch(0, 1))
        assert set(refs.values()) == {0}
        assert set(refs) == set(border_intervals(GEOM, patch(0, 1)))

    def test_refs_point_to_latest_writer(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 16))  # full write
        h.record(2, patch(0, 1))
        refs = h.border_refs(patch(1, 1))
        # sibling page 0 was last touched by v2; the rest by v1
        assert refs[Interval(0, 4 * KB)] == 2
        assert refs[Interval(8 * KB, 8 * KB)] == 1
        assert refs[Interval(32 * KB, 32 * KB)] == 1

    def test_refs_see_in_flight_versions(self):
        """The write/write concurrency property: refs may point at a
        version that is assigned but not yet completed."""
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 1))  # concurrent writer, still unpublished
        refs = h.border_refs(patch(1, 1))
        assert refs[Interval(0, 4 * KB)] == 1

    def test_refs_never_reference_future(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 16))
        refs = h.border_refs(patch(3, 2))
        assert all(v <= 1 for v in refs.values())


class TestRollback:
    def test_rollback_restores_previous_state(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 4))
        before = {iv: h.latest(iv) for iv in GEOM.visit_intervals(patch(0, 8))}
        h.record(2, patch(0, 8))
        h.rollback_last(2)
        after = {iv: h.latest(iv) for iv in GEOM.visit_intervals(patch(0, 8))}
        assert before == after
        assert len(h.patches) == 1

    def test_rollback_only_most_recent(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 1))
        h.record(2, patch(2, 1))
        with pytest.raises(ValueError):
            h.rollback_last(1)

    def test_forget_undo_blocks_rollback(self):
        h = PatchHistory(GEOM)
        h.record(1, patch(0, 1))
        h.forget_undo(1)
        with pytest.raises(KeyError):
            h.rollback_last(1)


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=16),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_latest_matches_bruteforce(patches):
    """latest(iv) always equals the brute-force max over recorded patches."""
    h = PatchHistory(GEOM)
    recorded = []
    for v, (first, npages) in enumerate(patches, start=1):
        npages = min(npages, 16 - first)
        if npages == 0:
            npages = 1
            first = 0
        p = patch(first, npages)
        h.record(v, p)
        recorded.append((v, p))
    for iv in GEOM.visit_intervals(GEOM.root):
        expected = max(
            (v for v, p in recorded if p.intersects(iv)), default=0
        )
        assert h.latest(iv) == expected
