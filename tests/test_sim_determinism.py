"""Engine determinism: the guardrail behind the fast-path event loop.

The discrete-event engine promises that identical inputs produce identical
simulated trajectories — same timestamps, same series, same event counts.
Every benchmark figure rests on this, and the zero-delay "now" queue /
counter-based join rewrite must preserve it. These tests run real protocol
workloads (not just toy timeouts) twice and require bit-identical results.
"""

from __future__ import annotations

from repro.bench.workloads import SegmentPicker, populate_window, run_concurrent_clients
from repro.core.config import DeploymentSpec
from repro.deploy.simulated import SimDeployment
from repro.util.sizes import KB, MB


def _run_mixed_workload() -> dict:
    """A small but representative workload: writes, then concurrent reads."""
    dep = SimDeployment(
        DeploymentSpec(n_data=4, n_meta=4, n_clients=3, cache_capacity=0)
    )
    blob = dep.alloc_blob(64 * MB, 64 * KB)
    picker = SegmentPicker(window=4 * MB, segment=1 * MB)

    setup = dep.client(0, cached=False, name="populator")
    populate_window(setup, blob, window=4 * MB, segment=1 * MB)
    write_done_at = dep.now

    bandwidths = run_concurrent_clients(
        dep, blob, n_clients=3, iterations=4, picker=picker, kind="read"
    )

    # one traced read so per-phase timestamps are part of the fingerprint
    trace: dict[str, float] = {}
    reader = dep.client(1, cached=False, name="traced")
    result = reader.run(reader.read_virtual_proto(blob, 0, 1 * MB, trace=trace))

    return {
        "write_done_at": write_done_at,
        "bandwidths": bandwidths,
        "trace": trace,
        "final_now": dep.now,
        "events_processed": dep.sim.events_processed,
        "wire_rpcs": dep.executor.wire_rpcs,
        "sub_calls": dep.executor.sub_calls,
        "messages_sent": dep.network.messages_sent,
        "bytes_sent": dep.network.bytes_sent,
        "nodes_fetched": result.nodes_fetched,
        "pages_fetched": result.pages_fetched,
    }


def _run_concurrent_writers() -> dict:
    """Concurrent writers exercise the multi-destination fan-out join."""
    dep = SimDeployment(
        DeploymentSpec(n_data=6, n_meta=6, n_clients=4, cache_capacity=0)
    )
    blob = dep.alloc_blob(64 * MB, 64 * KB)
    picker = SegmentPicker(window=8 * MB, segment=2 * MB)
    bandwidths = run_concurrent_clients(
        dep, blob, n_clients=4, iterations=3, picker=picker, kind="write"
    )
    return {
        "bandwidths": bandwidths,
        "final_now": dep.now,
        "events_processed": dep.sim.events_processed,
        "wire_rpcs": dep.executor.wire_rpcs,
        "bytes_sent": dep.network.bytes_sent,
        "latest": dep.vm.stat(blob)[2],
    }


class TestEngineDeterminism:
    def test_mixed_workload_identical_across_runs(self):
        first = _run_mixed_workload()
        second = _run_mixed_workload()
        assert first == second  # timestamps, series, and counters all match

    def test_mixed_workload_trace_timestamps_are_exact(self):
        trace = _run_mixed_workload()["trace"]
        # phase marks exist and are strictly ordered in simulated time
        names = ["start", "version_resolved", "metadata_read", "pages_read", "done"]
        assert all(name in trace for name in names)
        times = [trace[n] for n in names]
        assert times == sorted(times)
        # and they are bit-identical on a re-run (not just approximately)
        assert _run_mixed_workload()["trace"] == trace

    def test_concurrent_writers_identical_across_runs(self):
        assert _run_concurrent_writers() == _run_concurrent_writers()

    def test_event_counter_advances(self):
        stats = _run_mixed_workload()
        assert stats["events_processed"] > 0
        assert stats["wire_rpcs"] > 0
        assert stats["sub_calls"] >= stats["wire_rpcs"]
        # two messages (request + response) per wire RPC
        assert stats["messages_sent"] == 2 * stats["wire_rpcs"]
