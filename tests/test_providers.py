"""Data plane: pages, providers, manager, strategies."""

import pytest

from repro.errors import (
    ImmutabilityViolation,
    NotEnoughProviders,
    PageMissing,
    ProviderUnavailable,
)
from repro.net.message import estimate_size
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.page import PageKey, PagePayload, page_key_for
from repro.providers.strategies import LeastLoaded, RandomK, RoundRobin, make_strategy


class TestPagePayload:
    def test_real_payload(self):
        p = PagePayload.real(b"abcd")
        assert p.nbytes == 4
        assert not p.is_virtual
        assert p.as_bytes() == b"abcd"

    def test_virtual_payload(self):
        p = PagePayload.virtual(8)
        assert p.is_virtual
        assert p.as_bytes() == bytes(8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PagePayload(nbytes=3, data=b"abcd")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PagePayload.virtual(-1)

    def test_wire_size_counts_payload(self):
        assert estimate_size(PagePayload.virtual(4096)) == 48 + 4096
        assert estimate_size(PagePayload.real(b"ab")) == 48 + 2

    def test_page_key_validation(self):
        assert page_key_for("b", "w", 3) == PageKey("b", "w", 3)
        with pytest.raises(ValueError):
            page_key_for("b", "w", -1)


class TestDataProvider:
    def key(self, i=0):
        return PageKey("blob", "w1", i)

    def test_put_get(self):
        dp = DataProvider(0)
        dp.put_page(self.key(), PagePayload.real(b"data"))
        assert dp.get_page(self.key()).as_bytes() == b"data"
        assert dp.bytes_stored == 4
        assert dp.page_count == 1

    def test_write_once(self):
        dp = DataProvider(0)
        dp.put_page(self.key(), PagePayload.virtual(8))
        with pytest.raises(ImmutabilityViolation):
            dp.put_page(self.key(), PagePayload.virtual(8))

    def test_missing_page(self):
        with pytest.raises(PageMissing):
            DataProvider(0).get_page(self.key())

    def test_free_pages_updates_accounting(self):
        dp = DataProvider(0)
        for i in range(3):
            dp.put_page(self.key(i), PagePayload.virtual(100))
        freed = dp.free_pages([self.key(0), self.key(1), self.key(99)])
        assert freed == 2
        assert dp.page_count == 1
        assert dp.bytes_stored == 100

    def test_list_pages_filters_by_blob(self):
        dp = DataProvider(0)
        dp.put_page(PageKey("a", "w", 0), PagePayload.virtual(1))
        dp.put_page(PageKey("b", "w", 0), PagePayload.virtual(1))
        assert dp.list_pages("a") == [PageKey("a", "w", 0)]

    def test_crash_recover(self):
        dp = DataProvider(0)
        dp.crash()
        with pytest.raises(ProviderUnavailable):
            dp.put_page(self.key(), PagePayload.virtual(1))
        dp.recover()
        dp.put_page(self.key(), PagePayload.virtual(1))

    def test_stats_and_dispatch(self):
        dp = DataProvider(3)
        dp.handle("data.put_page", (self.key(), PagePayload.virtual(64)))
        stats = dp.handle("data.stats", ())
        assert stats == {
            "provider_id": 3, "pages": 1, "bytes": 64, "puts": 1, "gets": 0,
        }
        with pytest.raises(ValueError):
            dp.handle("data.nope", ())


class TestStrategies:
    def test_round_robin_cycles(self):
        s = RoundRobin()
        assert s.allocate(5, [0, 1, 2], {}) == [0, 1, 2, 0, 1]
        assert s.allocate(2, [0, 1, 2], {}) == [2, 0]
        s.reset()
        assert s.allocate(1, [0, 1, 2], {}) == [0]

    def test_round_robin_distinct_when_enough(self):
        s = RoundRobin()
        got = s.allocate(4, list(range(8)), {})
        assert len(set(got)) == 4

    def test_least_loaded_prefers_empty(self):
        s = LeastLoaded(pagesize_hint=10)
        got = s.allocate(2, [0, 1, 2], {0: 100, 1: 0, 2: 50})
        assert got[0] == 1
        assert got[1] in (1, 2)  # 1 now has 10, still least

    def test_least_loaded_balances_within_request(self):
        s = LeastLoaded(pagesize_hint=1)
        got = s.allocate(9, [0, 1, 2], {})
        assert sorted(got.count(i) for i in range(3)) == [3, 3, 3]

    def test_random_k_deterministic_per_seed(self):
        a = RandomK(k=2, seed=5).allocate(20, list(range(8)), {})
        b = RandomK(k=2, seed=5).allocate(20, list(range(8)), {})
        assert a == b

    def test_random_k_balance_beats_k1(self):
        def spread(k):
            s = RandomK(k=k, seed=7)
            load: dict[int, int] = {}
            for p in s.allocate(400, list(range(10)), load):
                load[p] = load.get(p, 0) + 1
            return max(load.values()) - min(load.values())

        assert spread(2) <= spread(1)

    def test_random_k_validation(self):
        with pytest.raises(ValueError):
            RandomK(k=0)

    def test_factory(self):
        assert isinstance(make_strategy("round_robin"), RoundRobin)
        assert isinstance(make_strategy("least_loaded"), LeastLoaded)
        assert isinstance(make_strategy("random_k", k=3), RandomK)
        with pytest.raises(ValueError):
            make_strategy("magic")


class TestProviderManager:
    def test_register_deregister(self):
        pm = ProviderManager()
        assert pm.register(0) == 1
        assert pm.register(1) == 2
        assert pm.deregister(0) == 1
        assert pm.providers() == [1]

    def test_allocation_one_group_per_page(self):
        pm = ProviderManager()
        for i in range(4):
            pm.register(i)
        groups = pm.get_providers("b", 6, 4096)
        assert len(groups) == 6
        assert all(len(g) == 1 for g in groups)

    def test_allocation_tracks_load(self):
        pm = ProviderManager()
        pm.register(0)
        pm.register(1)
        pm.get_providers("b", 4, 100)
        load = pm.load_view()
        assert sum(load.values()) == 400

    def test_replication_groups_distinct(self):
        pm = ProviderManager(replication=3)
        for i in range(5):
            pm.register(i)
        groups = pm.get_providers("b", 4, 4096)
        for g in groups:
            assert len(g) == 3
            assert len(set(g)) == 3

    def test_not_enough_providers(self):
        pm = ProviderManager(replication=2)
        pm.register(0)
        with pytest.raises(NotEnoughProviders):
            pm.get_providers("b", 1, 4096)

    def test_invalid_npages(self):
        pm = ProviderManager()
        pm.register(0)
        with pytest.raises(ValueError):
            pm.get_providers("b", 0, 4096)

    def test_report_usage(self):
        pm = ProviderManager()
        pm.register(0)
        pm.get_providers("b", 2, 100)
        pm.report_usage(0, 50)
        assert pm.load_view()[0] == 50

    def test_dispatch(self):
        pm = ProviderManager()
        assert pm.handle("pm.register", (7,)) == 1
        assert pm.handle("pm.providers", ()) == [7]
        groups = pm.handle("pm.get_providers", ("b", 2, 4096))
        assert len(groups) == 2
        with pytest.raises(ValueError):
            pm.handle("pm.nope", ())
