"""TCP-transport pins: framing counts, clean shutdown, crash fail-over,
reconnect-with-backoff, and the addressing/handshake layer.

Failure-mode parity with the process transport is the point: every pin in
``tests/test_process_transport.py`` that describes *transport semantics*
(submission counts, typed errors, killed-peer drain, replica fail-over,
clean shutdown exit codes) has its mirror here, driven by real TCP
connections to node-agent OS processes instead of socketpairs to spawned
workers. On top of that, TCP adds what pipes cannot: a peer that comes
*back* — pinned by the agent-restart reconnect test.

Everything here is wall-clock bounded: every blocking wait carries a
timeout, and the module-level watchdog (conftest.py, enabled via
``REPRO_TEST_TIMEOUT``) hard-kills a stalled run — a wedged socket must
fail the suite fast, never stall it.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.tcp import build_tcp, plan_loopback_nodes
from repro.errors import ConfigError, RemoteError, VersionNotPublished
from repro.net.address import ClusterMap, Endpoint, format_actor, parse_actor, parse_endpoint
from repro.net.node import NodeAgent, build_actor
from repro.net.sansio import Batch, Call
from repro.net.tcp import TcpDriver
from repro.providers.data_provider import DataProvider
from repro.util.sizes import KB, MB

TOTAL = 1 * MB
PAGE = 4 * KB

JOIN_TIMEOUT = 60.0


@pytest.fixture
def tdep():
    dep = build_tcp(DeploymentSpec(n_data=3, n_meta=2, cache_capacity=0))
    yield dep
    dep.close()


def fill(i: int) -> bytes:
    return bytes([i % 251 + 1]) * PAGE


# ---------------------------------------------------------------------------
# addressing layer
# ---------------------------------------------------------------------------


def test_actor_name_round_trips():
    for address in ("vm", "pm", ("data", 0), ("meta", 17)):
        assert parse_actor(format_actor(address)) == address
    assert format_actor(("data", 3)) == "data/3"
    assert parse_actor("meta/12") == ("meta", 12)


def test_bad_actor_names_rejected():
    for bad in ("", "data/", "/3", "data/x", "data/-1", "da/ta/3"):
        with pytest.raises(ConfigError):
            parse_actor(bad)
    with pytest.raises(ConfigError):
        format_actor(("data", -1))
    with pytest.raises(ConfigError):
        format_actor(("da/ta", 1))
    with pytest.raises(ConfigError):
        format_actor(3.14)


def test_endpoint_parsing():
    assert parse_endpoint("10.0.0.5:7000") == Endpoint("10.0.0.5", 7000)
    assert parse_endpoint("[::1]:7000") == Endpoint("::1", 7000)
    assert str(Endpoint("h", 9)) == "h:9"
    for bad in ("nohost", ":70", "h:", "h:abc", "h:70000"):
        with pytest.raises(ConfigError):
            parse_endpoint(bad)


def test_cluster_map_round_trips_spec_form():
    spec = {"data/0": "10.0.0.5:7000", "meta/0": "10.0.0.5:7000", "vm": "10.0.0.9:7001"}
    cmap = ClusterMap.from_spec(spec)
    assert cmap.to_spec() == spec
    assert cmap.endpoint_for(("data", 0)) == Endpoint("10.0.0.5", 7000)
    assert sorted(map(format_actor, cmap.actors_at("10.0.0.5:7000"))) == [
        "data/0", "meta/0",
    ]
    assert len(cmap.endpoints()) == 2
    with pytest.raises(ConfigError):
        cmap.add("data/0", "10.0.0.6:7000")  # mapped twice
    with pytest.raises(ConfigError):
        cmap.endpoint_for(("data", 9))


def test_loopback_plan_colocates_paper_layout():
    plan = plan_loopback_nodes(DeploymentSpec(n_data=3, n_meta=2))
    assert plan == [["data/0", "meta/0"], ["data/1", "meta/1"], ["data/2"]]
    flat = plan_loopback_nodes(DeploymentSpec(n_data=2, n_meta=1, colocate=False))
    assert flat == [["data/0"], ["data/1"], ["meta/0"]]


def test_build_actor_specs():
    address, actor = build_actor("data/4", checksum=True)
    assert address == ("data", 4)
    assert actor.provider_id == 4
    address, actor = build_actor("meta/0")
    assert address == ("meta", 0)
    _, vm = build_actor("vm")
    assert callable(vm.handle)  # a servable actor
    address, pm = build_actor("pm", replication=2)
    assert address == "pm"
    assert pm.replication == 2
    assert pm.providers() == []  # starts empty: agents register at start
    _, pm_rk = build_actor(
        "pm", strategy="random_k", strategy_kwargs={"k": 2, "seed": 7}
    )
    assert callable(pm_rk.handle)
    for bad in ("unknown/1", "data"):
        with pytest.raises(ConfigError):
            build_actor(bad)


# ---------------------------------------------------------------------------
# functional sanity + submission counts (process-transport parity)
# ---------------------------------------------------------------------------


def test_serial_workload_and_submission_counts(tdep):
    """Caller-side transport counters must equal agent/server-side wire-RPC
    counts: one queue submission (= one TCP frame for remote actors) per
    destination per batch — the same bound the threaded and process
    drivers pin."""
    client = tdep.client("pin")
    blob = client.alloc(TOTAL, PAGE)
    rng = random.Random(7)
    states: dict[int, bytes] = {}
    for step in range(6):
        npages = rng.choice((1, 2, 4))
        offset = rng.randrange(0, TOTAL // PAGE - npages + 1) * PAGE
        data = b"".join(fill(step * 7 + k) for k in range(npages))
        res = client.write(blob, data, offset)
        states[res.version] = data
        back = client.read_bytes(blob, offset, len(data), version=res.version)
        assert back == data

    stats = tdep.driver.server_stats()
    served_rpcs = sum(r for r, _ in stats.values())
    served_calls = sum(c for _, c in stats.values())
    transport = tdep.transport_stats()
    assert transport["queue_submissions"] == served_rpcs
    assert transport["completion_wakeups"] <= transport["batches"]
    assert served_calls >= served_rpcs

    # agent-held state is inspectable over the wire
    assert tdep.total_pages_stored() == sum(
        len(d) // PAGE for d in states.values()
    )


def test_concurrent_clients_disjoint_ranges(tdep):
    """Real parallel client threads against node-agent processes."""
    client = tdep.client("setup")
    blob = client.alloc(TOTAL, PAGE)
    n_clients, writes_each = 3, 4
    span = TOTAL // n_clients // PAGE * PAGE

    def program(c: int):
        own = tdep.client(f"c{c}")
        lo = c * span
        for k in range(writes_each):
            data = fill(c * 16 + k) * 2
            offset = lo + (k * 2 * PAGE) % span
            res = own.write(blob, data, offset)
            if res.published:
                got = own.read_bytes(blob, offset, len(data), version=res.version)
                assert got == data
        return c

    futures = [
        tdep.driver.spawn(_as_proto(program, c)) for c in range(n_clients)
    ]
    assert sorted(f.result(timeout=JOIN_TIMEOUT) for f in futures) == [0, 1, 2]
    assert tdep.vm.get_latest(blob) == n_clients * writes_each

    for c in range(n_clients):
        state = bytearray(span)
        for k in range(writes_each):
            data = fill(c * 16 + k) * 2
            offset = (k * 2 * PAGE) % span
            state[offset : offset + len(data)] = data
        assert client.read_bytes(blob, c * span, span) == bytes(state)


def _as_proto(fn, *args):
    """Wrap a blocking-client program as a spawnable generator."""

    def proto():
        yield Batch([])  # enter the driver loop once, then run to completion
        return fn(*args)

    return proto()


def test_unknown_address_raises_before_any_submission(tdep):
    def proto():
        yield Batch([Call(("data", 99), "data.stats", ())])

    before = tdep.transport_stats()["queue_submissions"]
    with pytest.raises(KeyError):
        tdep.driver.run(proto())
    assert tdep.transport_stats()["queue_submissions"] == before


def test_semantic_errors_cross_the_wire_typed(tdep):
    client = tdep.client("err")
    blob = client.alloc(TOTAL, PAGE)
    with pytest.raises(VersionNotPublished) as exc_info:
        client.read_bytes(blob, 0, PAGE, version=5)
    assert exc_info.value.requested == 5


# ---------------------------------------------------------------------------
# shutdown
# ---------------------------------------------------------------------------


def test_clean_shutdown_exits_all_agents():
    dep = build_tcp(DeploymentSpec(n_data=2, n_meta=2))
    client = dep.client("s")
    blob = client.alloc(TOTAL, PAGE)
    client.write(blob, fill(1), 0)
    dep.close()
    codes = dep.agent_exitcodes()
    assert len(codes) == 2  # colocated: agent i hosts data/i + meta/i
    assert all(code == 0 for code in codes), codes
    # closing twice is harmless
    dep.close()


def test_driver_rejects_registration_after_close():
    driver = TcpDriver()
    driver.close()
    with pytest.raises(RuntimeError):
        driver.register_remote(("data", 0), "127.0.0.1:1")


# ---------------------------------------------------------------------------
# crash handling: killed agent -> RemoteError -> replica fail-over
# ---------------------------------------------------------------------------


def test_killed_agent_raises_remote_error(tdep):
    client = tdep.client("kill")
    blob = client.alloc(TOTAL, PAGE)
    res = client.write(blob, fill(9), 0)
    # find the agent whose data provider holds the page and SIGKILL it
    # (replication=1: no backup copy anywhere)
    holders = [
        pid for pid, proxy in tdep.data.items()
        if any(True for _ in proxy.iter_pages(blob))
    ]
    assert len(holders) == 1
    victim = holders[0]
    tdep.kill_agent(tdep.agent_index_for(("data", victim)))
    with pytest.raises(RemoteError) as exc_info:
        client.read_bytes(blob, 0, PAGE, version=res.version)
    assert "PeerUnavailable" in str(exc_info.value)
    # vm is alive in-parent; the surviving metadata replicas still serve
    assert tdep.vm.get_latest(blob) == 1
    surviving_meta = [
        m for m in tdep.meta
        if tdep.agent_index_for(("meta", m)) != tdep.agent_index_for(("data", victim))
    ]
    for m in surviving_meta:
        list(tdep.meta[m].iter_nodes(blob))  # serves without raising


def test_killed_agent_fails_over_to_replica():
    """The paper's replica fail-over, driven by a real node-agent death:
    with replication=2 every page (and metadata node) lives on two
    agents, so SIGKILLing one must leave reads working through the
    ``allow_error`` retry path."""
    dep = build_tcp(
        DeploymentSpec(n_data=3, n_meta=2, replication=2, cache_capacity=0)
    )
    try:
        client = dep.client("failover")
        blob = client.alloc(TOTAL, PAGE)
        data = fill(3) + fill(4)
        res = client.write(blob, data, 0)
        victim = next(
            pid for pid, proxy in dep.data.items()
            if any(True for _ in proxy.iter_pages(blob))
        )
        dep.kill_agent(dep.agent_index_for(("data", victim)))
        back = client.read_bytes(blob, 0, len(data), version=res.version)
        assert back == data
    finally:
        dep.close()


def test_future_calls_fail_fast_after_agent_death():
    """Calls against a dead peer must fail immediately with RemoteError —
    never block behind a redial attempt (fail-over latency)."""
    dep = build_tcp(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0))
    try:
        client = dep.client("inflight")
        blob = client.alloc(TOTAL, PAGE)
        client.write(blob, fill(5), 0)
        address = ("data", 0)
        dep.kill_agent(dep.agent_index_for(address))
        # wait (bounded) for the peer to notice the EOF
        deadline = time.monotonic() + 10
        while dep.driver.peer(address).connected and time.monotonic() < deadline:
            time.sleep(0.01)
        for _ in range(3):
            start = time.monotonic()
            with pytest.raises(RemoteError):
                dep.driver.call(address, "data.stats")
            assert time.monotonic() - start < 2.0, "dead-peer call did not fail fast"
    finally:
        dep.close()


def test_in_flight_calls_drain_when_connection_dies():
    """A call already on the wire when the connection dies mid-batch must
    complete with RemoteError, not hang the batch latch. Driven
    deterministically with an in-process agent whose actor blocks until
    the connection is severed under it."""

    class Staller:
        def __init__(self):
            self.entered = threading.Event()
            self.release = threading.Event()

        def handle(self, method, args):
            if method == "stall":
                self.entered.set()
                self.release.wait(JOIN_TIMEOUT)
                return "too late"
            raise ValueError(method)

    staller = Staller()
    agent = NodeAgent({("data", 0): staller})
    agent.start()
    driver = TcpDriver()
    try:
        driver.register_remote(("data", 0), agent.endpoint)
        driver.wait_connected()
        fut = driver.spawn(_call_proto(("data", 0), "stall"))
        assert staller.entered.wait(JOIN_TIMEOUT), "call never reached the actor"
        agent.drop_connections()  # sever mid-call: reply can never arrive
        with pytest.raises(RemoteError):
            fut.result(timeout=JOIN_TIMEOUT)
    finally:
        staller.release.set()
        driver.close()
        agent.close()


def _call_proto(address, method, args=()):
    def proto():
        (result,) = yield Batch([Call(address, method, args)])
        return result

    return proto()


# ---------------------------------------------------------------------------
# reconnect: the capability pipes cannot have
# ---------------------------------------------------------------------------


def test_peer_reconnects_after_agent_restart():
    """Reconnect-safe fail-over: while the agent is gone calls drain as
    RemoteError (so replicas take over), and once an agent serving the
    same actor name is back on the same endpoint, the connector's backoff
    loop finds it and service resumes — no driver restart, no re-register."""
    agent = NodeAgent({("data", 0): DataProvider(0)})
    agent.start()
    port = agent.endpoint.port
    driver = TcpDriver()
    try:
        driver.register_remote(("data", 0), agent.endpoint)
        driver.wait_connected()
        assert driver.call(("data", 0), "data.stats")["pages"] == 0

        agent.close()  # the "host went down" event: listener + conns die
        deadline = time.monotonic() + 10
        while driver.peer(("data", 0)).connected and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(RemoteError):
            driver.call(("data", 0), "data.stats")
        assert driver.peer_status()[("data", 0)] != "connected"

        # restart: a fresh agent, same actor name, same endpoint
        revived = NodeAgent({("data", 0): DataProvider(0)}, port=port)
        revived.start()
        try:
            assert driver.peer(("data", 0)).wait_connected(timeout=15), (
                "connector did not redial the revived agent"
            )
            assert driver.call(("data", 0), "data.stats")["pages"] == 0
            assert driver.peer_status()[("data", 0)] == "connected"
        finally:
            revived.close()
    finally:
        driver.close()
        agent.close()


def test_agent_serves_rpcs_pipelined_behind_hello():
    """The wire protocol allows a client to pipeline RPCs behind its hello
    without waiting for the welcome; the agent must resume the byte stream
    exactly where the handshake left it — including a partial frame
    straddling the handshake/service boundary."""
    import socket as socket_mod

    from repro.net.codec import MessageDecoder, decode_body, encode_message

    agent = NodeAgent({("data", 0): DataProvider(0)})
    agent.start()
    sock = socket_mod.create_connection(
        (agent.endpoint.host, agent.endpoint.port), timeout=10
    )
    try:
        sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
        stream = (
            encode_message(0, ("hello", "data/0"))
            + encode_message(1, ("rpc", [("data.stats", ())]))
            + encode_message(2, ("rpc", [("data.stats", ())]))
        )
        # burst everything but the last frame's tail, so the agent's
        # handshake read buffers a complete rpc AND a partial one
        sock.sendall(stream[:-5])
        time.sleep(0.05)
        sock.sendall(stream[-5:])
        decoder = MessageDecoder()
        seen = {}
        sock.settimeout(10)
        while len(seen) < 3:
            chunk = sock.recv(1 << 16)
            assert chunk, "agent closed a pipelined connection"
            for req_id, body in decoder.feed(chunk):
                seen[req_id] = decode_body(body)
        assert seen[0] == ("welcome", "data/0")
        for req_id in (1, 2):
            assert seen[req_id][0]["pages"] == 0  # stats reply list
    finally:
        sock.close()
        agent.close()


def test_handshake_reject_for_unknown_actor():
    """An agent must reject a hello for an actor it does not host; the
    peer stays down (fail-fast) instead of looping a broken connection."""
    agent = NodeAgent({("data", 0): DataProvider(0)})
    agent.start()
    driver = TcpDriver()
    try:
        driver.register_remote(("data", 7), agent.endpoint)
        assert not driver.peer(("data", 7)).wait_connected(timeout=0.6)
        with pytest.raises(RemoteError) as exc_info:
            driver.call(("data", 7), "data.stats")
        assert "PeerUnavailable" in str(exc_info.value)
    finally:
        driver.close()
        agent.close()


def test_connect_mode_uses_running_agents():
    """The connected (operator-launched) mode: build_tcp with explicit
    endpoints dials running agents instead of spawning any — the exact
    code path a real multi-host cluster uses, exercised with in-process
    agents standing in for remote hosts."""
    agents = [
        NodeAgent({("data", 0): build_actor("data/0")[1],
                   ("meta", 0): build_actor("meta/0")[1]}),
        NodeAgent({("data", 1): build_actor("data/1")[1]}),
    ]
    for a in agents:
        a.start()
    endpoints = {
        "data/0": str(agents[0].endpoint),
        "meta/0": str(agents[0].endpoint),
        "data/1": str(agents[1].endpoint),
    }
    dep = build_tcp(
        DeploymentSpec(n_data=2, n_meta=1, cache_capacity=0, endpoints=endpoints)
    )
    try:
        assert dep.agents == []  # nothing launched: agents are "elsewhere"
        client = dep.client("ext")
        blob = client.alloc(TOTAL, PAGE)
        res = client.write(blob, fill(2) * 3, 0)
        assert client.read_bytes(blob, 0, 3 * PAGE, version=res.version) == fill(2) * 3
        assert dep.total_pages_stored() == 3
    finally:
        dep.close()
        # clean close sent shutdown controls: in-process agents stopped too
        for a in agents:
            assert a.wait_stopped(timeout=10)


def test_missing_endpoint_fails_the_build():
    with pytest.raises(ConfigError):
        build_tcp(
            DeploymentSpec(n_data=2, n_meta=1),
            endpoints={"data/0": "127.0.0.1:1", "meta/0": "127.0.0.1:1"},
        )


# ---------------------------------------------------------------------------
# the application, end to end on the cluster
# ---------------------------------------------------------------------------


def test_supernovae_example_runs_on_loopback_cluster():
    """The paper's §VI application on the paper's deployment architecture,
    now in full: ``examples/supernovae_detection.py --deploy tcp``
    launches ten node agents as OS processes — eight storage nodes plus
    the vm and pm on their own agents — and runs the survey over real
    sockets with zero actors in the client parent."""
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(__file__).resolve().parents[1]
    result = subprocess.run(
        [
            sys.executable,
            str(root / "examples" / "supernovae_detection.py"),
            "--deploy", "tcp",
            "--epochs", "4",
        ],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "TCP cluster: 10 node agents" in result.stdout
    assert "in-parent actors: 0" in result.stdout
    assert "precision" in result.stdout and "recall" in result.stdout
