"""Concurrency semantics with real threads (paper §IV).

These tests run many client threads against the threaded deployment and
check the paper's §II/§IV guarantees under genuine interleaving:

- read/read: concurrent readers all see correct snapshots;
- read/write: readers of published versions never block on, nor observe,
  in-flight writes;
- write/write: concurrent writers to overlapping ranges serialize *only*
  through version numbers, and the resulting history is equivalent to
  applying patches in version order (global serializability);
- liveness: every write eventually publishes.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.threaded import build_threaded
from repro.util.sizes import KB, MB

TOTAL = 1 * MB
PAGE = 4 * KB
NPAGES = TOTAL // PAGE

#: every arbitrary choice in this module derives from this seed, so a
#: failing run is replayable bit for bit
SEED = 0x7AE3

#: wall-clock bound for a whole thread group; a stalled thread fails the
#: test with its name instead of hanging the suite
JOIN_TIMEOUT = 120.0


def fill(tag: int, npages: int = 1) -> bytes:
    return bytes([tag % 251 + 1]) * (npages * PAGE)


@pytest.fixture
def tdep():
    dep = build_threaded(DeploymentSpec(n_data=4, n_meta=4))
    yield dep
    dep.close()


def run_threads(workers, timeout: float = JOIN_TIMEOUT):
    """Run ``{name: callable}`` workers; name every thread and join against
    one shared deadline, reporting exactly which workers stalled."""
    if not isinstance(workers, dict):
        workers = {f"worker-{i}": w for i, w in enumerate(workers)}
    threads = [
        threading.Thread(target=fn, name=name) for name, fn in workers.items()
    ]
    deadline = time.monotonic() + timeout
    for t in threads:
        t.start()
    stalled = []
    for t in threads:
        t.join(timeout=max(0.1, deadline - time.monotonic()))
        if t.is_alive():
            stalled.append(t.name)
    assert not stalled, f"worker threads stalled past {timeout}s: {stalled}"


class TestConcurrentReaders:
    def test_many_readers_same_snapshot(self, tdep):
        writer = tdep.client("writer")
        blob = writer.alloc(TOTAL, PAGE)
        writer.write(blob, fill(7, 8), 0)
        errors: list[str] = []

        def reader(i: int) -> None:
            client = tdep.client(f"r{i}")
            for _ in range(10):
                got = client.read_bytes(blob, 0, 8 * PAGE, version=1)
                if got != fill(7, 8):
                    errors.append(f"reader {i} saw wrong data")

        run_threads({f"reader-{i}": (lambda i=i: reader(i)) for i in range(8)})
        assert errors == []

    def test_readers_spread_over_versions(self, tdep):
        writer = tdep.client("writer")
        blob = writer.alloc(TOTAL, PAGE)
        for v in range(1, 6):
            writer.write(blob, fill(v), 0)
        errors: list[str] = []

        def reader(version: int) -> None:
            client = tdep.client(f"r{version}")
            for _ in range(10):
                got = client.read_bytes(blob, 0, PAGE, version=version)
                if got != fill(version):
                    errors.append(f"v{version} wrong")

        run_threads({f"reader-v{v}": (lambda v=v: reader(v)) for v in range(1, 6)})
        assert errors == []


class TestReadWriteConcurrency:
    def test_readers_unaffected_by_concurrent_writers(self, tdep):
        writer = tdep.client("writer")
        blob = writer.alloc(TOTAL, PAGE)
        writer.write(blob, fill(1, 4), 0)  # v1, the snapshot under test
        stop = threading.Event()
        errors: list[str] = []

        def write_loop() -> None:
            client = tdep.client("noisy-writer")
            tag = 2
            while not stop.is_set():
                client.write(blob, fill(tag, 4), 0)
                tag += 1

        def read_loop(i: int) -> None:
            client = tdep.client(f"reader-{i}")
            for _ in range(25):
                got = client.read_bytes(blob, 0, 4 * PAGE, version=1)
                if got != fill(1, 4):
                    errors.append("pinned snapshot changed under reader")

        wt = threading.Thread(target=write_loop, name="noisy-writer")
        wt.start()
        try:
            run_threads({f"reader-{i}": (lambda i=i: read_loop(i)) for i in range(4)})
        finally:
            stop.set()
            wt.join(timeout=60)
            assert not wt.is_alive(), "noisy-writer stalled past 60s"
        assert errors == []

    def test_latest_read_is_some_published_prefix(self, tdep):
        """A reader of LATEST must always see a state equal to applying
        patches 1..k for some k — never a torn mixture."""
        writer = tdep.client("writer")
        blob = writer.alloc(TOTAL, PAGE)
        states = {0: bytes(2 * PAGE)}
        for v in range(1, 15):
            writer_data = fill(v, 2)
            states[v] = writer_data
        errors: list[str] = []
        done = threading.Event()

        def write_loop() -> None:
            for v in range(1, 15):
                writer.write(blob, states[v], 0)
            done.set()

        def read_loop() -> None:
            client = tdep.client("latest-reader")
            while not done.is_set():
                res = client.read(blob, 0, 2 * PAGE)
                if res.data not in (states[v] for v in range(0, 15)):
                    errors.append("torn read")
                # vr >= v contract
                if res.latest < res.version:
                    errors.append("latest < version")

        run_threads(
            {"writer": write_loop, "reader-0": read_loop, "reader-1": read_loop}
        )
        assert errors == []


class TestWriteWriteConcurrency:
    def test_concurrent_writers_disjoint_ranges(self, tdep):
        writer0 = tdep.client("seed")
        blob = writer0.alloc(TOTAL, PAGE)
        n_writers, per_writer = 6, 8

        def writer(i: int) -> None:
            client = tdep.client(f"w{i}")
            for k in range(per_writer):
                client.write(blob, fill(i + 1), (i * per_writer + k) * PAGE)

        run_threads(
            {f"writer-{i}": (lambda i=i: writer(i)) for i in range(n_writers)}
        )
        assert writer0.latest(blob) == n_writers * per_writer
        # every region holds its writer's fill
        for i in range(n_writers):
            for k in range(per_writer):
                got = writer0.read_bytes(blob, (i * per_writer + k) * PAGE, PAGE)
                assert got == fill(i + 1)

    def test_concurrent_writers_overlapping_range_serializable(self, tdep):
        """Overlapping concurrent writes: the final state must equal the
        last version's patch (all patches hit the same range), and every
        intermediate version must equal exactly one writer's patch."""
        seed = tdep.client("seed")
        blob = seed.alloc(TOTAL, PAGE)
        n_writers, per_writer = 5, 6
        tags_by_version: dict[int, int] = {}
        lock = threading.Lock()

        def writer(i: int) -> None:
            client = tdep.client(f"w{i}")
            for k in range(per_writer):
                tag = i * 100 + k + 1
                res = client.write(blob, fill(tag, 2), 0)
                with lock:
                    tags_by_version[res.version] = tag

        run_threads(
            {f"writer-{i}": (lambda i=i: writer(i)) for i in range(n_writers)}
        )
        total = n_writers * per_writer
        assert seed.latest(blob) == total
        assert sorted(tags_by_version) == list(range(1, total + 1))
        # every snapshot equals its writer's patch — nothing interleaved
        for version, tag in tags_by_version.items():
            got = seed.read_bytes(blob, 0, 2 * PAGE, version=version)
            assert got == fill(tag, 2), f"v{version} corrupted"

    def test_per_version_border_weaving_under_concurrency(self, tdep):
        """Writers patch different pages concurrently; every snapshot v
        must equal the reference prefix-application of patches 1..v."""
        seed = tdep.client("seed")
        blob = seed.alloc(TOTAL, PAGE)
        n_writers, per_writer = 4, 5
        patches: dict[int, tuple[int, bytes]] = {}
        lock = threading.Lock()

        def writer(i: int) -> None:
            client = tdep.client(f"w{i}")
            rng = random.Random(SEED ^ i)  # replayable per-writer page walk
            for k in range(per_writer):
                page = rng.randrange(16)
                data = fill(i * 50 + k + 1)
                res = client.write(blob, data, page * PAGE)
                with lock:
                    patches[res.version] = (page, data)

        run_threads(
            {f"writer-{i}": (lambda i=i: writer(i)) for i in range(n_writers)}
        )
        total = n_writers * per_writer
        # reference replay in version order
        state = bytearray(16 * PAGE)
        for v in range(1, total + 1):
            page, data = patches[v]
            state[page * PAGE : (page + 1) * PAGE] = data
            got = seed.read_bytes(blob, 0, 16 * PAGE, version=v)
            assert got == bytes(state), f"snapshot v{v} != prefix replay"


class TestLiveness:
    def test_all_writes_publish(self, tdep):
        seed = tdep.client("seed")
        blob = seed.alloc(TOTAL, PAGE)
        n = 40
        versions: list[int] = []
        lock = threading.Lock()

        def writer(i: int) -> None:
            client = tdep.client(f"w{i}")
            for _ in range(n // 8):
                res = client.write(blob, fill(i), i * PAGE)
                with lock:
                    versions.append(res.version)

        run_threads({f"writer-{i}": (lambda i=i: writer(i)) for i in range(8)})
        assert sorted(versions) == list(range(1, n + 1))
        assert seed.latest(blob) == n  # every version eventually published

    def test_version_manager_is_only_serialization(self, tdep):
        """Sanity check on the lock-free claim: data/metadata providers
        served from distinct service threads; no global lock exists. We
        assert that concurrent writers' page puts interleave across
        providers (they did not serialize behind one another)."""
        seed = tdep.client("seed")
        blob = seed.alloc(TOTAL, PAGE)

        def writer(i: int) -> None:
            client = tdep.client(f"w{i}")
            client.write(blob, fill(i + 1, 16), (i * 16) * PAGE)

        run_threads({f"writer-{i}": (lambda i=i: writer(i)) for i in range(4)})
        stats = tdep.driver.server_stats()
        data_rpcs = sum(stats[("data", i)][1] for i in range(4))
        assert data_rpcs == 4 * 16  # all pages stored exactly once
