"""Cluster/network model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import ClusterSpec, Network


def run_transfer(net, src, dst, nbytes):
    sim = net.sim
    proc = sim.process(net.transfer(src, dst, nbytes))
    sim.run(until=proc)
    return sim.now


class TestClusterSpec:
    def test_defaults_match_testbed(self):
        spec = ClusterSpec()
        assert spec.latency == pytest.approx(0.1e-3)
        assert spec.bandwidth == pytest.approx(117.5 * (1 << 20))

    def test_effective_rates_below_wire(self):
        spec = ClusterSpec()
        assert spec.rx_rate("client") < spec.bandwidth
        assert spec.rx_rate("server") < spec.bandwidth
        # clients are the CPU-bound side
        assert spec.rx_rate("client") < spec.rx_rate("server")

    def test_service_time_defaults(self):
        spec = ClusterSpec()
        assert spec.service_time("meta.put_node") > spec.service_time("meta.get_node")
        assert spec.service_time("unknown.method") > 0

    def test_reply_cpu_dominated_by_tree_nodes(self):
        spec = ClusterSpec()
        assert spec.reply_cpu("meta.get_node") > spec.reply_cpu("data.get_page")

    def test_compute_cost(self):
        spec = ClusterSpec()
        one = spec.compute_cost("client.build_node", 1)
        assert spec.compute_cost("client.build_node", 10) == pytest.approx(10 * one)
        with pytest.raises(KeyError):
            spec.compute_cost("nope", 1)

    def test_with_overrides(self):
        spec = ClusterSpec().with_overrides(latency=5e-3, aggregate=False)
        assert spec.latency == 5e-3
        assert spec.aggregate is False
        # original untouched (frozen dataclass semantics)
        assert ClusterSpec().aggregate is True

    def test_async_latency(self):
        spec = ClusterSpec()
        assert spec.async_latency("meta.put_node") > 0
        assert spec.async_latency("meta.get_node") == 0.0


class TestNetwork:
    def test_node_registry(self):
        net = Network(Simulator())
        a = net.add_node("a")
        assert net.node("a") is a
        with pytest.raises(ValueError):
            net.add_node("a")

    def test_node_role_validation(self):
        net = Network(Simulator())
        with pytest.raises(ValueError):
            net.add_node("x", role="gateway")

    def test_transfer_time_includes_latency_and_serialization(self):
        sim = Simulator()
        spec = ClusterSpec()
        net = Network(sim, spec)
        a, b = net.add_node("a"), net.add_node("b")
        nbytes = 1 << 20
        elapsed = run_transfer(net, a, b, nbytes)
        expected = nbytes / spec.tx_rate("server") + spec.latency + nbytes / spec.rx_rate("server")
        assert elapsed == pytest.approx(expected, rel=1e-9)

    def test_loopback_is_nearly_free(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_node("a")
        elapsed = run_transfer(net, a, a, 1 << 30)
        assert elapsed < 1e-3

    def test_counters(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_node("a"), net.add_node("b")
        run_transfer(net, a, b, 1000)
        assert net.messages_sent == 1
        assert net.bytes_sent == 1000

    def test_concurrent_transfers_share_nic(self):
        """Two transfers out of one node serialize on its tx lane."""
        sim = Simulator()
        spec = ClusterSpec()
        net = Network(sim, spec)
        src = net.add_node("src")
        dsts = [net.add_node(f"d{i}") for i in range(2)]
        nbytes = 10 << 20
        procs = [sim.process(net.transfer(src, d, nbytes)) for d in dsts]
        sim.run(until=sim.all_of(procs))
        single = nbytes / spec.tx_rate("server")
        # both transfers must serialize on src.tx: ~2x one transfer time
        assert sim.now >= 2 * single
        assert sim.now < 2 * single + nbytes / spec.rx_rate("server") + 1e-2

    def test_distinct_paths_run_parallel(self):
        sim = Simulator()
        spec = ClusterSpec()
        net = Network(sim, spec)
        pairs = [(net.add_node(f"s{i}"), net.add_node(f"d{i}")) for i in range(4)]
        nbytes = 10 << 20
        procs = [sim.process(net.transfer(s, d, nbytes)) for s, d in pairs]
        sim.run(until=sim.all_of(procs))
        single = (
            nbytes / spec.tx_rate("server")
            + spec.latency
            + nbytes / spec.rx_rate("server")
        )
        assert sim.now == pytest.approx(single, rel=1e-6)
