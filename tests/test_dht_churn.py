"""Property-style churn suite for the dht layer.

Seeded random storms of join / graceful-leave / crash against a
replicated :class:`~repro.dht.ring.ChordRing`, with the full invariant
set re-checked after every membership event:

- **durability**: every key written before the storm reads back its
  exact value (crashes only ever take one replica at a time, and
  ``rereplicate`` restores the factor before the next event);
- **replication invariant**: each key is held by *exactly* k live
  nodes, and those holders are precisely the owner's replica set;
- **convergence**: successor/predecessor pointers re-form the sorted
  live ring after every event;
- **balance**: the final load distribution stays within a small
  constant of the ideal per-node share.

Everything is deterministic: node names hash to fixed ring positions
and each storm derives from an explicit seed, so a failure replays
exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.dht.ring import ChordRing
from repro.errors import NodeMissing

K = 2
N_START = 8
N_KEYS = 200
N_EVENTS = 24
MIN_LIVE = 4  # never shrink below this (keeps k-replication satisfiable)

SEEDS = (0xA1, 0xB2, 0xC3)


def check_invariants(ring: ChordRing, expected: dict) -> None:
    """The full post-event invariant set (see module docstring)."""
    assert ring._consistent(), "ring failed to re-converge"
    assert ring.keys() == set(expected), "key set changed under churn"
    for key, value in expected.items():
        assert ring.get(key) == value
        holders = {
            n for n in ring.nodes.values() if n.alive and key in n.store
        }
        owner = ring.owner_of(key)
        targets = set(owner.replica_targets(ring.replication))
        assert len(holders) == ring.replication, (
            f"{key} on {len(holders)} nodes, want {ring.replication}"
        )
        assert holders == targets, f"{key} held off its replica set"


def run_storm(seed: int) -> ChordRing:
    rng = random.Random(seed)
    ring = ChordRing([f"n{i}" for i in range(N_START)], replication=K)
    expected = {("k", i): i * 31 for i in range(N_KEYS)}
    for key, value in expected.items():
        ring.put(key, value)
    check_invariants(ring, expected)

    for step in range(N_EVENTS):
        live = sorted(n.name for n in ring.nodes.values() if n.alive)
        ops = ["join"]
        if len(live) > MIN_LIVE:
            ops += ["leave", "crash"]
        op = rng.choice(ops)
        if op == "join":
            ring.add_node(f"s{seed:x}-{step}")
        elif op == "leave":
            ring.remove_node(rng.choice(live), graceful=True)
        else:
            ring.remove_node(rng.choice(live), graceful=False)
        check_invariants(ring, expected)
    return ring


@pytest.mark.parametrize("seed", SEEDS)
def test_churn_storm_preserves_all_invariants(seed):
    run_storm(seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_final_load_within_twice_ideal_share(seed):
    """After a full storm the per-node load stays within 2x the ideal
    share (single-hash-point Chord; the hash_ring *strategy* tightens
    this with virtual nodes, see test_providers_strategies)."""
    ring = run_storm(seed)
    loads = ring.load_distribution()
    assert sum(loads.values()) == N_KEYS * K
    ideal = N_KEYS * K / len(ring)
    assert max(loads.values()) <= 2 * ideal, (
        f"max load {max(loads.values())} exceeds 2x ideal {ideal:.1f}"
    )


def test_crash_never_loses_the_last_replica():
    """Directed variant: crash the *heaviest* node after every event —
    the worst case for copy-then-reclaim — and every key survives."""
    ring = ChordRing([f"n{i}" for i in range(10)], replication=3)
    expected = {("c", i): i for i in range(120)}
    for key, value in expected.items():
        ring.put(key, value)
    for step in range(4):
        heaviest = max(ring.load_distribution().items(), key=lambda kv: kv[1])
        ring.remove_node(heaviest[0], graceful=False)
        ring.add_node(f"replace-{step}")
        for key, value in expected.items():
            assert ring.get(key) == value


def test_unreplicated_crash_loses_only_the_victims_keys():
    """Negative control (k=1): a crash loses exactly the victim's keys
    and nothing else — the suite would catch over- or under-loss."""
    ring = ChordRing([f"n{i}" for i in range(6)], replication=1)
    expected = {("u", i): i for i in range(100)}
    for key, value in expected.items():
        ring.put(key, value)
    victim = max(ring.load_distribution().items(), key=lambda kv: kv[1])[0]
    lost = set(ring.nodes[victim].store)
    assert lost
    ring.remove_node(victim, graceful=False)
    for key, value in expected.items():
        if key in lost:
            with pytest.raises(NodeMissing):
                ring.get(key)
        else:
            assert ring.get(key) == value
