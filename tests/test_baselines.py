"""Lock-based baselines: semantics and the writer-collapse behaviour."""

import threading

import pytest

from repro.baselines.locked import InMemoryLockedBlob, LockedClusterSim, SimRWLock
from repro.core.config import DeploymentSpec
from repro.sim.engine import Simulator
from repro.util.sizes import KB, MB


class TestInMemoryLockedBlob:
    def test_read_write(self):
        blob = InMemoryLockedBlob(1024)
        blob.write(b"hello", 10)
        assert blob.read(10, 5) == b"hello"
        assert blob.read(0, 5) == bytes(5)

    def test_no_versioning_history_destroyed(self):
        """The semantic gap vs the paper's system: old states are gone."""
        blob = InMemoryLockedBlob(16)
        blob.write(b"aaaa", 0)
        blob.write(b"bbbb", 0)
        assert blob.read(0, 4) == b"bbbb"  # 'aaaa' is unrecoverable

    def test_threaded_consistency(self):
        blob = InMemoryLockedBlob(4096)
        errors = []

        def writer(tag):
            for _ in range(50):
                blob.write(bytes([tag]) * 4096, 0)

        def reader():
            for _ in range(100):
                got = blob.read(0, 4096)
                if len(set(got)) > 1:
                    errors.append("torn read under RW lock")

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in (1, 2)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert blob.writes == 100

    def test_counters(self):
        blob = InMemoryLockedBlob(64)
        blob.write(b"x", 0)
        blob.read(0, 1)
        assert blob.writes == 1 and blob.reads == 1


class TestSimRWLock:
    def test_readers_share(self):
        sim = Simulator()
        lock = SimRWLock(sim)
        r1, r2 = lock.acquire("read"), lock.acquire("read")
        sim.run()
        assert r1.triggered and r2.triggered
        assert lock.max_readers == 2

    def test_writer_excludes_readers(self):
        sim = Simulator()
        lock = SimRWLock(sim)
        w = lock.acquire("write")
        r = lock.acquire("read")
        sim.run()
        assert w.triggered and not r.triggered
        lock.release("write")
        sim.run()
        assert r.triggered

    def test_fifo_no_starvation(self):
        """A writer queued behind readers runs before later readers."""
        sim = Simulator()
        lock = SimRWLock(sim)
        r1 = lock.acquire("read")
        w = lock.acquire("write")
        r2 = lock.acquire("read")
        sim.run()
        assert r1.triggered and not w.triggered and not r2.triggered
        lock.release("read")
        sim.run()
        assert w.triggered and not r2.triggered
        lock.release("write")
        sim.run()
        assert r2.triggered

    def test_writers_serialize(self):
        sim = Simulator()
        lock = SimRWLock(sim)
        w1, w2 = lock.acquire("write"), lock.acquire("write")
        sim.run()
        assert w1.triggered and not w2.triggered


class TestLockedClusterSim:
    def spec(self, n):
        return DeploymentSpec(n_data=8, n_meta=1, n_clients=n)

    def test_single_client_bandwidth_reasonable(self):
        sim = LockedClusterSim(self.spec(1))
        (bw,) = sim.run_clients(1, iterations=5, size=4 * MB, kind="write")
        assert 40 < bw < 120  # within the cluster's physical envelope

    def test_writer_bandwidth_collapses(self):
        """The ablation headline: per-writer bandwidth ~ 1/n."""
        def mean_bw(n):
            sim = LockedClusterSim(self.spec(n))
            bws = sim.run_clients(n, iterations=5, size=4 * MB, kind="write")
            return sum(bws) / len(bws)

        b1, b4, b8 = mean_bw(1), mean_bw(4), mean_bw(8)
        assert b4 < 0.4 * b1
        assert b8 < 0.2 * b1

    def test_reader_bandwidth_flat(self):
        def mean_bw(n):
            sim = LockedClusterSim(self.spec(n))
            bws = sim.run_clients(n, iterations=5, size=4 * MB, kind="read")
            return sum(bws) / len(bws)

        b1, b8 = mean_bw(1), mean_bw(8)
        assert b8 > 0.8 * b1  # shared lock: readers hardly degrade

    def test_mixed_contention_blocks_readers(self):
        """Unlike the paper's system, here a writer stalls all readers."""
        sim = LockedClusterSim(DeploymentSpec(n_data=8, n_meta=1, n_clients=4))
        durations = []

        def reader(idx):
            d = yield from sim.access_proto(idx, 4 * MB, "read")
            durations.append(("r", d))

        def writer(idx):
            d = yield from sim.access_proto(idx, 32 * MB, "write")
            durations.append(("w", d))

        procs = [
            sim.sim.process(writer(0)),
            sim.sim.process(reader(1)),
            sim.sim.process(reader(2)),
        ]
        sim.sim.run(until=sim.sim.all_of(procs))
        reader_times = [d for k, d in durations if k == "r"]
        write_time = next(d for k, d in durations if k == "w")
        # readers arrived after the writer: they waited out the write
        assert all(t > 0.5 * write_time for t in reader_times)
