"""Wire codec: frame round-trips for everything that crosses a process
boundary, streaming reassembly, and corruption handling.

The satellite requirement pinned here: memoryview-backed (zero-copy) and
spilled page payloads must round-trip the codec bit-identically — the
process driver is only correct if the wire preserves exactly the bytes
the in-process drivers carry as views.
"""

from __future__ import annotations

import pickle
import socket

import pytest

from repro.core.persistence import DiskSpill
from repro.errors import (
    PageMissing,
    RemoteError,
    ReproError,
    VersionNotPublished,
)
from repro.metadata.node import NodeKey, TreeNode
from repro.net.codec import (
    LENGTH_PREFIX_BYTES,
    FrameDecoder,
    MessageDecoder,
    WireCodecError,
    decode_body,
    decode_frame,
    encode_frame,
    encode_message,
)
from repro.providers.page import PageKey, PagePayload, page_checksum
from repro.version.manager import WriteTicket


def roundtrip(obj):
    return decode_frame(encode_frame(obj))


# ---------------------------------------------------------------------------
# payload round-trips (satellite: viewed/spilled payloads, bit-identical)
# ---------------------------------------------------------------------------


def test_real_bytes_payload_roundtrips_bit_identical():
    payload = PagePayload.real(bytes(range(256)) * 16)
    back = roundtrip(payload)
    assert back.nbytes == payload.nbytes
    assert back.as_bytes() == payload.as_bytes()
    assert not back.is_virtual


def test_memoryview_backed_payload_roundtrips_bit_identical():
    # the zero-copy path: split_pages carries views over the caller's
    # buffer; at the process boundary they must materialize, not break
    buf = bytes(range(256)) * 64
    view = memoryview(buf)[4096 : 4096 + 4096]
    payload = PagePayload.real(view)
    assert type(payload.data) is memoryview  # premise: it really is a view
    back = roundtrip(payload)
    assert type(back.data) is bytes  # materialized exactly once
    assert back.as_bytes() == bytes(view)
    assert page_checksum(back) == page_checksum(payload)


def test_spilled_payload_roundtrips_bit_identical(tmp_path):
    # a payload stored through the disk spill as an unmaterialized view,
    # loaded back, then shipped through the codec
    spill = DiskSpill(tmp_path)
    data = b"\xa5" * 4096
    key = PageKey("blob-x", "w#1", 3)
    spill.store(key, PagePayload.real(memoryview(data)[:]))
    loaded = spill.load(key)
    assert loaded is not None
    back = roundtrip(loaded)
    assert back.as_bytes() == data
    assert back.nbytes == 4096


def test_virtual_payload_travels_as_count_only():
    back = roundtrip(PagePayload.virtual(1 << 20))
    assert back.is_virtual
    assert back.nbytes == 1 << 20
    # a virtual terabyte page must not cost a terabyte frame
    assert len(encode_frame(PagePayload.virtual(1 << 40))) < 256


def test_plain_pickle_of_viewed_payload_also_works():
    # __reduce__ serves any pickler, not just the codec (mp.Pipe uses its own)
    payload = PagePayload.real(memoryview(b"z" * 128))
    back = pickle.loads(pickle.dumps(payload))
    assert back.as_bytes() == b"z" * 128


# ---------------------------------------------------------------------------
# metadata / control value round-trips
# ---------------------------------------------------------------------------


def test_tree_nodes_and_keys_roundtrip():
    leaf = TreeNode(
        NodeKey("blob-1", 4, 0, 4096), providers=(2, 5), write_uid="c1#9"
    )
    internal = TreeNode(
        NodeKey("blob-1", 4, 0, 8192), left_version=4, right_version=2
    )
    assert roundtrip(leaf) == leaf
    assert roundtrip(internal) == internal
    assert roundtrip(PageKey("b", "w", 7)) == PageKey("b", "w", 7)


def test_write_ticket_roundtrips():
    ticket = WriteTicket(
        blob_id="blob-2", version=9, border_refs=(((0, 4096), 3), ((8192, 4096), 7))
    )
    assert roundtrip(ticket) == ticket


def test_batched_rpc_shapes_roundtrip():
    frame = (
        17,
        "rpc",
        [
            ("data.put_page", (PageKey("b", "w", 0), PagePayload.real(b"x" * 64))),
            ("data.get_page", (PageKey("b", "w", 1),)),
        ],
    )
    req_id, kind, calls = roundtrip(frame)
    assert (req_id, kind) == (17, "rpc")
    assert calls[0][1][1].as_bytes() == b"x" * 64


# ---------------------------------------------------------------------------
# error round-trips
# ---------------------------------------------------------------------------


def test_semantic_error_survives_typed():
    err = RemoteError.wrap(VersionNotPublished("blob-3", 9, 4))
    back = roundtrip(err)
    assert isinstance(back, RemoteError)
    unwrapped = back.unwrap()
    assert isinstance(unwrapped, VersionNotPublished)
    assert (unwrapped.blob_id, unwrapped.requested, unwrapped.latest) == (
        "blob-3", 9, 4,
    )


def test_page_missing_survives_typed():
    back = roundtrip(RemoteError.wrap(PageMissing("no page")))
    assert isinstance(back.unwrap(), PageMissing)


def test_unpicklable_original_is_dropped_not_fatal():
    class Weird(Exception):
        def __init__(self):
            super().__init__("weird")
            self.payload = lambda: None  # unpicklable attribute

    err = RemoteError.wrap(Weird())
    back = roundtrip(err)
    assert isinstance(back, RemoteError)
    assert back.original is None
    assert back.error_type == "Weird"
    assert back.unwrap() is back  # non-semantic stays wrapped


# ---------------------------------------------------------------------------
# framing: self-delimiting streams, corruption
# ---------------------------------------------------------------------------


def test_frame_decoder_reassembles_across_chunk_boundaries():
    objs = [PagePayload.real(b"a" * 1000), ("ctl", 1), list(range(50))]
    stream = b"".join(encode_frame(o) for o in objs)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), 7):  # adversarial 7-byte chunks
        out.extend(decoder.feed(stream[i : i + 7]))
    assert len(out) == 3
    assert out[0].as_bytes() == b"a" * 1000
    assert out[1] == ("ctl", 1)
    assert out[2] == list(range(50))
    assert decoder.pending_bytes == 0


def test_frames_stream_over_a_real_socket():
    # the length prefix makes frames self-delimiting on a raw byte stream
    left, right = socket.socketpair()
    try:
        sent = [
            (1, "rpc", [("data.get_page", (PageKey("b", "w", i),))])
            for i in range(20)
        ]
        for obj in sent:
            left.sendall(encode_frame(obj))
        decoder = FrameDecoder()
        received = []
        while len(received) < len(sent):
            received.extend(decoder.feed(right.recv(64)))
        assert received == sent
    finally:
        left.close()
        right.close()


def test_message_layer_routes_by_header_without_decoding():
    # the RPC channel: req_id lives outside the pickle body, so a router
    # can dispatch replies without paying the unpickle
    payloads = {
        7: ("rpc", [("data.get_page", (PageKey("b", "w", 1),))]),
        1 << 40: [PagePayload.real(b"y" * 500)],  # u64 ids supported
    }
    stream = b"".join(encode_message(i, obj) for i, obj in payloads.items())
    decoder = MessageDecoder()
    seen = {}
    for i in range(0, len(stream), 11):  # adversarial chunking
        for req_id, body in decoder.feed(stream[i : i + 11]):
            assert isinstance(body, bytes)  # still encoded at routing time
            seen[req_id] = decode_body(body)
    assert set(seen) == set(payloads)
    assert seen[7] == payloads[7]
    assert seen[1 << 40][0].as_bytes() == b"y" * 500
    assert decoder.pending_bytes == 0


def test_message_decoder_streams_over_real_tcp_with_byte_dribble():
    """The TCP transport's premise, proven adversarially: RPC messages
    reassemble from a *real* TCP connection (loopback listener + dialed
    socket, not a socketpair) even when the bytes arrive one at a time —
    every chunk boundary crosses the 12-byte header, including the
    header/body seam, which a socketpair test with large reads never
    exercises."""
    listener = socket.create_server(("127.0.0.1", 0))
    sender = receiver = None
    try:
        sender = socket.create_connection(listener.getsockname(), timeout=10)
        sender.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        receiver, _ = listener.accept()
        receiver.settimeout(10)

        payloads = {
            1: ("rpc", [("data.put_page", (PageKey("b", "w", 0),
                                           PagePayload.real(b"q" * 300)))]),
            2: ("stats", ()),
            1 << 40: [PagePayload.real(bytes(range(256)))],  # u64 req ids
        }
        stream = b"".join(encode_message(i, obj) for i, obj in payloads.items())
        done = []

        def dribble() -> None:
            # one byte per send: TCP may still coalesce, so the receive
            # side independently re-dribbles with recv(1)
            for k in range(len(stream)):
                sender.sendall(stream[k : k + 1])
            done.append(True)

        import threading

        feeder = threading.Thread(target=dribble, daemon=True)
        feeder.start()

        decoder = MessageDecoder()
        seen = {}
        received = 0
        while received < len(stream):
            chunk = receiver.recv(1)  # adversarial 1-byte reads
            assert chunk, "sender closed early"
            received += len(chunk)
            for req_id, body in decoder.feed(chunk):
                assert isinstance(body, bytes)  # still encoded at routing
                seen[req_id] = decode_body(body)
        feeder.join(timeout=10)
        assert done, "dribbling sender stalled"
        assert decoder.pending_bytes == 0
        assert set(seen) == set(payloads)
        assert seen[2] == ("stats", ())
        assert seen[1][1][0][1][1].as_bytes() == b"q" * 300
        assert seen[1 << 40][0].as_bytes() == bytes(range(256))
    finally:
        for sock in (sender, receiver, listener):
            if sock is not None:
                sock.close()


def test_message_decoder_rejects_corrupt_length():
    decoder = MessageDecoder()
    with pytest.raises(WireCodecError):
        list(decoder.feed(b"\xff\xff\xff\xff" + b"\x00" * 16))


def test_decode_rejects_length_mismatch():
    frame = bytearray(encode_frame(("x", 1)))
    frame[:LENGTH_PREFIX_BYTES] = (len(frame) + 5).to_bytes(4, "big")
    with pytest.raises(WireCodecError):
        decode_frame(bytes(frame))


def test_decode_rejects_truncated_and_garbage():
    with pytest.raises(WireCodecError):
        decode_frame(b"\x00\x01")
    good = encode_frame([1, 2, 3])
    corrupt = good[:LENGTH_PREFIX_BYTES] + b"\xff" * (len(good) - LENGTH_PREFIX_BYTES)
    with pytest.raises(WireCodecError):
        decode_frame(corrupt)


def test_decoder_rejects_absurd_length_prefix():
    decoder = FrameDecoder()
    with pytest.raises(WireCodecError):
        list(decoder.feed(b"\xff\xff\xff\xff garbage"))


def test_encode_rejects_unpicklable_object():
    with pytest.raises(WireCodecError):
        encode_frame(lambda: None)
    assert issubclass(WireCodecError, ReproError)


# ---------------------------------------------------------------------------
# seeded chunk-boundary fuzz (satellite of the aio driver: the async
# reader hands the decoder arbitrary partial reads, including splits
# inside the 12-byte message header, far more often than blocking
# recv loops ever do)
# ---------------------------------------------------------------------------


def _fuzz_payloads(rng):
    """A seeded mixed bag of realistic message bodies, small and large."""
    payloads = {}
    req_id = 1
    for _ in range(rng.randrange(8, 24)):
        shape = rng.randrange(4)
        if shape == 0:
            body = ("rpc", [("data.stats", ())])
        elif shape == 1:
            body = ("rpc", [
                ("data.put", (("b", rng.randrange(64), rng.randrange(8)),
                              bytes(rng.randrange(256) for _ in range(rng.randrange(0, 700)))))
            ])
        elif shape == 2:
            body = ("stats", ())
        else:
            body = ("rpc", [("meta.get", (rng.randrange(1 << 30),))] * rng.randrange(1, 5))
        payloads[req_id] = body
        req_id += rng.choice((1, 1, 1, 7, 1 << 20))  # sparse 64-bit ids too
    return payloads


@pytest.mark.parametrize("seed", [0, 1, 0xC0DEC])
def test_message_decoder_fuzzed_chunk_boundaries_reassemble(seed):
    """Feed one encoded stream through the decoder in randomized 1..N-byte
    slices (seeded): every slicing must yield exactly the original
    (req_id, body) sequence, bit-identical bodies, regardless of where
    the cuts land — start of stream, inside the 12-byte header, inside a
    body, or across several whole messages at once."""
    import random as random_mod

    rng = random_mod.Random(seed)
    payloads = _fuzz_payloads(rng)
    stream = b"".join(encode_message(rid, body) for rid, body in payloads.items())

    for trial in range(25):
        decoder = MessageDecoder()
        seen = []
        pos = 0
        while pos < len(stream):
            if trial == 0:
                step = 1  # pure byte-dribble: every boundary exercised
            else:
                # bias toward tiny slices so header splits stay common
                step = rng.choice((1, 2, 3, 5, 11, rng.randrange(1, 96)))
            chunk = stream[pos : pos + step]
            pos += len(chunk)
            for req_id, body in decoder.feed(chunk):
                assert isinstance(body, (bytes, bytearray, memoryview))
                seen.append((req_id, bytes(body)))
        assert decoder.pending_bytes == 0
        assert [rid for rid, _ in seen] == list(payloads)
        for req_id, raw in seen:
            rebuilt = decode_body(raw)
            reference = decode_body(
                encode_message(req_id, payloads[req_id])[12:]
            )
            assert type(rebuilt) is type(reference)
            assert repr(rebuilt) == repr(reference)


@pytest.mark.parametrize("seed", [2, 0xBAD])
def test_message_decoder_fuzzed_corruption_rejected_typed(seed):
    """Flip the length prefix of a random message to an absurd value (or
    truncate the stream inside a header) and the decoder must raise
    WireCodecError — never a struct error, never a silent resync."""
    import random as random_mod

    rng = random_mod.Random(seed)
    payloads = _fuzz_payloads(rng)
    frames = [encode_message(rid, body) for rid, body in payloads.items()]
    victim = rng.randrange(len(frames))
    corrupt = bytearray(b"".join(frames))
    offset = sum(len(f) for f in frames[:victim])
    corrupt[offset : offset + 4] = b"\xff\xff\xff\xff"  # > MAX_FRAME_BYTES

    decoder = MessageDecoder()
    with pytest.raises(WireCodecError):
        pos, step_rng = 0, random_mod.Random(seed ^ 1)
        while pos < len(corrupt):
            step = step_rng.randrange(1, 32)
            list(decoder.feed(bytes(corrupt[pos : pos + step])))
            pos += step

    # messages *before* the corruption must still have been delivered
    # (the decoder fails exactly at the poisoned header, not earlier)
    good_decoder = MessageDecoder()
    delivered = []
    try:
        pos = 0
        while pos < len(corrupt):
            for rid, _ in good_decoder.feed(bytes(corrupt[pos : pos + 7])):
                delivered.append(rid)
            pos += 7
    except WireCodecError:
        pass
    assert delivered == list(payloads)[:victim]
