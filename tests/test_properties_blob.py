"""Property-based acceptance: the blob behaves exactly like the paper's
specification, checked against an independent reference model.

The reference model materializes every snapshot as a flat byte array built
by successively applying patches — the definition in §II ("the segment
(offset, size) obtained by successively applying the first v patches to
the initial string"). Any divergence between the distributed system and
this model is a bug in striping, weaving, versioning or assembly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.util.sizes import KB

TOTAL = 256 * KB
PAGE = 4 * KB
NPAGES = TOTAL // PAGE


class ReferenceModel:
    """Flat snapshots-by-copy implementation of the §II specification."""

    def __init__(self) -> None:
        self.snapshots: list[bytes] = [bytes(TOTAL)]  # version 0

    def write(self, data: bytes, offset: int) -> int:
        latest = bytearray(self.snapshots[-1])
        latest[offset : offset + len(data)] = data
        self.snapshots.append(bytes(latest))
        return len(self.snapshots) - 1

    def read(self, version: int, offset: int, size: int) -> bytes:
        return self.snapshots[version][offset : offset + size]


def fill_for(version: int, first_page: int, npages: int) -> bytes:
    """Deterministic distinctive content per write."""
    rng = np.random.default_rng(version * 1_000_003 + first_page * 97 + npages)
    return rng.integers(0, 256, size=npages * PAGE, dtype=np.uint8).tobytes()


write_strategy = st.tuples(
    st.integers(min_value=0, max_value=NPAGES - 1),  # first page
    st.integers(min_value=1, max_value=8),  # page count
)

read_strategy = st.tuples(
    st.integers(min_value=0, max_value=TOTAL - 1),  # offset
    st.integers(min_value=1, max_value=6 * PAGE),  # size
)


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(write_strategy, min_size=1, max_size=10),
    reads=st.lists(read_strategy, min_size=1, max_size=12),
)
def test_reads_match_reference_model(writes, reads):
    dep = build_inproc(DeploymentSpec(n_data=3, n_meta=3))
    client = dep.client()
    blob = client.alloc(TOTAL, PAGE)
    model = ReferenceModel()

    for first, npages in writes:
        npages = min(npages, NPAGES - first)
        data = fill_for(len(model.snapshots), first, npages)
        result = client.write(blob, data, first * PAGE)
        expected_version = model.write(data, first * PAGE)
        assert result.version == expected_version

    latest = len(model.snapshots) - 1
    for offset, size in reads:
        size = min(size, TOTAL - offset)
        for version in {0, latest, max(0, latest // 2)}:
            got = client.read_bytes(blob, offset, size, version=version)
            assert got == model.read(version, offset, size), (
                f"divergence at v{version} [{offset}, +{size})"
            )


@settings(max_examples=25, deadline=None)
@given(writes=st.lists(write_strategy, min_size=2, max_size=8), data=st.data())
def test_every_snapshot_immutable_after_later_writes(writes, data):
    """Snapshot v's content never changes as later versions appear."""
    dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
    client = dep.client()
    blob = client.alloc(TOTAL, PAGE)
    model = ReferenceModel()

    observed: dict[int, bytes] = {}
    probe = data.draw(read_strategy, label="probe")
    offset, size = probe
    size = min(size, TOTAL - offset)

    for first, npages in writes:
        npages = min(npages, NPAGES - first)
        payload = fill_for(len(model.snapshots), first, npages)
        client.write(blob, payload, first * PAGE)
        v = model.write(payload, first * PAGE)
        # sample this and every earlier snapshot at the probe range
        for version in range(v + 1):
            got = client.read_bytes(blob, offset, size, version=version)
            if version in observed:
                assert got == observed[version], f"snapshot v{version} mutated"
            else:
                observed[version] = got
            assert got == model.read(version, offset, size)


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(write_strategy, min_size=1, max_size=10),
    replication=st.integers(min_value=1, max_value=3),
)
def test_replication_transparent_to_semantics(writes, replication):
    """Page/metadata replication must not change any observable value."""
    dep = build_inproc(
        DeploymentSpec(n_data=4, n_meta=4, replication=replication)
    )
    client = dep.client()
    blob = client.alloc(TOTAL, PAGE)
    model = ReferenceModel()
    for first, npages in writes:
        npages = min(npages, NPAGES - first)
        payload = fill_for(len(model.snapshots), first, npages)
        client.write(blob, payload, first * PAGE)
        model.write(payload, first * PAGE)
    latest = len(model.snapshots) - 1
    got = client.read_bytes(blob, 0, TOTAL, version=latest)
    assert got == model.read(latest, 0, TOTAL)


@settings(max_examples=20, deadline=None)
@given(
    writes=st.lists(write_strategy, min_size=1, max_size=6),
    strategy=st.sampled_from(["round_robin", "least_loaded", "random_k"]),
)
def test_allocation_strategy_transparent_to_semantics(writes, strategy):
    dep = build_inproc(
        DeploymentSpec(n_data=5, n_meta=3, strategy=strategy)
    )
    client = dep.client()
    blob = client.alloc(TOTAL, PAGE)
    model = ReferenceModel()
    for first, npages in writes:
        npages = min(npages, NPAGES - first)
        payload = fill_for(len(model.snapshots), first, npages)
        client.write(blob, payload, first * PAGE)
        model.write(payload, first * PAGE)
    latest = len(model.snapshots) - 1
    assert client.read_bytes(blob, 0, TOTAL, version=latest) == model.read(
        latest, 0, TOTAL
    )
