"""Coverage of smaller public surfaces: errors, driver registries,
deployment wiring, SimClient cache modes, ticket serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import BlobConfig, DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.deploy.simulated import SimDeployment
from repro.errors import ConfigError, RemoteError, ReproError, VersionNotPublished
from repro.net.inproc import InprocDriver
from repro.net.message import estimate_size
from repro.util.intervals import Interval
from repro.util.sizes import KB, MB, TB
from repro.version.manager import VersionManager, WriteTicket


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(VersionNotPublished, ReproError)
        assert issubclass(RemoteError, ReproError)
        assert issubclass(ConfigError, ReproError)

    def test_version_not_published_payload(self):
        exc = VersionNotPublished("blob-7", 9, 2)
        assert exc.blob_id == "blob-7"
        assert exc.requested == 9
        assert exc.latest == 2
        assert "blob-7" in str(exc)

    def test_remote_error_wrap_idempotent(self):
        inner = RemoteError("X", "y")
        assert RemoteError.wrap(inner) is inner


class TestBlobConfig:
    def test_valid(self):
        cfg = BlobConfig(total_size=1 * TB, pagesize=64 * KB)
        assert cfg.geometry().depth == 24
        assert "1 TB" in str(cfg)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            BlobConfig(total_size=3 * MB, pagesize=4 * KB)
        with pytest.raises(ConfigError):
            BlobConfig(total_size=4 * KB, pagesize=8 * KB)


class TestDeploymentSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DeploymentSpec(n_data=0)
        with pytest.raises(ConfigError):
            DeploymentSpec(replication=0)
        with pytest.raises(ConfigError):
            DeploymentSpec(n_data=2, n_meta=2, replication=3)
        with pytest.raises(ConfigError):
            DeploymentSpec(cache_capacity=-1)


class TestInprocDriverRegistry:
    def test_register_unregister(self):
        driver = InprocDriver()
        actor = object()
        driver.register("x", actor)  # type: ignore[arg-type]
        assert driver.addresses() == ["x"]
        assert driver.actor("x") is actor
        driver.unregister("x")
        assert driver.addresses() == []
        driver.unregister("x")  # idempotent

    def test_duplicate_rejected(self):
        driver = InprocDriver()
        driver.register("x", object())  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            driver.register("x", object())  # type: ignore[arg-type]


class TestDeploymentWiring:
    def test_client_names_and_caches(self):
        dep = build_inproc(DeploymentSpec(n_data=2, n_meta=2))
        a = dep.client("alpha")
        b = dep.client()
        assert a.name == "alpha"
        assert b.name.startswith("client-")
        assert a.cache is not b.cache

    def test_provider_registration_consistency(self):
        dep = build_inproc(DeploymentSpec(n_data=3, n_meta=5))
        assert dep.pm.providers() == [0, 1, 2]
        assert dep.meta_ids == [0, 1, 2, 3, 4]
        assert dep.router.meta_ids == (0, 1, 2, 3, 4)


class TestSimClientModes:
    def test_cache_override_flags(self):
        dep = SimDeployment(
            DeploymentSpec(n_data=2, n_meta=2, n_clients=3, cache_capacity=0)
        )
        assert dep.client(0).cache is None  # spec default: disabled
        assert dep.client(1, cached=True).cache is not None
        assert dep.client(2, cached=False).cache is None

    def test_spec_cache_respected(self):
        dep = SimDeployment(
            DeploymentSpec(n_data=2, n_meta=2, n_clients=2, cache_capacity=64)
        )
        client = dep.client(0)
        assert client.cache is not None
        assert dep.client(1, cached=False).cache is None


class TestWriteTicket:
    def test_refs_roundtrip(self):
        vm = VersionManager()
        blob = vm.alloc(1 * MB, 4 * KB)
        ticket = vm.assign(blob, 0, 4 * KB)
        refs = ticket.refs_as_dict()
        assert all(isinstance(iv, Interval) for iv in refs)
        assert len(refs) == len(ticket.border_refs)

    def test_wire_size_scales_with_refs(self):
        vm = VersionManager()
        blob = vm.alloc(1 * MB, 4 * KB)
        t_small = vm.assign(blob, 0, 512 * KB)  # few borders
        t_big = vm.assign(blob, 4 * KB, 4 * KB)  # deep path: many borders
        assert estimate_size(t_big) > estimate_size(t_small)


class TestIntervalProperties:
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=100),
    )
    def test_intersection_consistent_with_intersects(self, o1, s1, o2, s2):
        a, b = Interval(o1, s1), Interval(o2, s2)
        inter = a.intersection(b)
        if a.intersects(b):
            assert inter.size > 0
            assert a.contains(inter) and b.contains(inter)
        else:
            assert inter.size == 0

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=100),
    )
    def test_intersects_symmetric(self, o1, s1, o2, s2):
        a, b = Interval(o1, s1), Interval(o2, s2)
        assert a.intersects(b) == b.intersects(a)
