"""Canonical interval algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import Interval, canonical_cover, page_span

PAGE = 4096


class TestIntervalBasics:
    def test_end_and_contains(self):
        iv = Interval(100, 50)
        assert iv.end == 150
        assert iv.contains(Interval(100, 50))
        assert iv.contains(Interval(120, 10))
        assert not iv.contains(Interval(90, 20))
        assert not iv.contains(Interval(140, 20))

    def test_contains_point(self):
        iv = Interval(10, 5)
        assert iv.contains_point(10)
        assert iv.contains_point(14)
        assert not iv.contains_point(15)
        assert not iv.contains_point(9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval(-1, 5)
        with pytest.raises(ValueError):
            Interval(0, -5)

    def test_empty(self):
        assert Interval(5, 0).is_empty()
        assert not Interval(5, 1).is_empty()

    def test_intersects_half_open(self):
        # touching intervals share no byte
        assert not Interval(0, 10).intersects(Interval(10, 10))
        assert Interval(0, 11).intersects(Interval(10, 10))
        assert Interval(5, 1).intersects(Interval(0, 10))

    def test_intersection(self):
        got = Interval(0, 10).intersection(Interval(5, 10))
        assert got == Interval(5, 5)
        empty = Interval(0, 5).intersection(Interval(10, 5))
        assert empty.is_empty()

    def test_halves(self):
        iv = Interval(8, 8)
        assert iv.left_half() == Interval(8, 4)
        assert iv.right_half() == Interval(12, 4)

    def test_halves_reject_tiny(self):
        with pytest.raises(ValueError):
            Interval(0, 1).left_half()

    def test_is_canonical(self):
        assert Interval(0, PAGE).is_canonical(PAGE)
        assert Interval(2 * PAGE, 2 * PAGE).is_canonical(PAGE)
        assert not Interval(PAGE, 2 * PAGE).is_canonical(PAGE)  # misaligned
        assert not Interval(0, 3 * PAGE).is_canonical(PAGE)  # not pow2
        assert not Interval(0, PAGE // 2).is_canonical(PAGE)  # sub-page

    def test_str(self):
        assert str(Interval(4, 8)) == "[4,+8)"


class TestPageSpan:
    def test_exact_page(self):
        assert page_span(0, PAGE, PAGE) == (0, 1)

    def test_interior(self):
        assert page_span(10, 20, PAGE) == (0, 1)

    def test_straddle(self):
        assert page_span(PAGE - 1, 2, PAGE) == (0, 2)

    def test_multi_page(self):
        assert page_span(PAGE, 3 * PAGE, PAGE) == (1, 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            page_span(0, 0, PAGE)

    @given(
        st.integers(min_value=0, max_value=1 << 30),
        st.integers(min_value=1, max_value=1 << 20),
    )
    def test_covers_request(self, offset, size):
        first, last = page_span(offset, size, PAGE)
        assert first * PAGE <= offset
        assert last * PAGE >= offset + size
        # minimality
        assert (first + 1) * PAGE > offset
        assert (last - 1) * PAGE < offset + size


class TestCanonicalCover:
    def test_single_page(self):
        assert canonical_cover(Interval(0, PAGE), PAGE) == [Interval(0, PAGE)]

    def test_aligned_power(self):
        assert canonical_cover(Interval(0, 4 * PAGE), PAGE) == [Interval(0, 4 * PAGE)]

    def test_unaligned_decomposition(self):
        got = canonical_cover(Interval(PAGE, 3 * PAGE), PAGE)
        assert got == [Interval(PAGE, PAGE), Interval(2 * PAGE, 2 * PAGE)]

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            canonical_cover(Interval(1, PAGE), PAGE)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=256),
    )
    def test_cover_properties(self, first_page, npages):
        iv = Interval(first_page * PAGE, npages * PAGE)
        parts = canonical_cover(iv, PAGE)
        # disjoint union equal to iv, in order
        assert parts[0].offset == iv.offset
        assert parts[-1].end == iv.end
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.offset
        # each part is canonical
        assert all(p.is_canonical(PAGE) for p in parts)
        # minimality bound: at most 2*log2(npages)+2 parts
        assert len(parts) <= 2 * max(1, npages).bit_length() + 2
