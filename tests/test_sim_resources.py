"""Simulated resources: semaphores and rate lanes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import RateLane, Resource


class TestResource:
    def test_grant_within_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        sim.run()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2

    def test_queueing_beyond_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        sim.run()
        assert r1.triggered and not r2.triggered
        assert res.queued == 1
        res.release()
        sim.run()
        assert r2.triggered

    def test_fifo_granting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        order = []
        for i in range(3):
            res.request().add_callback(lambda _, i=i: order.append(i))
        for _ in range(3):
            res.release()
        sim.run()
        assert order == [0, 1, 2]

    def test_release_without_request_rejected(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(Exception):
            res.release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)

    def test_high_water_mark(self):
        sim = Simulator()
        res = Resource(sim, capacity=3)
        for _ in range(3):
            res.request()
        assert res.max_in_use == 3

    def test_full_cycle_in_process(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        held = []

        def worker(i):
            req = res.request()
            yield req
            held.append((sim.now, i))
            yield sim.timeout(2.0)
            res.release()

        procs = [sim.process(worker(i)) for i in range(3)]
        sim.run(until=sim.all_of(procs))
        # strictly serialized: entries 2 time units apart
        assert [t for t, _ in held] == [0.0, 2.0, 4.0]


class TestRateLane:
    def test_single_job_service_time(self):
        sim = Simulator()
        lane = RateLane(sim, rate=100.0)
        ev = lane.submit(50.0)
        sim.run()
        assert ev.triggered
        assert sim.now == pytest.approx(0.5)

    def test_fifo_serialization(self):
        sim = Simulator()
        lane = RateLane(sim, rate=10.0)
        done = []
        lane.submit(10.0).add_callback(lambda _: done.append(sim.now))
        lane.submit(10.0).add_callback(lambda _: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_work_conserving_after_idle(self):
        sim = Simulator()
        lane = RateLane(sim, rate=10.0)

        def proc():
            yield lane.submit(10.0)  # busy until t=1
            yield sim.timeout(5.0)  # idle gap
            yield lane.submit(10.0)  # starts immediately at t=6
            return sim.now

        p = sim.process(proc())
        assert sim.run(until=p) == pytest.approx(7.0)

    def test_zero_amount_is_instant_tick(self):
        sim = Simulator()
        lane = RateLane(sim, rate=10.0)
        ev = lane.submit(0.0)
        sim.run()
        assert ev.triggered and sim.now == 0.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            RateLane(Simulator(), 10.0).submit(-1.0)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            RateLane(Simulator(), 0.0)

    def test_backlog_and_delay_for(self):
        sim = Simulator()
        lane = RateLane(sim, rate=10.0)
        lane.submit(20.0)
        assert lane.backlog == pytest.approx(2.0)
        assert lane.delay_for(10.0) == pytest.approx(3.0)

    def test_utilization(self):
        sim = Simulator()
        lane = RateLane(sim, rate=10.0)
        lane.submit(10.0)
        sim.run()
        sim.timeout(1.0)
        sim.run()
        assert lane.utilization(sim.now) == pytest.approx(0.5)
        assert lane.utilization(0.0) == 0.0

    def test_aggregate_throughput_under_contention(self):
        """N concurrent producers share the lane's full rate exactly."""
        sim = Simulator()
        lane = RateLane(sim, rate=100.0)

        def producer():
            for _ in range(10):
                yield lane.submit(10.0)

        procs = [sim.process(producer()) for _ in range(4)]
        sim.run(until=sim.all_of(procs))
        # total work = 4 * 10 * 10 = 400 units at rate 100 => exactly 4s
        assert sim.now == pytest.approx(4.0)
