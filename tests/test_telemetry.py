"""Cluster telemetry pins: the ``telemetry`` mini-protocol, the unified
scrape, trace propagation, and scrape invisibility.

Four contracts are pinned here:

- **every actor answers** ``telemetry`` on every driver — the method is
  intercepted at the one shared dispatch point, so actors need no code;
- **scrapes are invisible**: telemetry travels as a control message that
  neither side counts, so ``server_stats`` / ``workload_stats`` read the
  same before and after any number of scrapes (tests that assert exact
  wire-RPC counts cannot be perturbed by observability);
- **reconciliation**: per-actor histogram sample totals equal the
  ``sub_calls`` wire counter — the histograms and the counters watch the
  same dispatch point, so a mismatch means lost samples;
- **traces propagate**: a caller-opened trace id rides the RPC envelope
  to remote service threads and shows up in their slow-span rings
  (threshold forced to 0 so every sub-call qualifies).
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.deploy.process import build_process
from repro.deploy.simulated import SimDeployment
from repro.deploy.tcp import build_tcp
from repro.deploy.threaded import build_threaded
from repro.net.sansio import Call, dispatch_call
from repro.obs.hist import LatencyHistogram
from repro.obs.logconfig import configure_logging
from repro.obs.metrics import METRICS_SCHEMA, reconcile, render_metrics
from repro.obs.telemetry import (
    SLOW_RING_SIZE,
    SNAPSHOT_SCHEMA,
    ActorTelemetry,
    telemetry_of,
)
from repro.obs.trace import current_trace, end_trace, start_trace
from repro.util.sizes import KB, MB

TOTAL = 1 * MB
PAGE = 4 * KB


def run_workload(dep, n_writes: int = 3) -> str:
    """A small write/read workload; returns the blob id."""
    client = dep.client("telemetry-test")
    blob = client.alloc(TOTAL, PAGE)
    for i in range(n_writes):
        res = client.write(blob, bytes([i + 1]) * (2 * PAGE), i * PAGE)
        client.read_bytes(blob, i * PAGE, PAGE, version=res.version)
    return blob


# ---------------------------------------------------------------------------
# the mini-protocol itself (dispatch-level)
# ---------------------------------------------------------------------------


class EchoActor:
    """Minimal actor; would raise on any unknown method."""

    def handle(self, method: str, args: tuple):
        if method != "echo":
            raise AssertionError(f"actor saw unexpected method {method!r}")
        return args


def test_every_actor_answers_telemetry_without_code():
    actor = EchoActor()
    assert dispatch_call(actor, Call("x", "echo", (1,))) == (1,)
    snap = dispatch_call(actor, Call("x", "telemetry"))
    assert snap["schema"] == SNAPSHOT_SCHEMA
    assert set(snap["methods"]) == {"echo"}


def test_telemetry_calls_are_not_recorded_as_samples():
    actor = EchoActor()
    dispatch_call(actor, Call("x", "echo"))
    for _ in range(5):
        dispatch_call(actor, Call("x", "telemetry"))
    snap = dispatch_call(actor, Call("x", "telemetry"))
    assert "telemetry" not in snap["methods"]
    hist = LatencyHistogram.from_wire(snap["methods"]["echo"])
    assert hist.count == 1


def test_handler_errors_are_counted_and_recorded():
    actor = EchoActor()
    result = dispatch_call(actor, Call("x", "boom"))
    from repro.errors import RemoteError

    assert isinstance(result, RemoteError)
    snap = telemetry_of(actor).snapshot()
    assert snap["errors"] == {"boom": 1}
    assert LatencyHistogram.from_wire(snap["methods"]["boom"]).count == 1


def test_slotted_actor_degrades_to_disabled_telemetry():
    class Slotted:
        __slots__ = ()

        def handle(self, method, args):
            return None

    actor = Slotted()
    assert dispatch_call(actor, Call("x", "anything")) is None
    snap = dispatch_call(actor, Call("x", "telemetry"))
    assert snap["methods"] == {}  # recording dropped, not a crash


def test_slow_ring_wraps_and_counts_overflow():
    tele = ActorTelemetry(slow_threshold_ns=0)
    for i in range(SLOW_RING_SIZE + 10):
        tele.record(f"m{i}", service_ns=1, error=False)
    assert len(tele.slow) == SLOW_RING_SIZE
    assert tele.slow_seen == SLOW_RING_SIZE + 10
    # the oldest spans were overwritten in place
    methods = {span[1] for span in tele.slow}
    assert "m0" not in methods and f"m{SLOW_RING_SIZE + 9}" in methods


# ---------------------------------------------------------------------------
# the unified scrape across deployments
# ---------------------------------------------------------------------------


def assert_metrics_shape(metrics: dict, source: str) -> None:
    assert metrics["schema"] == METRICS_SCHEMA
    assert metrics["source"] == source
    assert metrics["actors"]
    busy = [e for e in metrics["actors"].values() if e["methods"]]
    assert busy, "no actor recorded any method histogram"
    for entry in busy:
        for row in entry["methods"].values():
            assert row["count"] >= 1
            assert 0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["p99_ms"] <= row["max_ms"] * (1 + 1 / 16)
    json.dumps(metrics)  # the whole document must be JSON-safe


def test_inproc_metrics_document(dep):
    run_workload(dep)
    metrics = dep.metrics()
    assert_metrics_shape(metrics, "inproc")
    # no wire layer -> no counters, and reconcile() skips such actors
    assert all(e["sub_calls"] is None for e in metrics["actors"].values())
    assert reconcile(metrics) == []
    assert "cluster metrics (inproc):" in render_metrics(metrics)


def test_threaded_metrics_reconcile(threaded_dep):
    run_workload(threaded_dep)
    metrics = threaded_dep.metrics()
    assert_metrics_shape(metrics, "threaded")
    assert reconcile(metrics) == []


def test_simulated_metrics_include_node_utilization():
    dep = SimDeployment(DeploymentSpec(n_data=2, n_meta=2, n_clients=1))
    blob = dep.alloc_blob(TOTAL, PAGE)
    sim_client = dep.client(0)
    sim_client.write_virtual(blob, 0, 8 * PAGE)
    sim_client.read_virtual(blob, 0, 8 * PAGE)
    metrics = dep.metrics()
    assert_metrics_shape(metrics, "simulated")
    assert metrics["nodes"], "simulated scrape must re-export utilization"
    for entry in metrics["nodes"].values():
        assert set(entry) == {"role", "cpu", "tx", "rx"}
    assert "node utilization (simulated):" in render_metrics(metrics)


def test_process_metrics_reconcile():
    with build_process(DeploymentSpec(n_data=2, n_meta=2)) as dep:
        run_workload(dep, n_writes=2)
        metrics = dep.metrics()
        assert_metrics_shape(metrics, "process")
        assert reconcile(metrics) == []
        # worker actors report real wire counters over the scrape control
        remote = metrics["actors"]["data/0"]
        assert remote["wire_rpcs"] >= 1
        assert remote["sub_calls"] == remote["calls"]


# ---------------------------------------------------------------------------
# scrape invisibility (controls are never counted)
# ---------------------------------------------------------------------------


def test_scrape_does_not_perturb_server_stats(threaded_dep):
    run_workload(threaded_dep)
    before = threaded_dep.driver.server_stats()
    for _ in range(3):
        threaded_dep.metrics()
    assert threaded_dep.driver.server_stats() == before
    # and telemetry never shows up as a served method either
    for entry in threaded_dep.metrics()["actors"].values():
        assert "telemetry" not in entry["methods"]


def test_scrape_is_idempotent_on_quiescent_cluster(threaded_dep):
    run_workload(threaded_dep)
    first = threaded_dep.metrics()
    second = threaded_dep.metrics()
    assert first == second


# ---------------------------------------------------------------------------
# trace propagation + caller RTT
# ---------------------------------------------------------------------------


def test_trace_rides_to_service_threads(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_SLOW_MS", "0")  # every sub-call is "slow"
    with build_threaded(DeploymentSpec(n_data=2, n_meta=2)) as dep:
        client = dep.client("tracer")
        blob = client.alloc(TOTAL, PAGE)
        trace_id = start_trace()
        try:
            client.write(blob, b"\x01" * (2 * PAGE), 0)
        finally:
            end_trace()
        assert current_trace() is None
        traced = {
            span["trace"]
            for entry in dep.metrics()["actors"].values()
            for span in entry["slow"]
        }
        assert trace_id in traced
        # post-trace traffic must not inherit the closed trace
        client.read_bytes(blob, 0, PAGE)
        late = [
            span
            for entry in dep.metrics()["actors"].values()
            for span in entry["slow"]
            if span["method"] == "data.get_page"
        ]
        assert late and any(s["trace"] is None for s in late)


def test_caller_rtt_histograms_cover_destinations(threaded_dep):
    run_workload(threaded_dep)
    rtt = threaded_dep.driver.caller_rtt()
    assert {"vm", "data", "meta"} <= set(rtt)
    for hist in rtt.values():
        assert hist.count >= 1
        assert hist.quantile(0.99) >= hist.quantile(0.50)


# ---------------------------------------------------------------------------
# live TCP cluster: CLI scrape, reconciliation, workload_stats immunity
# ---------------------------------------------------------------------------


def test_tcp_scrape_cli_and_workload_stats(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_OBS_SLOW_MS", "0")  # agents inherit os.environ
    from repro.tools.metrics import main as metrics_main

    with build_tcp(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0)) as dep:
        client = dep.client("tcp-tracer")
        blob = client.alloc(TOTAL, PAGE)
        trace_id = start_trace()
        try:
            client.write(blob, b"\x02" * (2 * PAGE), 0)
        finally:
            end_trace()

        workload_before = dep.workload_stats()
        metrics = dep.metrics()
        assert_metrics_shape(metrics, "tcp")
        assert reconcile(metrics) == []
        # the trace id crossed real sockets into agent processes, with
        # the request size captured from the frame
        remote_spans = [
            span
            for name, entry in metrics["actors"].items()
            if name.startswith(("data/", "meta/"))
            for span in entry["slow"]
        ]
        assert any(s["trace"] == trace_id for s in remote_spans)
        assert any(s["bytes"] > 0 for s in remote_spans)

        # the CLI scrapes the same live cluster and reconciles clean
        endpoints = tmp_path / "cluster.json"
        endpoints.write_text(json.dumps(dep.cluster_map.to_spec()))
        rc = metrics_main(["--endpoints", f"@{endpoints}", "--json", "--check"])
        captured = capsys.readouterr()
        assert rc == 0
        doc = json.loads(captured.out)
        assert doc["schema"] == METRICS_SCHEMA
        assert "reconcile: OK" in captured.err

        # neither our scrape nor the CLI's moved a single counter,
        # and the cluster is still serving
        assert dep.workload_stats() == workload_before
        assert client.read_bytes(blob, 0, PAGE) == b"\x02" * PAGE


# ---------------------------------------------------------------------------
# logging hierarchy (satellite: repro.* loggers, one idempotent handler)
# ---------------------------------------------------------------------------


@pytest.fixture
def clean_repro_logger():
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level)
    root.handlers = [h for h in root.handlers if not getattr(h, "_repro_obs_handler", False)]
    yield root
    root.handlers, root.level = saved


def test_configure_logging_is_idempotent(clean_repro_logger):
    first = configure_logging(logging.INFO)
    second = configure_logging(logging.DEBUG)
    assert first is second is clean_repro_logger
    marked = [
        h for h in clean_repro_logger.handlers
        if getattr(h, "_repro_obs_handler", False)
    ]
    assert len(marked) == 1
    assert clean_repro_logger.level == logging.DEBUG


def test_slow_spans_emit_debug_log_lines(clean_repro_logger, capsys):
    import sys

    configure_logging(logging.DEBUG, stream=sys.stderr)
    tele = ActorTelemetry(slow_threshold_ns=0)
    tele.record("data.get_page", service_ns=42, error=False)
    err = capsys.readouterr().err
    assert "DEBUG repro.obs: slow span: method=data.get_page" in err
    assert capsys.readouterr().out == ""  # stdout untouched (READY line)
