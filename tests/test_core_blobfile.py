"""File-like blob access."""

import io

import pytest

from repro.core.blobfile import BlobFile, open_blob
from repro.errors import ReproError
from tests.conftest import SMALL_PAGE, SMALL_TOTAL, pages


class TestReadSide:
    def test_sequential_reads(self, client, blob):
        client.write(blob, pages(2, b"ab"), 0)
        with open_blob(client, blob) as f:
            assert f.read(4) == b"abab"
            assert f.tell() == 4
            assert f.read(2) == b"ab"

    def test_read_all_remaining(self, client, blob):
        client.write(blob, pages(1, b"z"), 0)
        f = open_blob(client, blob)
        f.seek(SMALL_TOTAL - 8)
        assert f.read() == bytes(8)
        assert f.read() == b""  # at EOF

    def test_seek_whence_modes(self, client, blob):
        f = open_blob(client, blob)
        assert f.seek(10) == 10
        assert f.seek(5, io.SEEK_CUR) == 15
        assert f.seek(-4, io.SEEK_END) == SMALL_TOTAL - 4
        with pytest.raises(ValueError):
            f.seek(-1)
        with pytest.raises(ValueError):
            f.seek(0, 7)

    def test_readinto(self, client, blob):
        client.write(blob, pages(1, b"q"), 0)
        f = open_blob(client, blob)
        buf = bytearray(6)
        assert f.readinto(buf) == 6
        assert bytes(buf) == b"qqqqqq"

    def test_pinned_snapshot_semantics(self, client, blob):
        client.write(blob, pages(1, b"1"), 0)
        f = open_blob(client, blob)  # pins v1
        client.write(blob, pages(1, b"2"), 0)
        assert f.read(4) == b"1111"  # still v1
        assert f.version == 1

    def test_explicit_version_pin(self, client, blob):
        client.write(blob, pages(1, b"1"), 0)
        client.write(blob, pages(1, b"2"), 0)
        f = open_blob(client, blob, version=1)
        assert f.read(2) == b"11"

    def test_read_only_rejects_write(self, client, blob):
        f = open_blob(client, blob)
        with pytest.raises(ReproError):
            f.write(b"nope")

    def test_size(self, client, blob):
        assert open_blob(client, blob).size == SMALL_TOTAL


class TestWriteSide:
    def test_aligned_flush_single_version(self, client, blob):
        with open_blob(client, blob, mode="w") as f:
            f.write(pages(2, b"w"))
            version = f.flush()
        assert version == 1
        assert client.read_bytes(blob, 0, 4) == b"wwww"

    def test_sequential_writes_coalesce(self, client, blob):
        with open_blob(client, blob, mode="w") as f:
            for _ in range(4):
                f.write(pages(1, b"c"))
            assert f.flush() == 1  # one coalesced WRITE, one version
        assert client.latest(blob) == 1
        assert client.read_bytes(blob, 0, 4 * SMALL_PAGE) == pages(4, b"c")

    def test_unaligned_flush_uses_rmw(self, client, blob):
        client.write(blob, pages(1, b"base"), 0)
        with open_blob(client, blob, mode="w") as f:
            f.seek(5)
            f.write(b"HELLO")
            f.flush()
        base = pages(1, b"base")
        expected = base[:5] + b"HELLO" + base[10:14]
        assert client.read_bytes(blob, 0, 14) == expected

    def test_close_flushes(self, client, blob):
        f = open_blob(client, blob, mode="w")
        f.write(pages(1, b"f"))
        f.close()
        assert client.read_bytes(blob, 0, 2) == b"ff"
        assert f.closed

    def test_sparse_writes_multiple_runs(self, client, blob):
        with open_blob(client, blob, mode="w") as f:
            f.write(pages(1, b"a"))
            f.seek(8 * SMALL_PAGE)
            f.write(pages(1, b"b"))
            f.flush()
        assert client.read_bytes(blob, 0, 2) == b"aa"
        assert client.read_bytes(blob, 8 * SMALL_PAGE, 2) == b"bb"
        assert client.read_bytes(blob, 4 * SMALL_PAGE, 2) == bytes(2)

    def test_overlapping_buffered_writes_last_wins(self, client, blob):
        with open_blob(client, blob, mode="w") as f:
            f.write(pages(1, b"x"))
            f.seek(0)
            f.write(b"YY")
            f.flush()
        assert client.read_bytes(blob, 0, 4) == b"YY" + b"xx"

    def test_write_past_end_rejected(self, client, blob):
        f = open_blob(client, blob, mode="w")
        f.seek(SMALL_TOTAL - 1)
        with pytest.raises(ReproError):
            f.write(b"ab")

    def test_read_with_pending_writes_rejected(self, client, blob):
        f = open_blob(client, blob, mode="w")
        f.write(b"x")
        with pytest.raises(ReproError):
            f.read(1)

    def test_flush_empty_returns_none(self, client, blob):
        assert open_blob(client, blob, mode="w").flush() is None

    def test_closed_file_rejects_io(self, client, blob):
        f = open_blob(client, blob)
        f.close()
        with pytest.raises(ReproError):
            f.read(1)

    def test_mode_validation(self, client, blob):
        with pytest.raises(ValueError):
            BlobFile(client, blob, mode="a")
        with pytest.raises(ValueError):
            BlobFile(client, blob, mode="w", version=3)

    def test_repr(self, client, blob):
        assert "mode=r" in repr(open_blob(client, blob))
