"""Batched threaded transport: counter bounds and concurrency stress.

The acceptance bound for the batched transport: one wire RPC to a
destination costs exactly **one queue submission**, and a whole batch
costs **at most one completion wakeup** (only the last destination group
to finish notifies the waiting caller). `ThreadedDriver.transport_stats`
counts both from the caller side; `server_stats` counts served wire RPCs
from the service side — their equality is what proves no hidden per-call
round-trips exist.

The stress test runs N writer x M reader client threads against actors
with injected seeded service delays (which force deep interleavings and
keep many batches in flight), bounded by explicit wall-clock deadlines so
a livelock fails the test instead of hanging CI.
"""

from __future__ import annotations

import random
import threading
import time

from repro.core.client import BlobClient
from repro.core.config import DeploymentSpec
from repro.deploy.threaded import build_threaded
from repro.metadata.provider import MetadataProvider
from repro.metadata.router import StaticRouter
from repro.net.sansio import Batch, Call
from repro.net.threaded import ThreadedDriver
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.util.sizes import KB, MB
from repro.version.manager import VersionManager

PAGE = 4 * KB
TOTAL = 1 * MB


# ---------------------------------------------------------------------------
# transport counters
# ---------------------------------------------------------------------------


class TestTransportCounters:
    def test_single_batch_costs_one_submission_per_destination(self):
        """10 sub-calls to 2 destinations: exactly 2 queue submissions
        (one aggregated inbox item each) and 1 completion wakeup."""
        with ThreadedDriver() as driver:
            for i in range(2):
                driver.register(("data", i), DataProvider(i))

            def proto():
                results = yield Batch(
                    [Call(("data", i % 2), "data.stats") for i in range(10)]
                )
                return results

            results = driver.run(proto())
            assert len(results) == 10
            stats = driver.transport_stats()
            assert stats["batches"] == 1
            assert stats["queue_submissions"] == 2
            assert stats["completion_wakeups"] <= 1
            served = driver.server_stats()
            assert served[("data", 0)] == (1, 5)
            assert served[("data", 1)] == (1, 5)

    def test_wire_rpc_bound_for_a_full_write_read_workload(self):
        """Across a real protocol mix, caller-side submissions == served
        wire RPCs (nothing is enqueued per sub-call) and wakeups never
        exceed one per batch."""
        with build_threaded(DeploymentSpec(n_data=4, n_meta=4)) as dep:
            client = dep.client("counter")
            blob = client.alloc(TOTAL, PAGE)
            client.write(blob, bytes(8 * PAGE), 0)
            client.read_bytes(blob, 0, 8 * PAGE)
            stats = dep.transport_stats()
            served = dep.driver.server_stats()
            total_rpcs = sum(r for r, _ in served.values())
            total_calls = sum(c for _, c in served.values())
            assert stats["queue_submissions"] == total_rpcs
            assert stats["completion_wakeups"] <= stats["batches"]
            # aggregation really happened: the 8 page puts fanned out to 4
            # providers as 4 wire RPCs, not 8
            assert total_calls > total_rpcs

    def test_stale_group_completion_cannot_corrupt_next_batch(self):
        """If a caller unwinds out of a batch (e.g. KeyboardInterrupt)
        with wire groups still queued, their late completions carry a
        stale generation and must not decrement the next batch's
        countdown."""
        from repro.net.threaded import _BatchLatch

        latch = _BatchLatch()
        gen1 = latch.begin(2)
        latch.group_done(gen1)  # one of two groups drains...
        # ...then the caller unwinds without waiting and starts a new batch
        gen2 = latch.begin(1)
        latch.group_done(gen1)  # stale straggler from the aborted batch
        assert latch._pending == 1, "stale completion corrupted the countdown"
        latch.group_done(gen2)
        latch.wait()  # must return immediately

    def test_retired_caller_threads_fold_into_stats(self):
        """spawn-per-op usage must not grow the latch registry without
        bound, and counters of dead threads must survive retirement."""
        with build_threaded(DeploymentSpec(n_data=2, n_meta=2)) as dep:
            client = dep.client("seed")
            blob = client.alloc(TOTAL, PAGE)

            def one_write(i: int) -> None:
                dep.client(f"w{i}").write(blob, bytes(PAGE), i * PAGE)

            for i in range(6):  # six short-lived caller threads, in turn
                t = threading.Thread(target=one_write, args=(i,))
                t.start()
                t.join(timeout=60)
                assert not t.is_alive()
            # a fresh caller registering prunes every dead thread's latch
            client.read_bytes(blob, 0, PAGE)
            with dep.driver._lock:
                alive = len(dep.driver._latches)
            assert alive <= 2  # this thread (+ at most one racing stray)
            stats = dep.transport_stats()
            served = dep.driver.server_stats()
            assert stats["queue_submissions"] == sum(
                r for r, _ in served.values()
            ), "retired threads' submissions were lost"

    def test_counters_aggregate_across_caller_threads(self):
        with build_threaded(DeploymentSpec(n_data=2, n_meta=2)) as dep:
            seed = dep.client("seed")
            blob = seed.alloc(TOTAL, PAGE)
            before = dep.transport_stats()

            def writer(i: int) -> None:
                client = dep.client(f"w{i}")
                client.write(blob, bytes(PAGE), i * PAGE)

            threads = [
                threading.Thread(target=writer, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive()
            stats = dep.transport_stats()
            served = dep.driver.server_stats()
            assert stats["queue_submissions"] == sum(r for r, _ in served.values())
            assert stats["batches"] > before["batches"]
            assert stats["completion_wakeups"] <= stats["batches"]


# ---------------------------------------------------------------------------
# stress: N writers x M readers with injected provider delays
# ---------------------------------------------------------------------------


class DelayedActor:
    """Actor wrapper injecting a seeded service delay before dispatch.

    Delays are tiny but nonzero, which forces real interleavings: many
    caller batches are simultaneously waiting on service queues, readers
    overtake writers, and completion wakeups land while other groups are
    still in flight."""

    def __init__(self, inner, seed: int, max_delay: float = 0.002) -> None:
        self.inner = inner
        self.rng = random.Random(seed)
        self.max_delay = max_delay
        self.calls = 0

    def handle(self, method: str, args: tuple):
        # only the actor's own service thread touches self.rng: no locking
        self.calls += 1
        delay = self.rng.random() * self.max_delay
        if delay > 0:
            time.sleep(delay)
        return self.inner.handle(method, args)


def build_delayed_deployment(n_data: int, n_meta: int, seed: int):
    """A threaded deployment whose every actor has injected delays."""
    spec = DeploymentSpec(n_data=n_data, n_meta=n_meta)
    vm = VersionManager()
    pm = ProviderManager(make_strategy(spec.strategy), replication=1)
    driver = ThreadedDriver()
    driver.register("vm", DelayedActor(vm, seed ^ 1))
    driver.register("pm", DelayedActor(pm, seed ^ 2))
    data = {}
    for i in range(n_data):
        dp = DataProvider(i)
        data[i] = dp
        pm.register(i)
        driver.register(("data", i), DelayedActor(dp, seed ^ (10 + i)))
    meta = {}
    for i in range(n_meta):
        mp = MetadataProvider(i)
        meta[i] = mp
        driver.register(("meta", i), DelayedActor(mp, seed ^ (100 + i)))
    router = StaticRouter(sorted(meta), replication=1)
    return driver, router, vm, data, meta


class TestStressWithInjectedDelays:
    N_WRITERS = 4
    N_READERS = 3
    WRITES_EACH = 6
    DEADLINE = 90.0  # generous wall-clock bound; a hang fails, not stalls CI

    def test_writers_and_readers_under_delay_injection(self):
        driver, router, vm, data, meta = build_delayed_deployment(
            n_data=4, n_meta=3, seed=0x57E55
        )
        with driver:
            alloc_client = BlobClient(driver, router, name="alloc")
            blob = alloc_client.alloc(TOTAL, PAGE)
            npages = 4  # each writer rewrites its whole 4-page range per pass
            errors: list[str] = []
            err_lock = threading.Lock()
            writers_done = threading.Event()

            def fail(msg: str) -> None:
                with err_lock:
                    errors.append(msg)

            def fill(w: int, k: int) -> bytes:
                return bytes([(w * 40 + k) % 251 + 1]) * (npages * PAGE)

            def writer(w: int) -> None:
                client = BlobClient(driver, router, name=f"w{w}")
                base = w * npages * PAGE
                for k in range(self.WRITES_EACH):
                    res = client.write(blob, fill(w, k), base)
                    if res.version < 1:
                        fail(f"w{w}: bad version {res.version}")

            def reader(r: int) -> None:
                client = BlobClient(driver, router, name=f"r{r}")
                rng = random.Random(0xBEEF ^ r)
                while not writers_done.is_set():
                    w = rng.randrange(self.N_WRITERS)
                    base = w * npages * PAGE
                    got = client.read_bytes(blob, base, npages * PAGE)
                    # atomicity: a range is always exactly one writer pass
                    # (or untouched), never a torn mixture
                    legal = [bytes(npages * PAGE)] + [
                        fill(w, k) for k in range(self.WRITES_EACH)
                    ]
                    if got not in legal:
                        fail(f"r{r}: torn read of writer {w}'s range")

            threads = [
                threading.Thread(target=writer, args=(w,), name=f"writer-{w}")
                for w in range(self.N_WRITERS)
            ] + [
                threading.Thread(target=reader, args=(r,), name=f"reader-{r}")
                for r in range(self.N_READERS)
            ]
            start = time.monotonic()
            for t in threads:
                t.start()
            # writers finish first; then release the readers
            stalled: list[str] = []
            for t in threads[: self.N_WRITERS]:
                t.join(timeout=max(0.1, self.DEADLINE - (time.monotonic() - start)))
                if t.is_alive():
                    stalled.append(t.name)
            writers_done.set()
            for t in threads[self.N_WRITERS :]:
                t.join(timeout=max(0.1, self.DEADLINE - (time.monotonic() - start)))
                if t.is_alive():
                    stalled.append(t.name)
            assert not stalled, f"threads stalled past deadline: {stalled}"
            assert errors == []

            # liveness + bookkeeping after the storm
            total = self.N_WRITERS * self.WRITES_EACH
            assert vm.get_latest(blob) == total
            stats = driver.transport_stats()
            served = driver.server_stats()
            assert stats["queue_submissions"] == sum(r for r, _ in served.values())
            assert stats["completion_wakeups"] <= stats["batches"]
            # final state: every range holds its writer's last pass
            check = BlobClient(driver, router, name="check")
            for w in range(self.N_WRITERS):
                got = check.read_bytes(blob, w * npages * PAGE, npages * PAGE)
                assert got == fill(w, self.WRITES_EACH - 1)
