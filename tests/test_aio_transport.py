"""Aio-transport pins: the tcp-transport failure-mode suite replayed
through the event-loop driver, plus the concurrency pins only an event
loop can express.

Failure-mode parity with the TCP transport is the point: every pin in
``tests/test_tcp_transport.py`` that describes *transport semantics*
(submission counts, typed errors over the wire, killed-peer fail-fast
drain, replica fail-over, clean shutdown exit codes, reconnect to a
restarted agent) has its mirror here, driven by the single-threaded
asyncio driver instead of per-peer thread pairs. On top of that, the
event loop adds what threads cannot afford: the 1k-coroutine stress run
— one agent SIGKILLed and restarted mid-run, every client finishing or
failing *typed*, with asyncio debug mode and warning capture proving no
task is orphaned and no coroutine left unawaited.

Everything here is wall-clock bounded: every blocking wait carries a
timeout, and the module-level watchdog (conftest.py, enabled via
``REPRO_TEST_TIMEOUT``) hard-kills a stalled run.
"""

from __future__ import annotations

import asyncio
import threading
import time
import warnings

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.tcp import build_tcp
from repro.errors import ConfigError, RemoteError, ReproError, VersionNotPublished
from repro.net.aio import AioDriver, trace_async_operation
from repro.net.node import NodeAgent
from repro.net.sansio import Batch, Call
from repro.obs.spans import CALLER
from repro.providers.data_provider import DataProvider
from repro.util.sizes import KB, MB

TOTAL = 1 * MB
PAGE = 4 * KB

JOIN_TIMEOUT = 60.0


@pytest.fixture
def adep():
    dep = build_tcp(
        DeploymentSpec(n_data=3, n_meta=2, cache_capacity=0), client="aio"
    )
    yield dep
    dep.close()


def fill(i: int) -> bytes:
    return bytes([i % 251 + 1]) * PAGE


def _call_proto(address, method, args=()):
    def proto():
        (result,) = yield Batch([Call(address, method, args)])
        return result

    return proto()


# ---------------------------------------------------------------------------
# functional sanity + submission counts (tcp-transport parity)
# ---------------------------------------------------------------------------


def test_serial_workload_and_submission_counts(adep):
    """One queue submission (= one TCP frame for remote actors) per
    destination per batch — the exact bound the threaded/process/tcp
    drivers pin, now through the event loop."""
    client = adep.client("pin")
    blob = client.alloc(TOTAL, PAGE)
    states = {}
    for step in range(6):
        data = fill(step) * 2
        offset = (step * 2 * PAGE) % TOTAL
        res = client.write(blob, data, offset)
        states[res.version] = data
        assert client.read_bytes(blob, offset, len(data), version=res.version) == data

    stats = adep.driver.server_stats()
    served_rpcs = sum(r for r, _ in stats.values())
    served_calls = sum(c for _, c in stats.values())
    transport = adep.transport_stats()
    assert transport["queue_submissions"] == served_rpcs
    assert transport["completion_wakeups"] <= transport["batches"]
    assert served_calls >= served_rpcs
    assert adep.total_pages_stored() == sum(len(d) // PAGE for d in states.values())


def test_async_clients_interleave_on_one_loop(adep):
    """Concurrent AsyncBlobClients over disjoint ranges: coroutine
    multiplexing is real concurrency — the writes interleave on the wire
    but every program keeps read-your-writes."""
    setup = adep.client("setup")
    blob = setup.alloc(TOTAL, PAGE)
    n_clients, writes_each = 8, 3
    span = TOTAL // n_clients // PAGE * PAGE

    async def program(c):
        own = adep.async_client(f"c{c}")
        lo = c * span
        for k in range(writes_each):
            data = fill(c * 16 + k) * 2
            offset = lo + (k * 2 * PAGE) % span
            res = await own.write(blob, data, offset)
            if res.published:
                got = await own.read_bytes(blob, offset, len(data), version=res.version)
                assert got == data
        return c

    async def main():
        return await asyncio.gather(*(program(c) for c in range(n_clients)))

    results = adep.driver.run_async(main(), timeout=JOIN_TIMEOUT)
    assert sorted(results) == list(range(n_clients))
    assert adep.vm.get_latest(blob) == n_clients * writes_each


def test_unknown_address_raises_before_any_submission(adep):
    def proto():
        yield Batch([Call(("data", 99), "data.stats", ())])

    before = adep.transport_stats()["queue_submissions"]
    with pytest.raises(KeyError):
        adep.driver.run(proto())
    assert adep.transport_stats()["queue_submissions"] == before


def test_semantic_errors_cross_the_async_path_typed(adep):
    """A VersionNotPublished raised by a remote actor must come back out
    of an *awaited* read with its precise type and payload — the async
    mirror of the tcp-transport typed-error pin."""
    sync_client = adep.client("err")
    blob = sync_client.alloc(TOTAL, PAGE)

    async def main():
        client = adep.async_client("aerr")
        with pytest.raises(VersionNotPublished) as exc_info:
            await client.read_bytes(blob, 0, PAGE, version=5)
        return exc_info.value

    error = adep.driver.run_async(main(), timeout=JOIN_TIMEOUT)
    assert error.requested == 5


def test_traced_async_op_exports_parented_spans(adep):
    """Span parenting over the async path: rpc spans recorded by the
    event loop must parent to the coroutine's op span (ContextVar trace
    propagation), and caller RTTs must fold into the unified scrape."""
    client = adep.client("spans")
    blob = client.alloc(TOTAL, PAGE)
    CALLER.clear()

    async def main():
        aclient = adep.async_client("traced")
        async with trace_async_operation("aio-write") as tid:
            await aclient.write(blob, fill(1), 0)
        return tid

    tid = adep.driver.run_async(main(), timeout=JOIN_TIMEOUT)
    spans = [s for s in CALLER.snapshot() if s["trace"] == tid]
    ops = [s for s in spans if s["kind"] == "op"]
    rpcs = [s for s in spans if s["kind"] == "rpc"]
    assert len(ops) == 1 and ops[0]["name"] == "aio-write"
    assert rpcs, "no rpc spans recorded for the traced async op"
    assert all(s["parent"] == ops[0]["span"] for s in rpcs)
    assert all(
        ops[0]["start_ns"] <= s["start_ns"] <= s["end_ns"] <= ops[0]["end_ns"]
        for s in rpcs
    )
    # the PR 8 unified scrape picks up the aio driver's RTT histograms
    doc = adep.metrics()
    assert "caller_rtt" in doc and doc["caller_rtt"], "caller RTTs missing"


# ---------------------------------------------------------------------------
# shutdown
# ---------------------------------------------------------------------------


def test_clean_shutdown_exits_all_agents():
    dep = build_tcp(DeploymentSpec(n_data=2, n_meta=2), client="aio")
    client = dep.client("s")
    blob = client.alloc(TOTAL, PAGE)
    client.write(blob, fill(1), 0)
    dep.close()
    codes = dep.agent_exitcodes()
    assert len(codes) == 2  # colocated: agent i hosts data/i + meta/i
    assert all(code == 0 for code in codes), codes
    # closing twice is harmless
    dep.close()


def test_driver_rejects_registration_after_close():
    driver = AioDriver()
    driver.close()
    with pytest.raises(RuntimeError):
        driver.register_remote(("data", 0), "127.0.0.1:1")
    with pytest.raises(RuntimeError):
        driver.register(("data", 0), DataProvider(0))


def test_build_tcp_rejects_unknown_client():
    with pytest.raises(ConfigError):
        build_tcp(DeploymentSpec(n_data=1, n_meta=1), client="curio")


def test_async_client_requires_aio_driver():
    dep = build_tcp(DeploymentSpec(n_data=1, n_meta=1))
    try:
        with pytest.raises(ConfigError):
            dep.async_client()
    finally:
        dep.close()


# ---------------------------------------------------------------------------
# crash handling: killed agent -> RemoteError -> replica fail-over
# ---------------------------------------------------------------------------


def test_killed_agent_raises_remote_error(adep):
    client = adep.client("kill")
    blob = client.alloc(TOTAL, PAGE)
    res = client.write(blob, fill(9), 0)
    holders = [
        pid for pid, proxy in adep.data.items()
        if any(True for _ in proxy.iter_pages(blob))
    ]
    assert len(holders) == 1
    victim = holders[0]
    adep.kill_agent(adep.agent_index_for(("data", victim)))
    with pytest.raises(RemoteError) as exc_info:
        client.read_bytes(blob, 0, PAGE, version=res.version)
    assert "PeerUnavailable" in str(exc_info.value)
    # vm is alive in-parent; the surviving metadata replicas still serve
    assert adep.vm.get_latest(blob) == 1


def test_killed_agent_fails_over_to_replica():
    """The paper's replica fail-over through the async path: with
    replication=2 an awaited read must survive one agent's SIGKILL via
    the ``allow_error`` retry — no thread pool involved."""
    dep = build_tcp(
        DeploymentSpec(n_data=3, n_meta=2, replication=2, cache_capacity=0),
        client="aio",
    )
    try:
        client = dep.client("failover")
        blob = client.alloc(TOTAL, PAGE)
        data = fill(3) + fill(4)
        res = client.write(blob, data, 0)
        victim = next(
            pid for pid, proxy in dep.data.items()
            if any(True for _ in proxy.iter_pages(blob))
        )
        dep.kill_agent(dep.agent_index_for(("data", victim)))

        async def main():
            aclient = dep.async_client("afailover")
            return await aclient.read_bytes(blob, 0, len(data), version=res.version)

        assert dep.driver.run_async(main(), timeout=JOIN_TIMEOUT) == data
    finally:
        dep.close()


def test_future_calls_fail_fast_after_agent_death():
    """Calls against a dead peer must fail immediately with RemoteError —
    never block behind a redial attempt (fail-over latency)."""
    dep = build_tcp(
        DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0), client="aio"
    )
    try:
        client = dep.client("inflight")
        blob = client.alloc(TOTAL, PAGE)
        client.write(blob, fill(5), 0)
        address = ("data", 0)
        dep.kill_agent(dep.agent_index_for(address))
        # wait (bounded) for the peer to notice the EOF
        deadline = time.monotonic() + 10
        while dep.driver.peer(address).connected and time.monotonic() < deadline:
            time.sleep(0.01)
        for _ in range(3):
            start = time.monotonic()
            with pytest.raises(RemoteError):
                dep.driver.call(address, "data.stats")
            assert time.monotonic() - start < 2.0, "dead-peer call did not fail fast"
    finally:
        dep.close()


def test_in_flight_calls_drain_when_connection_dies():
    """A call already on the wire when the connection dies mid-batch must
    complete with RemoteError, not hang the batch latch — the loop's
    receive-EOF drain, driven deterministically with an actor that blocks
    until the connection is severed under it."""

    class Staller:
        def __init__(self):
            self.entered = threading.Event()
            self.release = threading.Event()

        def handle(self, method, args):
            if method == "stall":
                self.entered.set()
                self.release.wait(JOIN_TIMEOUT)
                return "too late"
            raise ValueError(method)

    staller = Staller()
    agent = NodeAgent({("data", 0): staller})
    agent.start()
    driver = AioDriver()
    try:
        driver.register_remote(("data", 0), agent.endpoint)
        driver.wait_connected()
        fut = driver.spawn(_call_proto(("data", 0), "stall"))
        assert staller.entered.wait(JOIN_TIMEOUT), "call never reached the actor"
        agent.drop_connections()  # sever mid-call: reply can never arrive
        with pytest.raises(RemoteError):
            fut.result(timeout=JOIN_TIMEOUT)
    finally:
        staller.release.set()
        driver.close()
        agent.close()


# ---------------------------------------------------------------------------
# reconnect: service resumes without a client restart
# ---------------------------------------------------------------------------


def test_peer_reconnects_after_agent_restart():
    """While the agent is gone calls drain as RemoteError; once an agent
    serving the same actor name is back on the same endpoint, the
    connector task's backoff redial finds it and service resumes — no
    driver restart, no re-register."""
    agent = NodeAgent({("data", 0): DataProvider(0)})
    agent.start()
    port = agent.endpoint.port
    driver = AioDriver()
    try:
        driver.register_remote(("data", 0), agent.endpoint)
        driver.wait_connected()
        assert driver.call(("data", 0), "data.stats")["pages"] == 0

        agent.close()  # the "host went down" event: listener + conns die
        deadline = time.monotonic() + 10
        while driver.peer(("data", 0)).connected and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(RemoteError):
            driver.call(("data", 0), "data.stats")
        assert driver.peer_status()[("data", 0)] != "connected"

        # restart: a fresh agent, same actor name, same endpoint
        revived = NodeAgent({("data", 0): DataProvider(0)}, port=port)
        revived.start()
        try:
            assert driver.peer(("data", 0)).wait_connected(timeout=15), (
                "connector did not redial the revived agent"
            )
            assert driver.call(("data", 0), "data.stats")["pages"] == 0
            assert driver.peer_status()[("data", 0)] == "connected"
        finally:
            revived.close()
    finally:
        driver.close()
        agent.close()


def test_handshake_reject_for_unknown_actor():
    """An agent must reject a hello for an actor it does not host; the
    peer stays down (fail-fast) instead of looping a broken connection."""
    agent = NodeAgent({("data", 0): DataProvider(0)})
    agent.start()
    driver = AioDriver()
    try:
        driver.register_remote(("data", 7), agent.endpoint)
        assert not driver.peer(("data", 7)).wait_connected(timeout=0.6)
        with pytest.raises(RemoteError) as exc_info:
            driver.call(("data", 7), "data.stats")
        assert "PeerUnavailable" in str(exc_info.value)
    finally:
        driver.close()
        agent.close()


# ---------------------------------------------------------------------------
# the 1k-coroutine stress run: kill + restart mid-run, nothing orphaned
# ---------------------------------------------------------------------------

N_STRESS_CLIENTS = 1000
STRESS_AGENTS = 8


def test_thousand_clients_survive_agent_restart():
    """1000 concurrent client coroutines against an 8-agent loopback
    cluster, one storage agent SIGKILLed after a third of the clients
    finished and restarted before the last third starts. Every client
    must finish or fail *typed* (``ReproError``), and the run must leave
    nothing behind: asyncio debug mode is on, the loop's exception
    handler must stay silent (no destroyed-pending-task reports), and no
    never-awaited-coroutine warning may be emitted."""
    spec = DeploymentSpec(
        n_data=STRESS_AGENTS, n_meta=2, cache_capacity=0, colocate=False
    )
    dep = build_tcp(spec, client="aio")
    loop_trouble: list[str] = []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            dep.driver.set_debug(True)
            dep.driver.loop.call_soon_threadsafe(
                dep.driver.loop.set_exception_handler,
                lambda loop, ctx: loop_trouble.append(ctx.get("message", repr(ctx))),
            )
            setup = dep.client("setup")
            blob = setup.alloc(TOTAL, PAGE)
            npages = TOTAL // PAGE

            finished: list[int] = []  # appended on the loop thread only
            gate_box: dict = {}  # {"event": asyncio.Event created on the loop}

            async def client_program(i):
                if i >= 2 * N_STRESS_CLIENTS // 3:
                    # the last third runs against the *revived* cluster
                    await asyncio.wait_for(
                        gate_box["event"].wait(), JOIN_TIMEOUT
                    )
                client = dep.async_client(f"s{i}")
                data = fill(i)
                offset = (i % npages) * PAGE
                try:
                    res = await client.write(blob, data, offset)
                    got = await client.read_bytes(
                        blob, offset, PAGE, version=res.version
                    )
                    assert got == data
                    return "ok"
                finally:
                    finished.append(i)

            async def main():
                gate_box["event"] = asyncio.Event()
                tasks = [
                    asyncio.create_task(client_program(i), name=f"client-{i}")
                    for i in range(N_STRESS_CLIENTS)
                ]
                return await asyncio.gather(*tasks, return_exceptions=True)

            fut = asyncio.run_coroutine_threadsafe(main(), dep.driver.loop)

            # kill one storage agent after ~a third of the clients are done
            deadline = time.monotonic() + JOIN_TIMEOUT
            while len(finished) < N_STRESS_CLIENTS // 3:
                assert time.monotonic() < deadline, "stress run stalled pre-kill"
                time.sleep(0.01)
            victim = ("data", STRESS_AGENTS - 1)
            idx = dep.agent_index_for(victim)
            dep.kill_agent(idx)
            deadline = time.monotonic() + 15
            while dep.driver.peer(victim).connected and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not dep.driver.peer(victim).connected

            dep.restart_agent(idx)
            assert dep.driver.peer(victim).wait_connected(timeout=15), (
                "connector did not redial the restarted agent"
            )
            dep.driver.loop.call_soon_threadsafe(gate_box["event"].set)

            results = fut.result(timeout=JOIN_TIMEOUT * 2)
            assert len(results) == N_STRESS_CLIENTS
            untyped = [
                r for r in results
                if isinstance(r, BaseException) and not isinstance(r, ReproError)
            ]
            assert untyped == [], f"untyped failures: {untyped[:5]}"
            oks = sum(1 for r in results if r == "ok")
            # the cluster must have kept serving around the dead agent and
            # fully recovered for the post-restart cohort
            assert oks >= N_STRESS_CLIENTS // 2, f"only {oks} clients succeeded"
            assert len(finished) == N_STRESS_CLIENTS
        finally:
            if "event" in gate_box:  # unblock any gated cohort on failure
                dep.driver.loop.call_soon_threadsafe(gate_box["event"].set)
            dep.close()

    assert loop_trouble == [], f"event-loop reports: {loop_trouble[:5]}"
    leaks = [
        str(w.message) for w in caught
        if "never awaited" in str(w.message) or "Task was destroyed" in str(w.message)
    ]
    assert leaks == [], f"leaked coroutines/tasks: {leaks[:5]}"
