"""Size formatting/parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sizes import GB, KB, MB, TB, human_size, parse_size


class TestConstants:
    def test_binary_units(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB


class TestHumanSize:
    def test_exact_units(self):
        assert human_size(64 * KB) == "64 KB"
        assert human_size(1 * TB) == "1 TB"
        assert human_size(8 * MB) == "8 MB"

    def test_bytes(self):
        assert human_size(0) == "0 B"
        assert human_size(512) == "512 B"

    def test_fractional(self):
        assert human_size(1536) == "1.5 KB"
        assert human_size(int(2.5 * MB)) == "2.5 MB"

    def test_negative(self):
        assert human_size(-64 * KB) == "-64 KB"


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("123") == 123
        assert parse_size("123B") == 123

    def test_units(self):
        assert parse_size("64KB") == 64 * KB
        assert parse_size("64 kb") == 64 * KB
        assert parse_size("1.5 MB") == int(1.5 * MB)
        assert parse_size("2G") == 2 * GB
        assert parse_size("1T") == 1 * TB

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots")
        with pytest.raises(ValueError):
            parse_size("")
        with pytest.raises(ValueError):
            parse_size("12 XB")

    @given(st.integers(min_value=0, max_value=1 << 50))
    def test_roundtrip_through_human(self, n):
        """human_size output always parses back within rounding error."""
        text = human_size(n)
        parsed = parse_size(text)
        # one-decimal rendering loses at most 5% of the unit
        assert abs(parsed - n) <= max(64, int(0.05 * n) + 1024)
