"""Cross-driver conformance: inproc vs threaded vs process vs TCP (both
control-plane layouts) vs simulated.

The paper's claim only holds if the *deployment substrate* is
interchangeable: the same sans-io WRITE/READ protocols must produce the
same blobs whether they are dispatched directly (inproc), over real
per-actor service threads (threaded), across per-actor OS processes
through the pickle-frame wire codec (process), over real TCP connections
to node-agent cluster processes (tcp — with the vm/pm in the parent, and
again fully remote with the control plane on its own agents and zero
in-parent actors: the sixth certified configuration), from a
single-threaded asyncio event loop multiplexing every agent socket (aio
— the ninth certified configuration, the high-concurrency client tier),
or on the discrete-event cluster model (simulated). This suite replays
identical seeded workloads — built once as driver-agnostic composite
protocol generators — on all seven deployments and asserts:

- **serial phase** (deterministic, single client): bit-identical page
  contents *and placement*, bit-identical metadata trees (every node
  record), identical version chains (`vm.patches`), and exact
  read-your-writes / snapshot equality against a reference replay model;
- **concurrent phase** (N clients, disjoint ranges; real threads on the
  threaded driver, simulated processes on the simulator, a seeded
  linearization on inproc): identical page dictionaries (page key ->
  bytes, placement-independent), identical leaf page references,
  identical final blob bytes, per-driver prefix-replay serializability
  of every published snapshot, and monotonic read-your-writes inside
  every client program.

Everything here is wall-clock bounded: thread joins carry explicit
timeouts and name the stalled worker instead of hanging the suite.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DeploymentSpec
from repro.core.protocol import (
    alloc_protocol,
    read_protocol,
    split_pages,
    write_protocol,
)
from repro.deploy.inproc import build_inproc
from repro.deploy.process import build_process
from repro.deploy.simulated import SimDeployment
from repro.deploy.tcp import build_tcp
from repro.deploy.threaded import build_threaded
from repro.metadata.tree import TreeGeometry
from repro.util.sizes import KB
from repro.version.manager import LATEST

SEED = 0xC04F
TOTAL = 64 * KB
PAGE = 4 * KB
NPAGES = TOTAL // PAGE

N_SERIAL_OPS = 10
N_CLIENTS = 4
WRITES_PER_CLIENT = 5
PAGES_PER_CLIENT = NPAGES // N_CLIENTS

JOIN_TIMEOUT = 120.0

SPEC = DeploymentSpec(n_data=4, n_meta=3, n_clients=N_CLIENTS, cache_capacity=0)
GEOM = TreeGeometry(TOTAL, PAGE)


# ---------------------------------------------------------------------------
# driver harnesses: uniform "run these composite protocols" facade
# ---------------------------------------------------------------------------


class InprocHarness:
    name = "inproc"

    def __init__(self) -> None:
        self.dep = build_inproc(SPEC)

    def run(self, proto):
        return self.dep.driver.run(proto)

    def run_concurrently(self, factories):
        """Inproc has no concurrency: execute whole programs in a seeded
        linearization order (any serial order is a valid linearization of
        programs touching disjoint ranges)."""
        order = list(range(len(factories)))
        random.Random(SEED ^ 0xABCD).shuffle(order)
        results = [None] * len(factories)
        for i in order:
            results[i] = self.dep.driver.run(factories[i]())
        return results

    def close(self) -> None:
        pass


class ThreadedHarness:
    name = "threaded"

    def __init__(self) -> None:
        self.dep = build_threaded(SPEC)

    def run(self, proto):
        return self.dep.driver.run(proto)

    def run_concurrently(self, factories):
        futures = [self.dep.driver.spawn(f()) for f in factories]
        results, stalled = [], []
        for i, fut in enumerate(futures):
            try:
                results.append(fut.result(timeout=JOIN_TIMEOUT))
            except TimeoutError:
                stalled.append(f"program-{i}")
        assert not stalled, f"{self.name} programs stalled: {stalled}"
        return results

    def close(self) -> None:
        self.dep.close()


class ProcessHarness(ThreadedHarness):
    """Same driver surface as ThreadedHarness (spawn/futures/close), but
    every provider actor is a separate OS process reached through the
    pickle-frame wire codec."""

    name = "process"

    def __init__(self) -> None:
        self.dep = build_process(SPEC)


class TcpHarness(ThreadedHarness):
    """Same driver surface again, but every provider actor lives in a
    node-agent OS process behind a loopback TCP endpoint — the cluster
    deployment, reached through connection handshakes and real sockets
    (vm/pm on parent service threads, the historical tcp layout)."""

    name = "tcp"

    def __init__(self) -> None:
        self.dep = build_tcp(SPEC)


class AioHarness(ThreadedHarness):
    """The asyncio client tier — the ninth certified configuration: the
    same node-agent TCP cluster as ``tcp``, but the caller side is the
    single-threaded event-loop driver (:mod:`repro.net.aio`) instead of
    per-peer thread pairs. Serial protocols go through the sync facade,
    concurrent programs run as coroutines multiplexed on the loop
    (``spawn``), so this certifies both surfaces against the blocking
    drivers' fingerprints bit for bit."""

    name = "aio"

    def __init__(self) -> None:
        self.dep = build_tcp(SPEC, client="aio")


class TcpRemoteHarness(ThreadedHarness):
    """The fully distributed configuration: vm and pm on their own node
    agents too, so *no* actor lives in the client parent — the paper's
    deployment layout in full. Setup generates real wire traffic (data
    agents register their providers with the pm agent, and the builder
    polls until the pm knows the cluster), so the post-build counter
    snapshot in ``stats_base`` is subtracted before comparing workload
    wire-RPC counts with the other drivers."""

    name = "tcp-remote"

    def __init__(self) -> None:
        self.dep = build_tcp(SPEC, control_plane="agents")
        try:
            assert self.dep.in_parent_actors() == []
            self.stats_base = self.dep.stats_base
        except BaseException:  # never leak a cluster of OS processes
            self.dep.close()
            raise


class SimulatedHarness:
    name = "simulated"

    def __init__(self) -> None:
        self.dep = SimDeployment(SPEC)

    def run(self, proto):
        proc = self.dep.sim.process(
            self.dep.executor.run_protocol(proto, self.dep.client_nodes[0])
        )
        return self.dep.sim.run(until=proc)

    def run_concurrently(self, factories):
        procs = [
            self.dep.sim.process(
                self.dep.executor.run_protocol(
                    f(), self.dep.client_nodes[i % len(self.dep.client_nodes)]
                )
            )
            for i, f in enumerate(factories)
        ]
        self.dep.sim.run()
        return [p.value for p in procs]

    def close(self) -> None:
        pass


def all_harnesses():
    """Yield harnesses lazily, one at a time: the caller closes each
    before the next is built, so a constructor failure cannot leak the
    already-run deployments (and only one cluster of OS processes is
    ever alive at once)."""
    for cls in (
        InprocHarness,
        ThreadedHarness,
        ProcessHarness,
        TcpHarness,
        AioHarness,
        TcpRemoteHarness,
        SimulatedHarness,
    ):
        yield cls()


OTHER_DRIVERS = ("threaded", "process", "tcp", "aio", "tcp-remote", "simulated")


# ---------------------------------------------------------------------------
# state fingerprints
# ---------------------------------------------------------------------------


def page_dict(dep, blob_id):
    """Union of stored pages: page key -> bytes (placement-independent)."""
    pages = {}
    for dp in dep.data.values():
        for key, payload in dp.iter_pages(blob_id):
            assert key not in pages, f"page {key} stored twice (replication=1)"
            pages[key] = payload.as_bytes()
    return pages


def page_placements(dep, blob_id):
    """Stored pages *with* placement: sorted (key, provider_id, bytes)."""
    return sorted(
        (key, pid, payload.as_bytes())
        for pid, dp in dep.data.items()
        for key, payload in dp.iter_pages(blob_id)
    )


def node_records(dep, blob_id):
    """Every stored metadata node as a sorted comparable record."""
    return sorted(
        (n.key, n.left_version, n.right_version, n.providers, n.write_uid)
        for n in dep.blob_nodes(blob_id)
    )


def leaf_page_refs(dep, blob_id):
    """Version-independent leaf references: (write_uid, offset, size)."""
    return sorted(
        (n.write_uid, n.key.offset, n.key.size)
        for n in dep.blob_nodes(blob_id)
        if n.is_leaf
    )


# ---------------------------------------------------------------------------
# serial phase: one deterministic client, full bit-equality
# ---------------------------------------------------------------------------


def serial_program(blob_id, router):
    """Seeded writes, appends and snapshot reads; returns the replay model.

    Driver-agnostic: a composite sans-io generator (write/read protocols
    chained with plain Python in between) that any driver can execute.
    Mismatches are collected, not raised, so a failure surfaces as a clean
    assertion in the test rather than an exception inside a driver loop.
    """
    rng = random.Random(SEED)
    states = [bytes(TOTAL)]  # reference state per version
    versions = []
    errors = []
    hwm = 0  # high-water mark driving append ops

    for step in range(N_SERIAL_OPS):
        append = hwm < TOTAL and rng.random() < 0.4
        npages = rng.choice((1, 1, 2, 4))
        if append:
            offset = hwm
            npages = min(npages, (TOTAL - hwm) // PAGE)
        else:
            offset = rng.randrange(0, NPAGES - npages + 1) * PAGE
        data = rng.randbytes(npages * PAGE)
        hwm = max(hwm, offset + len(data))

        res = yield from write_protocol(
            blob_id, GEOM, offset, split_pages(data, PAGE), router,
            f"serial-{step}",
        )
        versions.append(res.version)
        state = bytearray(states[-1])
        state[offset : offset + len(data)] = data
        states.append(bytes(state))

        # read-your-writes: this client is alone, so its version is
        # published on completion and must read back exactly
        snap = yield from read_protocol(
            blob_id, GEOM, 0, TOTAL, router, version=res.version
        )
        if snap.data != states[res.version]:
            errors.append(f"step {step}: snapshot v{res.version} mismatch")

        # random historical snapshot, random subrange
        v = rng.randrange(0, len(states))
        sz = rng.randrange(1, TOTAL)
        off = rng.randrange(0, TOTAL - sz)
        part = yield from read_protocol(
            blob_id, GEOM, off, sz, router, version=v
        )
        if part.data != states[v][off : off + sz]:
            errors.append(f"step {step}: partial read of v{v} mismatch")

    return {"versions": versions, "states": states, "errors": errors}


def _run_serial(harness):
    blob_id = harness.run(alloc_protocol(TOTAL, PAGE))
    outcome = harness.run(serial_program(blob_id, harness.dep.router))
    assert outcome["errors"] == [], f"{harness.name}: {outcome['errors']}"
    # Snapshot wire counters *before* the fingerprint reads below: on the
    # process deployment the inspection surface itself issues RPCs
    # (data.dump_pages / meta.dump_nodes), which would otherwise fold the
    # act of measuring into the measured workload.
    driver = getattr(harness.dep, "driver", None)
    server_stats = (
        driver.server_stats() if hasattr(driver, "server_stats") else None
    )
    if server_stats is not None:
        # Subtract setup traffic (fully-remote control plane: provider
        # registration + the builder's registration poll) so only the
        # replayed workload is compared across drivers.
        base = getattr(harness, "stats_base", {})
        server_stats = {
            a: (r - base.get(a, (0, 0))[0], c - base.get(a, (0, 0))[1])
            for a, (r, c) in server_stats.items()
        }
    return {
        "server_stats": server_stats,
        "blob_id": blob_id,
        "outcome": outcome,
        "patches": harness.dep.vm.patches(blob_id),
        "latest": harness.dep.vm.get_latest(blob_id),
        "pages": page_placements(harness.dep, blob_id),
        "nodes": node_records(harness.dep, blob_id),
    }


def test_serial_workload_bit_identical_across_drivers():
    results = {}
    for harness in all_harnesses():
        try:
            results[harness.name] = _run_serial(harness)
        finally:
            harness.close()
    ref = results["inproc"]
    assert ref["latest"] == N_SERIAL_OPS
    for name in OTHER_DRIVERS:
        got = results[name]
        assert got["blob_id"] == ref["blob_id"]
        assert got["outcome"]["versions"] == ref["outcome"]["versions"]
        assert got["outcome"]["states"] == ref["outcome"]["states"], (
            f"{name}: replay states diverged from inproc"
        )
        assert got["patches"] == ref["patches"], f"{name}: version chain differs"
        assert got["latest"] == ref["latest"]
        assert got["pages"] == ref["pages"], (
            f"{name}: stored pages (content or placement) differ"
        )
        assert got["nodes"] == ref["nodes"], f"{name}: metadata tree differs"


# ---------------------------------------------------------------------------
# concurrent phase: N clients, disjoint ranges, real interleavings
# ---------------------------------------------------------------------------


def client_patch(c: int, k: int) -> tuple[int, bytes]:
    """Deterministic patch ``k`` of client ``c``: (offset, data).

    Computable out of order so any driver's version assignment can be
    replayed. Clients own disjoint page ranges; data is a recognizable
    unique fill."""
    rng = random.Random(SEED ^ (c * 1009 + k * 9176))
    base_page = c * PAGES_PER_CLIENT
    npages = 1 + (k % 2)
    page = base_page + rng.randrange(0, PAGES_PER_CLIENT - npages + 1)
    tag = c * WRITES_PER_CLIENT + k + 1
    data = bytes([tag]) * (npages * PAGE)
    return page * PAGE, data


def own_range_states(c: int) -> list[bytes]:
    """Client ``c``'s own-range contents after 0..K of its writes."""
    lo = c * PAGES_PER_CLIENT * PAGE
    hi = lo + PAGES_PER_CLIENT * PAGE
    state = bytearray(PAGES_PER_CLIENT * PAGE)
    out = [bytes(state)]
    for k in range(WRITES_PER_CLIENT):
        offset, data = client_patch(c, k)
        state[offset - lo : offset - lo + len(data)] = data
        out.append(bytes(state))
    assert hi - lo == len(state)
    return out


def concurrent_program(blob_id, router, c: int):
    """Client ``c``: seeded writes to its own range with snapshot checks."""

    def prog():
        lo = c * PAGES_PER_CLIENT * PAGE
        span = PAGES_PER_CLIENT * PAGE
        prefixes = own_range_states(c)
        got_versions = []
        errors = []
        last_prefix = 0
        for k in range(WRITES_PER_CLIENT):
            offset, data = client_patch(c, k)
            res = yield from write_protocol(
                blob_id, GEOM, offset, split_pages(data, PAGE), router,
                f"c{c}-k{k}",
            )
            got_versions.append(res.version)

            if res.published:
                # strict read-your-writes: our version is published, so a
                # snapshot read of it must contain all our k+1 patches
                snap = yield from read_protocol(
                    blob_id, GEOM, lo, span, router, version=res.version
                )
                if snap.data != prefixes[k + 1]:
                    errors.append(f"c{c} k{k}: own snapshot v{res.version} wrong")
                last_prefix = k + 1
            else:
                # our write is complete but unpublished (predecessors in
                # flight): LATEST must show a *monotonic prefix* of our own
                # writes — linearizable-snapshot semantics on our range
                snap = yield from read_protocol(
                    blob_id, GEOM, lo, span, router, version=LATEST
                )
                try:
                    prefix = prefixes.index(snap.data)
                except ValueError:
                    errors.append(f"c{c} k{k}: torn own-range read")
                    continue
                if prefix < last_prefix:
                    errors.append(
                        f"c{c} k{k}: own-range prefix went backwards "
                        f"({last_prefix} -> {prefix})"
                    )
                last_prefix = max(last_prefix, prefix)
        return {"client": c, "versions": got_versions, "errors": errors}

    return prog


def _run_concurrent(harness):
    blob_id = harness.run(alloc_protocol(TOTAL, PAGE))
    router = harness.dep.router
    factories = [
        concurrent_program(blob_id, router, c) for c in range(N_CLIENTS)
    ]
    outcomes = harness.run_concurrently(factories)
    for outcome in outcomes:
        assert outcome["errors"] == [], f"{harness.name}: {outcome['errors']}"

    total = N_CLIENTS * WRITES_PER_CLIENT
    vm = harness.dep.vm
    assert vm.get_latest(blob_id) == total, f"{harness.name}: not all published"

    # every version assigned exactly once, to the expected patch geometry
    version_of = {}
    for outcome in outcomes:
        for k, v in enumerate(outcome["versions"]):
            version_of[v] = (outcome["client"], k)
    assert sorted(version_of) == list(range(1, total + 1))
    patch_geoms = {
        v: (off, len(data))
        for v, (c, k) in version_of.items()
        for off, data in [client_patch(c, k)]
    }
    assert {
        (v, off, size) for v, (off, size) in patch_geoms.items()
    } == set(vm.patches(blob_id)), f"{harness.name}: vm patch chain disagrees"

    # per-driver linearizable snapshots: every published version equals the
    # prefix replay of that driver's version order
    state = bytearray(TOTAL)
    for v in range(1, total + 1):
        c, k = version_of[v]
        offset, data = client_patch(c, k)
        state[offset : offset + len(data)] = data
        snap = harness.run(
            read_protocol(blob_id, GEOM, 0, TOTAL, router, version=v)
        )
        assert snap.data == bytes(state), (
            f"{harness.name}: snapshot v{v} != prefix replay"
        )
    final = bytes(state)

    return {
        "blob_id": blob_id,
        "final": final,
        "pages": page_dict(harness.dep, blob_id),
        "leaf_refs": leaf_page_refs(harness.dep, blob_id),
    }


def test_concurrent_workload_equivalent_across_drivers():
    results = {}
    for harness in all_harnesses():
        try:
            results[harness.name] = _run_concurrent(harness)
        finally:
            harness.close()
    ref = results["inproc"]

    # the final blob is fully determined by the workload (disjoint ranges),
    # so all drivers must converge to the same bytes
    expected_final = bytearray(TOTAL)
    for c in range(N_CLIENTS):
        lo = c * PAGES_PER_CLIENT * PAGE
        expected_final[lo : lo + PAGES_PER_CLIENT * PAGE] = own_range_states(c)[-1]
    assert ref["final"] == bytes(expected_final)

    for name in OTHER_DRIVERS:
        got = results[name]
        assert got["final"] == ref["final"], f"{name}: final blob bytes differ"
        # page identity is placement- and version-order-independent:
        # (blob, write_uid, index) -> bytes must match bit for bit
        assert got["pages"] == ref["pages"], f"{name}: stored pages differ"
        # every write's pages are referenced by leaves at the same intervals
        assert got["leaf_refs"] == ref["leaf_refs"], (
            f"{name}: leaf page references differ"
        )


def test_transport_batching_equivalent_sub_calls():
    """The threaded, process, both TCP, the aio and the simulated drivers
    must issue identical wire-RPC and sub-call counts for an identical
    serial workload — all six execute exactly the groups
    `plan_wire_groups` plans (shared framing); for the process and TCP
    drivers the counts are reported by the worker processes / node agents
    themselves over the control channel. For the fully-remote
    configuration this also proves the vm/pm *workload* traffic is
    identical whether they are parent service threads or agents on other
    machines (setup registration subtracted via the harness baseline);
    for the aio configuration it proves the event-loop transport frames
    nothing differently from the per-peer thread pairs."""
    harnesses: list = []
    try:
        # construct inside the try (one by one) so a failing constructor
        # cannot leak the deployments already built
        for cls in (
            ThreadedHarness, ProcessHarness, TcpHarness, AioHarness,
            TcpRemoteHarness, SimulatedHarness,
        ):
            harnesses.append(cls())
        threaded, process, tcp, aio, tcp_remote, simulated = harnesses
        t = _run_serial(threaded)
        p = _run_serial(process)
        n = _run_serial(tcp)
        a = _run_serial(aio)
        r = _run_serial(tcp_remote)
        s = _run_serial(simulated)
        assert (
            t["pages"] == s["pages"] == p["pages"] == n["pages"]
            == a["pages"] == r["pages"]
        )
        t_stats, p_stats, n_stats, a_stats, r_stats = (
            t["server_stats"], p["server_stats"], n["server_stats"],
            a["server_stats"], r["server_stats"],
        )
        t_rpcs = sum(rr for rr, _ in t_stats.values())
        t_calls = sum(c for _, c in t_stats.values())
        assert t_stats == p_stats, (
            "process and threaded drivers framed the same workload differently"
        )
        assert t_stats == n_stats, (
            "TCP and threaded drivers framed the same workload differently"
        )
        assert t_stats == a_stats, (
            "aio and threaded drivers framed the same workload differently"
        )
        assert t_stats == r_stats, (
            "fully-remote TCP (vm/pm on agents) framed the same workload "
            "differently from threaded"
        )
        assert (t_rpcs, t_calls) == (
            simulated.dep.executor.wire_rpcs,
            simulated.dep.executor.sub_calls,
        ), "threaded and simulated drivers framed the same workload differently"
    finally:
        for h in harnesses:
            h.close()


# ---------------------------------------------------------------------------
# seventh configuration: durable control plane, kill + restart + replay
# ---------------------------------------------------------------------------

N_DURABLE_STEPS = 10
KILL_AFTER_STEP = 5  # phase 1 = steps [0, 5), phase 2 = steps [5, 10)


def durable_step_program(blob_id, router, states, step, elastic=False):
    """One step of the durable workload: a seeded write plus snapshot reads.

    Unlike :func:`serial_program`, each step carries its *own* rng (seeded
    from the step number), so the workload can be split across a control
    plane kill+restart and still be byte-for-byte the workload an
    uninterrupted run executes. ``states`` is the caller-held replay model
    (reference bytes per version), appended to in place. Returns a list of
    mismatch descriptions (empty = step verified). ``elastic`` runs the
    same workload in elastic-cluster mode (consistent-hash allocation,
    relocation-aware reads) for the eighth configuration."""
    rng = random.Random(SEED ^ (0xD00B + step * 7919))
    errors = []
    npages = rng.choice((1, 1, 2, 4))
    offset = rng.randrange(0, NPAGES - npages + 1) * PAGE
    data = rng.randbytes(npages * PAGE)

    res = yield from write_protocol(
        blob_id, GEOM, offset, split_pages(data, PAGE), router,
        f"durable-{step}", hashed_alloc=elastic,
    )
    if res.version != len(states):
        errors.append(
            f"step {step}: expected version {len(states)}, got {res.version}"
        )
    state = bytearray(states[-1])
    state[offset : offset + len(data)] = data
    states.append(bytes(state))

    # read-your-writes on the just-published version
    snap = yield from read_protocol(
        blob_id, GEOM, 0, TOTAL, router, version=res.version,
        locate_fallback=elastic,
    )
    if snap.data != states[res.version]:
        errors.append(f"step {step}: snapshot v{res.version} mismatch")

    # a historical snapshot — after a restart this reads *recovered*
    # version history, the whole point of the configuration
    v = rng.randrange(0, len(states))
    sz = rng.randrange(1, TOTAL)
    off = rng.randrange(0, TOTAL - sz)
    part = yield from read_protocol(
        blob_id, GEOM, off, sz, router, version=v, locate_fallback=elastic
    )
    if part.data != states[v][off : off + sz]:
        errors.append(f"step {step}: partial read of v{v} mismatch")
    return errors


def _durable_fingerprint(dep, blob_id):
    return {
        "patches": dep.vm.patches(blob_id),
        "latest": dep.vm.get_latest(blob_id),
        "pages": page_placements(dep, blob_id),
        "nodes": node_records(dep, blob_id),
    }


def _storage_stats(dep):
    """Workload wire counters of the *storage* actors only (setup base
    subtracted). Control-actor counters reset when an agent restarts, so
    they cannot be compared across an interrupted and an uninterrupted
    run — storage counters can, and killing the control plane must not
    leak so much as one stray RPC to a storage node."""
    base = dep.stats_base
    return {
        a: (r - base.get(a, (0, 0))[0], c - base.get(a, (0, 0))[1])
        for a, (r, c) in dep.driver.server_stats().items()
        if isinstance(a, tuple)  # ("data", i) / ("meta", i), not "vm"/"pm"
    }


def test_kill_restart_replay_matches_uninterrupted_run(tmp_path):
    """The seventh certified configuration: the fully-remote TCP cluster
    with a durable control plane (``state_dir``), its vm and pm agents
    SIGKILLed mid-workload and restarted on their state dirs. The final
    pages (content *and* placement), metadata node records and version
    chains must be bit-identical to the uninterrupted tcp-remote run,
    with the outage visible to clients only as fast typed failures."""
    from repro.errors import RemoteError

    steps = list(range(N_DURABLE_STEPS))

    # reference: plain tcp-remote, uninterrupted, no state dir
    ref_h = TcpRemoteHarness()
    try:
        ref_blob = ref_h.run(alloc_protocol(TOTAL, PAGE))
        ref_states = [bytes(TOTAL)]
        for step in steps:
            errs = ref_h.run(
                durable_step_program(ref_blob, ref_h.dep.router, ref_states, step)
            )
            assert errs == [], errs
        ref = _durable_fingerprint(ref_h.dep, ref_blob)
        ref_storage = _storage_stats(ref_h.dep)
    finally:
        ref_h.close()
    assert ref["latest"] == N_DURABLE_STEPS

    # durable run: same workload, control plane killed between the phases
    dep = build_tcp(SPEC, control_plane="agents", state_dir=tmp_path)
    try:
        assert dep.in_parent_actors() == []
        blob_id = dep.driver.run(alloc_protocol(TOTAL, PAGE))
        assert blob_id == ref_blob
        states = [bytes(TOTAL)]
        for step in steps[:KILL_AFTER_STEP]:
            errs = dep.driver.run(
                durable_step_program(blob_id, dep.router, states, step)
            )
            assert errs == [], errs

        vm_i = dep.agent_index_for("vm")
        pm_i = dep.agent_index_for("pm")
        dep.kill_agent(vm_i)
        dep.kill_agent(pm_i)

        # the outage is fail-fast and typed, and (because a WRITE talks to
        # the pm before any storage node) leaves zero storage traffic
        probe = dep.client("outage-probe")
        with pytest.raises(RemoteError):
            probe.write(blob_id, bytes(PAGE), 0)

        dep.restart_agent(vm_i)
        dep.restart_agent(pm_i)
        dep.driver.peer("vm").wait_connected(timeout=JOIN_TIMEOUT)
        dep.driver.peer("pm").wait_connected(timeout=JOIN_TIMEOUT)

        # the restarted vm resumed the same incarnation: recovered history
        # answers before any phase-2 write happens
        assert dep.vm.get_latest(blob_id) == KILL_AFTER_STEP

        for step in steps[KILL_AFTER_STEP:]:
            errs = dep.driver.run(
                durable_step_program(blob_id, dep.router, states, step)
            )
            assert errs == [], errs

        assert states == ref_states
        got = _durable_fingerprint(dep, blob_id)
        assert got["patches"] == ref["patches"], "version chain differs"
        assert got["latest"] == ref["latest"]
        assert got["pages"] == ref["pages"], (
            "stored pages (content or placement) differ from uninterrupted run"
        )
        assert got["nodes"] == ref["nodes"], "metadata tree differs"
        assert _storage_stats(dep) == ref_storage, (
            "kill/restart leaked wire traffic to storage nodes"
        )
    finally:
        dep.close()


# ---------------------------------------------------------------------------
# eighth configuration: elastic membership, mid-workload join + drain
# ---------------------------------------------------------------------------

ELASTIC_SPEC = DeploymentSpec(
    n_data=4, n_meta=3, n_clients=N_CLIENTS, cache_capacity=0,
    strategy="hash_ring",
)


def _verify_snapshots(dep, blob_id, states):
    """Every published version still reads back its reference bytes
    (relocation-aware: pages may have migrated off the providers their
    metadata records)."""
    for v, want in enumerate(states):
        res = dep.driver.run(
            read_protocol(
                blob_id, GEOM, 0, TOTAL, dep.router, version=v,
                locate_fallback=True,
            )
        )
        assert res.data == want, f"snapshot v{v} diverged"


def test_elastic_join_drain_matches_static_cluster(tmp_path):
    """The eighth certified configuration: the fully-remote TCP cluster on
    consistent-hash placement admits a new storage agent *mid-workload*,
    migrates pages to their new hash homes (with the pm SIGKILLed mid-
    migration and recovered from its journal), serves snapshot reads
    throughout the joined epoch, then drains the newcomer back out. The
    finished workload — stored pages (content *and* placement), metadata
    node records and version chains — must be bit-identical to the same
    workload on a static cluster that never changed membership."""
    steps = list(range(N_DURABLE_STEPS))

    # reference: static hash_ring cluster, membership never changes
    ref_dep = build_tcp(ELASTIC_SPEC, control_plane="agents")
    try:
        ref_blob = ref_dep.driver.run(alloc_protocol(TOTAL, PAGE))
        ref_states = [bytes(TOTAL)]
        for step in steps:
            errs = ref_dep.driver.run(
                durable_step_program(
                    ref_blob, ref_dep.router, ref_states, step, elastic=True
                )
            )
            assert errs == [], errs
        ref = _durable_fingerprint(ref_dep, ref_blob)
    finally:
        ref_dep.close()
    assert ref["latest"] == N_DURABLE_STEPS

    # dynamic run: same workload, a join + drain between the phases
    dep = build_tcp(ELASTIC_SPEC, control_plane="agents", state_dir=tmp_path)
    try:
        assert dep.in_parent_actors() == []
        blob_id = dep.driver.run(alloc_protocol(TOTAL, PAGE))
        assert blob_id == ref_blob
        states = [bytes(TOTAL)]
        for step in steps[:KILL_AFTER_STEP]:
            errs = dep.driver.run(
                durable_step_program(
                    blob_id, dep.router, states, step, elastic=True
                )
            )
            assert errs == [], errs

        # a fifth agent joins the running cluster and pages start
        # migrating toward their new hash homes...
        new_id = dep.add_agent()
        assert new_id == ELASTIC_SPEC.n_data
        partial = dep.rebalance(limit_moves=2)
        assert partial["executed"] == 2 and not partial["committed"]

        # ...when the pm is SIGKILLed mid-migration. Recovery replays the
        # journaled plan (with the already-completed moves marked done)
        # and the rebalance resumes instead of restarting or double-moving
        pm_i = dep.agent_index_for("pm")
        dep.kill_agent(pm_i)
        dep.restart_agent(pm_i)
        dep.driver.peer("pm").wait_connected(timeout=JOIN_TIMEOUT)
        resumed = dep.rebalance()
        assert resumed["committed"], "recovered pm failed to finish the plan"
        assert resumed["plan"] == partial["plan"], "recovery lost the plan"

        # the newcomer now holds real pages, and every published snapshot
        # still reads back exactly (locate fallback covers moved pages)
        assert dep.data[new_id].page_count > 0
        _verify_snapshots(dep, blob_id, states)

        # drain the newcomer: its pages move to their hash homes over the
        # surviving members, it deregisters, its agent shuts down
        drained = dep.drain_agent(new_id)
        assert drained["committed"] and drained["drain"] == new_id
        assert new_id not in dep.pm.providers()
        assert new_id not in dep.data
        _verify_snapshots(dep, blob_id, states)

        for step in steps[KILL_AFTER_STEP:]:
            errs = dep.driver.run(
                durable_step_program(
                    blob_id, dep.router, states, step, elastic=True
                )
            )
            assert errs == [], errs

        assert states == ref_states
        got = _durable_fingerprint(dep, blob_id)
        assert got["patches"] == ref["patches"], "version chain differs"
        assert got["latest"] == ref["latest"]
        assert got["pages"] == ref["pages"], (
            "stored pages (content or placement) differ from the static run"
        )
        assert got["nodes"] == ref["nodes"], "metadata tree differs"
    finally:
        dep.close()
