"""Unit tests for the pm's elastic-membership machinery.

The migration state machine in isolation — hash-aware allocation, plan
computation, idempotent move accounting, the relocation table readers
fall back to — plus its WAL discipline: a pm rebuilt from its journal
mid-plan resumes with exactly the moves whose completion records did
not survive. The cross-driver end-to-end certification (join + drain on
a live TCP cluster, bit-identical to static) lives in
``test_driver_conformance.py::test_elastic_join_drain_matches_static_cluster``.
"""

from __future__ import annotations

import pytest

from repro.core.config import DeploymentSpec
from repro.core.journal import Journal
from repro.deploy.inproc import build_inproc
from repro.errors import ConfigError, NotEnoughProviders
from repro.providers.manager import ProviderManager
from repro.providers.page import PageKey
from repro.providers.rebalance import drain_provider, execute_rebalance
from repro.providers.strategies import make_strategy
from repro.util.sizes import KB

PAGE = 4 * KB


def make_pm(n=4, journal=None, replication=1):
    pm = ProviderManager(
        make_strategy("hash_ring"), replication=replication, journal=journal
    )
    for i in range(n):
        pm.register(i)
    return pm


class TestHashedAllocation:
    def test_placement_is_order_independent(self):
        """Unlike the cursor strategies, hash placement depends only on
        the page key and the live set — the property that makes
        membership changes computable as page moves."""
        a = make_pm()
        b = make_pm()
        b.get_providers_hashed("warmup", "w0", 0, 7, PAGE)  # perturb b
        assert a.get_providers_hashed("blob", "u1", 0, 16, PAGE) == (
            b.get_providers_hashed("blob", "u1", 0, 16, PAGE)
        )

    def test_requires_hash_aware_strategy(self):
        pm = ProviderManager(make_strategy("round_robin"))
        pm.register(0)
        with pytest.raises(ConfigError, match="not hash-aware"):
            pm.get_providers_hashed("b", "u", 0, 1, PAGE)
        with pytest.raises(ConfigError, match="not hash-aware"):
            pm.plan_rebalance([(0, [])])

    def test_replicated_groups_are_distinct(self):
        pm = make_pm(n=5, replication=3)
        for group in pm.get_providers_hashed("b", "u", 0, 12, PAGE):
            assert len(group) == 3 and len(set(group)) == 3

    def test_not_enough_providers(self):
        pm = make_pm(n=1, replication=2)
        pm.register(1)
        pm.deregister(1)
        with pytest.raises(NotEnoughProviders):
            pm.get_providers_hashed("b", "u", 0, 1, PAGE)


class TestMigrationStateMachine:
    def manifests_for(self, pm, blob="b", uid="u", npages=8):
        """Fake provider manifests matching a hashed allocation."""
        groups = pm.get_providers_hashed(blob, uid, 0, npages, PAGE)
        held: dict[int, list] = {p: [] for p in pm.providers()}
        for i, group in enumerate(groups):
            for p in group:
                held[p].append(((blob, uid, i), PAGE))
        return [(p, entries) for p, entries in sorted(held.items())]

    def test_consistent_placement_plans_nothing(self):
        pm = make_pm()
        assert pm.plan_rebalance(self.manifests_for(pm)) is None

    def test_join_plans_copy_then_free_per_key(self):
        pm = make_pm()
        manifests = self.manifests_for(pm)
        pm.register(4)
        plan = pm.plan_rebalance(manifests)
        assert plan is not None and plan["done"] == 0
        # every move targets the newcomer; each copy precedes its free
        seen_copy = set()
        for _i, kind, key, src, dst, _n in plan["moves"]:
            if kind == "copy":
                assert dst == 4
                seen_copy.add(tuple(key))
            else:
                assert tuple(key) in seen_copy, "free before copy"

    def test_active_plan_is_returned_not_replaced(self):
        pm = make_pm()
        manifests = self.manifests_for(pm)
        pm.register(4)
        plan = pm.plan_rebalance(manifests)
        again = pm.plan_rebalance([(0, [])], drain=2)  # ignored args
        assert again["plan"] == plan["plan"]
        assert again["total"] == plan["total"]

    def test_done_is_idempotent_and_feeds_locate(self):
        pm = make_pm()
        manifests = self.manifests_for(pm)
        pm.register(4)
        plan = pm.plan_rebalance(manifests)
        index, kind, key, _src, _dst, _n = plan["moves"][0]
        assert kind == "copy"
        pm.migration_done(plan["plan"], index)
        pm.migration_done(plan["plan"], index)  # duplicate: no-op
        assert pm.pending_rebalance()["done"] == 1
        # the relocation table answers for the moved key (normalized:
        # PageKey and plain tuple address the same entry), () otherwise
        holders = pm.locate([PageKey(*key), tuple(key), ("b", "u", 999)])
        assert holders[0] == holders[1] != ()
        assert holders[2] == ()

    def test_commit_refuses_unfinished_plans(self):
        pm = make_pm()
        manifests = self.manifests_for(pm)
        pm.register(4)
        plan = pm.plan_rebalance(manifests)
        with pytest.raises(ConfigError, match="unfinished"):
            pm.migration_commit(plan["plan"])

    def test_drain_guards(self):
        pm = make_pm(n=2, replication=2)
        with pytest.raises(ConfigError, match="unknown provider"):
            pm.plan_rebalance([(0, []), (1, [])], drain=9)
        with pytest.raises(NotEnoughProviders):
            pm.plan_rebalance([(0, []), (1, [])], drain=1)

    def test_draining_excluded_from_fresh_allocations(self):
        pm = make_pm()
        manifests = self.manifests_for(pm)
        plan = pm.plan_rebalance(manifests, drain=2)
        assert pm.draining() == [2]
        for group in pm.get_providers_hashed("b2", "u2", 0, 16, PAGE):
            assert 2 not in group
        for i, *_ in list(plan["moves"]):
            pm.migration_done(plan["plan"], i)
        pm.migration_commit(plan["plan"])
        assert pm.draining() == [2]  # until the provider deregisters
        pm.deregister(2)
        assert pm.draining() == []


class TestMigrationRecovery:
    def test_pm_rebuilt_mid_plan_resumes_with_remaining_moves(self, tmp_path):
        pm = ProviderManager(
            make_strategy("hash_ring"), journal=Journal(tmp_path)
        )
        for i in range(4):
            pm.register(i)
        helper = TestMigrationStateMachine()
        manifests = helper.manifests_for(pm)
        pm.register(4)
        plan = pm.plan_rebalance(manifests, drain=0)
        first = plan["moves"][:2]
        for i, *_ in first:
            pm.migration_done(plan["plan"], i)
        located = pm.locate([m[2] for m in first])
        pm.journal.close()  # crash

        pm2 = ProviderManager(
            make_strategy("hash_ring"), journal=Journal(tmp_path)
        )
        resumed = pm2.pending_rebalance()
        assert resumed["plan"] == plan["plan"]
        assert resumed["done"] == 2 and resumed["total"] == plan["total"]
        # the two journaled completions are not handed out again
        assert {m[0] for m in resumed["moves"]} == (
            {m[0] for m in plan["moves"]} - {m[0] for m in first}
        )
        # relocation table and drain mark survived the crash
        assert pm2.locate([m[2] for m in first]) == located
        assert pm2.draining() == [0]
        for i, *_ in resumed["moves"]:
            pm2.migration_done(resumed["plan"], i)
        pm2.migration_commit(resumed["plan"])
        assert pm2.pending_rebalance() is None


class TestExecutorEndToEnd:
    def deployment(self):
        dep = build_inproc(
            DeploymentSpec(n_data=4, n_meta=2, strategy="hash_ring")
        )
        client = dep.client("elastic")
        blob = client.alloc(64 * KB, PAGE)
        client.write(blob, bytes(range(256)) * 256, 0)
        return dep, client, blob

    def placements(self, dep, blob):
        out = {
            p: sorted(
                (key, payload.as_bytes())
                for key, payload in dep.data[p].iter_pages(blob)
            )
            for p in dep.data
        }
        assert any(out.values()), "no pages found — inspection is vacuous"
        return out

    def test_interrupted_rebalance_resumes_to_hash_homes(self):
        dep, client, blob = self.deployment()
        dep.add_data_provider()
        partial = execute_rebalance(
            dep.driver, sorted(dep.data), limit_moves=1
        )
        assert partial["executed"] == 1 and not partial["committed"]
        done = execute_rebalance(dep.driver, sorted(dep.data))
        assert done["committed"] and done["plan"] == partial["plan"]
        place = dep.pm.strategy.place_key
        live = sorted(dep.pm.providers())
        for pid, pages in self.placements(dep, blob).items():
            for key, _data in pages:
                assert pid in place(tuple(key), live, dep.pm.replication), (
                    f"page {key} on data/{pid}, not its hash home"
                )
        assert client.read_bytes(blob, 0, 64 * KB) == bytes(range(256)) * 256

    def test_drain_restores_pre_join_placement(self):
        dep, client, blob = self.deployment()
        before = self.placements(dep, blob)
        new_id = dep.add_data_provider()
        execute_rebalance(dep.driver, sorted(dep.data))
        summary = drain_provider(dep.driver, sorted(dep.data), new_id)
        assert summary["committed"]
        assert new_id not in dep.pm.providers()
        del dep.data[new_id]
        after = self.placements(dep, blob)
        assert after == before  # deterministic placement, bit-identical
        assert client.read_bytes(blob, 0, 64 * KB) == bytes(range(256)) * 256
