"""Client-ordered garbage collection."""

import pytest

from repro.errors import NodeMissing, StaleWrite, VersionNotPublished
from repro.util.sizes import KB
from tests.conftest import SMALL_PAGE, pages


def setup_versions(client, blob, n=4):
    """n writes to overlapping ranges; returns expected contents per
    version of the first 2 pages."""
    contents = {}
    for v in range(1, n + 1):
        fill = bytes([v]) * 1
        client.write(blob, (bytes([v]) * SMALL_PAGE) * 2, 0)
        contents[v] = bytes([v]) * (2 * SMALL_PAGE)
    return contents


class TestGC:
    def test_keep_latest_only(self, dep, client, blob):
        contents = setup_versions(client, blob, 4)
        pages_before = dep.total_pages_stored()
        stats = client.gc(blob, [4], dep.data_ids, dep.meta_ids)
        assert stats.pages_freed == pages_before - stats.pages_live
        assert stats.pages_live == 2
        # kept version reads perfectly
        assert client.read_bytes(blob, 0, 2 * SMALL_PAGE, version=4) == contents[4]

    def test_collected_version_unreadable(self, dep, blob):
        writer = dep.client("w")
        setup_versions(writer, blob, 3)
        writer.gc(blob, [3], dep.data_ids, dep.meta_ids)
        fresh = dep.client("fresh-reader")  # no cache assistance
        with pytest.raises(NodeMissing):
            fresh.read(blob, 0, SMALL_PAGE, version=1)

    def test_keep_multiple_versions(self, dep, client, blob):
        contents = setup_versions(client, blob, 4)
        client.gc(blob, [2, 4], dep.data_ids, dep.meta_ids)
        assert client.read_bytes(blob, 0, 2 * SMALL_PAGE, version=2) == contents[2]
        assert client.read_bytes(blob, 0, 2 * SMALL_PAGE, version=4) == contents[4]

    def test_shared_subtrees_survive(self, dep, client, blob):
        """GC must keep pages of older versions still referenced through
        structural sharing."""
        client.write(blob, pages(4, b"A"), 0)  # v1: pages 0-3
        client.write(blob, pages(1, b"B"), 0)  # v2 patches page 0 only
        client.gc(blob, [2], dep.data_ids, dep.meta_ids)
        got = client.read_bytes(blob, 0, 4 * SMALL_PAGE, version=2)
        assert got == pages(1, b"B") + pages(3, b"A")

    def test_gc_refuses_unpublished_keep(self, dep, client, blob):
        client.write(blob, pages(1), 0)
        with pytest.raises(StaleWrite):
            client.gc(blob, [7], dep.data_ids, dep.meta_ids)

    def test_gc_stats_consistency(self, dep, client, blob):
        setup_versions(client, blob, 3)
        nodes_before = dep.total_nodes_stored()
        pages_before = dep.total_pages_stored()
        stats = client.gc(blob, [3], dep.data_ids, dep.meta_ids)
        assert stats.kept_versions == (3,)
        assert dep.total_nodes_stored() == nodes_before - stats.nodes_freed
        assert dep.total_pages_stored() == pages_before - stats.pages_freed
        assert stats.nodes_live == dep.total_nodes_stored()

    def test_gc_idempotent(self, dep, client, blob):
        setup_versions(client, blob, 3)
        client.gc(blob, [3], dep.data_ids, dep.meta_ids)
        stats = client.gc(blob, [3], dep.data_ids, dep.meta_ids)
        assert stats.nodes_freed == 0
        assert stats.pages_freed == 0

    def test_gc_keep_nothing_empties_store(self, dep, client, blob):
        setup_versions(client, blob, 2)
        stats = client.gc(blob, [], dep.data_ids, dep.meta_ids)
        assert dep.total_pages_stored() == 0
        assert dep.total_nodes_stored() == 0
        assert stats.pages_live == 0

    def test_gc_respects_other_blobs(self, dep, client):
        blob_a = client.alloc(256 * KB, SMALL_PAGE)
        blob_b = client.alloc(256 * KB, SMALL_PAGE)
        client.write(blob_a, pages(2, b"a"), 0)
        client.write(blob_b, pages(2, b"b"), 0)
        client.gc(blob_a, [], dep.data_ids, dep.meta_ids)
        assert client.read_bytes(blob_b, 0, 4, version=1) == b"bbbb"
