"""Process-transport pins: framing counts, clean shutdown, crash fail-over.

Everything here is wall-clock bounded: every blocking wait carries a
timeout, and the module-level watchdog (tests/conftest.py, enabled via
``REPRO_TEST_TIMEOUT``) hard-kills a stalled run — a hung worker process
must fail the suite fast, never stall it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DeploymentSpec
from repro.deploy.process import build_process
from repro.errors import PageCorrupt, RemoteError, VersionNotPublished
from repro.net.process import ProcessDriver
from repro.net.sansio import Batch, Call
from repro.providers.data_provider import DataProvider
from repro.util.sizes import KB, MB

TOTAL = 1 * MB
PAGE = 4 * KB

JOIN_TIMEOUT = 60.0


@pytest.fixture
def pdep():
    dep = build_process(DeploymentSpec(n_data=3, n_meta=2, cache_capacity=0))
    yield dep
    dep.close()


def fill(i: int) -> bytes:
    return bytes([i % 251 + 1]) * PAGE


# ---------------------------------------------------------------------------
# functional sanity + submission counts
# ---------------------------------------------------------------------------


def test_serial_workload_and_submission_counts(pdep):
    """Caller-side transport counters must equal worker/server-side wire-RPC
    counts: one queue submission (= one frame for worker actors) per
    destination per batch — the same bound the threaded driver pins."""
    client = pdep.client("pin")
    blob = client.alloc(TOTAL, PAGE)
    rng = random.Random(7)
    states: dict[int, bytes] = {}
    for step in range(6):
        npages = rng.choice((1, 2, 4))
        offset = rng.randrange(0, TOTAL // PAGE - npages + 1) * PAGE
        data = b"".join(fill(step * 7 + k) for k in range(npages))
        res = client.write(blob, data, offset)
        states[res.version] = data
        back = client.read_bytes(blob, offset, len(data), version=res.version)
        assert back == data

    stats = pdep.driver.server_stats()
    served_rpcs = sum(r for r, _ in stats.values())
    served_calls = sum(c for _, c in stats.values())
    transport = pdep.transport_stats()
    assert transport["queue_submissions"] == served_rpcs
    assert transport["completion_wakeups"] <= transport["batches"]
    assert served_calls >= served_rpcs

    # worker-held state is inspectable over the wire
    assert pdep.total_pages_stored() == sum(
        len(d) // PAGE for d in states.values()
    )


def test_concurrent_clients_disjoint_ranges(pdep):
    """Real parallel client threads against worker processes."""
    client = pdep.client("setup")
    blob = client.alloc(TOTAL, PAGE)
    n_clients, writes_each = 3, 4
    span = TOTAL // n_clients // PAGE * PAGE

    def program(c: int):
        own = pdep.client(f"c{c}")
        lo = c * span
        for k in range(writes_each):
            data = fill(c * 16 + k) * 2
            offset = lo + (k * 2 * PAGE) % span
            res = own.write(blob, data, offset)
            if res.published:
                # a completed write is only *readable* once all earlier
                # versions have published; otherwise the paper's contract
                # says the read must fail, so verify only published ones
                got = own.read_bytes(blob, offset, len(data), version=res.version)
                assert got == data
        return c

    futures = [
        pdep.driver.spawn(_as_proto(program, c)) for c in range(n_clients)
    ]
    assert sorted(f.result(timeout=JOIN_TIMEOUT) for f in futures) == [0, 1, 2]
    assert pdep.vm.get_latest(blob) == n_clients * writes_each

    # all versions published now: every client's final own-range bytes
    # must read back exactly (deterministic replay of its writes)
    for c in range(n_clients):
        state = bytearray(span)
        for k in range(writes_each):
            data = fill(c * 16 + k) * 2
            offset = (k * 2 * PAGE) % span
            state[offset : offset + len(data)] = data
        assert client.read_bytes(blob, c * span, span) == bytes(state)


def _as_proto(fn, *args):
    """Wrap a blocking-client program as a spawnable generator."""

    def proto():
        yield Batch([])  # enter the driver loop once, then run to completion
        return fn(*args)

    return proto()


def test_unknown_address_raises_before_any_submission(pdep):
    def proto():
        yield Batch([Call(("data", 99), "data.stats", ())])

    before = pdep.transport_stats()["queue_submissions"]
    with pytest.raises(KeyError):
        pdep.driver.run(proto())
    assert pdep.transport_stats()["queue_submissions"] == before


def test_semantic_errors_cross_the_wire_typed(pdep):
    client = pdep.client("err")
    blob = client.alloc(TOTAL, PAGE)
    with pytest.raises(VersionNotPublished) as exc_info:
        client.read_bytes(blob, 0, PAGE, version=5)
    assert exc_info.value.requested == 5


# ---------------------------------------------------------------------------
# shutdown
# ---------------------------------------------------------------------------


def test_clean_shutdown_exits_all_workers():
    dep = build_process(DeploymentSpec(n_data=2, n_meta=2))
    client = dep.client("s")
    blob = client.alloc(TOTAL, PAGE)
    client.write(blob, fill(1), 0)
    dep.close()
    codes = dep.driver.worker_exitcodes()
    assert len(codes) == 4
    assert all(code == 0 for code in codes.values()), codes
    # closing twice is harmless
    dep.close()


def test_driver_rejects_registration_after_close():
    driver = ProcessDriver()
    driver.close()
    with pytest.raises(RuntimeError):
        driver.register_process(("data", 0), DataProvider, 0)


# ---------------------------------------------------------------------------
# crash handling: killed worker -> RemoteError -> replica fail-over
# ---------------------------------------------------------------------------


def test_killed_worker_raises_remote_error(pdep):
    client = pdep.client("kill")
    blob = client.alloc(TOTAL, PAGE)
    res = client.write(blob, fill(9), 0)
    # find the worker holding the page and kill it (replication=1: no backup)
    holders = [
        pid for pid, proxy in pdep.data.items()
        if any(True for _ in proxy.iter_pages(blob))
    ]
    assert len(holders) == 1
    pdep.driver.kill_worker(("data", holders[0]))
    with pytest.raises(RemoteError) as exc_info:
        client.read_bytes(blob, 0, PAGE, version=res.version)
    assert "WorkerUnavailable" in str(exc_info.value)
    # the rest of the deployment still serves: metadata + vm are alive
    assert pdep.vm.get_latest(blob) == 1
    assert len(pdep.blob_nodes(blob)) > 0


def test_killed_worker_fails_over_to_replica():
    """The paper's replica fail-over, driven by a real process death: with
    replication=2 every page lives on two workers, so SIGKILLing one must
    leave reads working through the ``allow_error`` retry path."""
    dep = build_process(
        DeploymentSpec(n_data=3, n_meta=2, replication=2, cache_capacity=0)
    )
    try:
        client = dep.client("failover")
        blob = client.alloc(TOTAL, PAGE)
        data = fill(3) + fill(4)
        res = client.write(blob, data, 0)
        victim = next(
            pid for pid, proxy in dep.data.items()
            if any(True for _ in proxy.iter_pages(blob))
        )
        dep.driver.kill_worker(("data", victim))
        # metadata is also replicated, so the read survives a meta loss too
        back = client.read_bytes(blob, 0, len(data), version=res.version)
        assert back == data
    finally:
        dep.close()


def test_in_flight_calls_complete_when_worker_dies():
    """Calls pending on a worker at death must complete with RemoteError,
    not hang the latch."""
    dep = build_process(DeploymentSpec(n_data=2, n_meta=2, cache_capacity=0))
    try:
        client = dep.client("inflight")
        blob = client.alloc(TOTAL, PAGE)
        client.write(blob, fill(5), 0)
        address = ("data", 0)
        dep.driver.kill_worker(address)
        # every future call against the corpse fails fast with RemoteError
        for _ in range(3):
            with pytest.raises(RemoteError):
                dep.driver.call(address, "data.stats")
    finally:
        dep.close()


def test_checksum_integrity_mode_roundtrips():
    """Integrity mode: pages checksum on put and verify on get, across the
    process boundary; a correct store round-trips transparently."""
    dep = build_process(
        DeploymentSpec(n_data=2, n_meta=2, page_checksums=True, cache_capacity=0)
    )
    try:
        client = dep.client("sum")
        blob = client.alloc(TOTAL, PAGE)
        data = fill(11) * 4
        res = client.write(blob, data, 0)
        assert client.read_bytes(blob, 0, len(data), version=res.version) == data
    finally:
        dep.close()


def test_checksum_detects_corruption_inproc():
    """The verify side of integrity mode, pinned where we can reach inside
    the store: a flipped byte must surface as PageCorrupt."""
    from repro.providers.page import PageKey, PagePayload

    dp = DataProvider(0, checksum=True)
    key = PageKey("b", "w", 0)
    dp.put_page(key, PagePayload.real(b"a" * 64))
    dp._pages[key] = PagePayload.real(b"a" * 63 + b"b")  # corrupt in place
    with pytest.raises(PageCorrupt):
        dp.get_page(key)


def test_checksum_verifies_spill_loads(tmp_path):
    """Integrity mode must cover the persistence tier too: a page evicted
    to disk and corrupted there fails its checksum on the read-back path
    (disk is exactly where torn/misdirected writes happen)."""
    from repro.core.persistence import DiskSpill
    from repro.providers.page import PageKey, PagePayload

    spill = DiskSpill(tmp_path)
    dp = DataProvider(0, spill=spill, checksum=True)
    key = PageKey("b", "w", 0)
    dp.put_page(key, PagePayload.real(b"a" * 64))
    dp.evict_to_spill()
    # clean round-trip first: spill load passes verification
    assert dp.get_page(key).as_bytes() == b"a" * 64
    page_file = next(tmp_path.glob("*/*.page"))
    page_file.write_bytes(b"z" * 64)  # corrupt on disk
    with pytest.raises(PageCorrupt):
        dp.get_page(key)
