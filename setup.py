"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable builds (which need ``bdist_wheel``) fail. This shim plus
the legacy install path (``pip install -e . --no-use-pep517
--no-build-isolation``, preconfigured in pip.conf) keeps
``pip install -e .`` working without network access. Metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
