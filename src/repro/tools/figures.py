"""CLI: regenerate paper figures and ablations.

Examples::

    python -m repro.tools.figures 3a
    python -m repro.tools.figures 3c --clients 1 8 20 --iterations 8
    python -m repro.tools.figures all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench import figures as F
from repro.util.sizes import human_size


def _run_3a(args: argparse.Namespace) -> str:
    fig = F.fig3a_metadata_read()
    return F.render_series_table(fig, x_format=human_size)


def _run_3b(args: argparse.Namespace) -> str:
    fig = F.fig3b_metadata_write()
    return F.render_series_table(fig, x_format=human_size)


def _run_3c(args: argparse.Namespace) -> str:
    fig = F.fig3c_throughput(
        client_counts=tuple(args.clients), iterations=args.iterations
    )
    return F.render_series_table(fig, y_format=lambda v: f"{v:.1f}")


def _run_abl_a(args: argparse.Namespace) -> str:
    fig = F.ablation_lockfree(
        client_counts=tuple(args.clients[:4]) or (1, 4, 8),
        iterations=args.iterations,
    )
    return F.render_series_table(fig, y_format=lambda v: f"{v:.1f}")


def _run_abl_b(args: argparse.Namespace) -> str:
    fig = F.ablation_metadata(
        client_counts=tuple(args.clients[:4]) or (1, 4, 8),
        iterations=args.iterations,
    )
    return F.render_series_table(fig, y_format=lambda v: f"{v:.1f}")


def _run_abl_c(args: argparse.Namespace) -> str:
    return F.render_series_table(F.ablation_rpc_aggregation(), x_format=human_size)


def _run_abl_d(args: argparse.Namespace) -> str:
    return F.render_series_table(F.ablation_pagesize(), x_format=human_size)


RUNNERS: dict[str, Callable[[argparse.Namespace], str]] = {
    "3a": _run_3a,
    "3b": _run_3b,
    "3c": _run_3c,
    "ablA": _run_abl_a,
    "ablB": _run_abl_b,
    "ablC": _run_abl_c,
    "ablD": _run_abl_d,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.figures",
        description="Regenerate the paper's evaluation figures on the "
        "simulated cluster.",
    )
    parser.add_argument(
        "figure",
        choices=[*RUNNERS, "all"],
        help="which figure/ablation to regenerate",
    )
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=[1, 8, 20],
        help="client counts for concurrency figures (default: 1 8 20)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=8,
        help="access-loop iterations per client (default: 8)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    targets = list(RUNNERS) if args.figure == "all" else [args.figure]
    for name in targets:
        print(RUNNERS[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
