"""CLI: segment-tree introspection on a demo write history.

Builds a small in-process deployment, applies a scripted write history and
shows the machinery from the inside: per-version ASCII trees (with the
weaving links), structural-sharing statistics, the version manager's patch
catalog, and a structural diff between two snapshots.

Example::

    python -m repro.tools.inspect --pages 8 --writes 0:2 4:2 0:1 --diff 1 3
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.metadata.inspect import TreeInspector
from repro.util.sizes import KB
from repro.version.diff import changed_ranges


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect",
        description="Dump segment trees and sharing stats for a scripted "
        "write history.",
    )
    parser.add_argument("--pages", type=int, default=8,
                        help="blob size in 4 KB pages (power of two)")
    parser.add_argument(
        "--writes",
        nargs="+",
        default=["0:2", "4:2", "0:1"],
        metavar="PAGE:COUNT",
        help="write script: each entry patches COUNT pages at PAGE; "
        "a '!' suffix (e.g. 2:1!) simulates a writer that crashes after "
        "its version was assigned but before completing — the stuck "
        "assignment that blocks later versions from publishing",
    )
    parser.add_argument("--diff", type=int, nargs=2, metavar=("V1", "V2"),
                        default=None, help="show changed ranges between versions")
    parser.add_argument(
        "--stuck-writes",
        action="store_true",
        help="show the version manager's in-flight assignments with their "
        "age (completions elsewhere since assignment) — the operator view "
        "for diagnosing a wedged publish chain (see docs/OPERATIONS.md)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    pagesize = 4 * KB
    total = args.pages * pagesize
    if total & (total - 1):
        print("error: --pages must be a power of two", file=sys.stderr)
        return 2

    dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4))
    client = dep.client("inspector")
    blob = client.alloc(total, pagesize)
    inspector = TreeInspector(client)

    for step, entry in enumerate(args.writes, start=1):
        crashed = entry.endswith("!")
        page_str, count_str = entry.rstrip("!").split(":")
        page, count = int(page_str), int(count_str)
        if crashed:
            # a writer that dies between assign and complete: its version
            # stays in flight and every later version waits on it
            ticket = dep.vm.assign(blob, page * pagesize, count * pagesize)
            print(f"write #{step}: pages [{page}, {page + count}) -> "
                  f"version {ticket.version} assigned, writer crashed "
                  f"(never completes)")
            continue
        data = bytes([step % 251 + 1]) * (count * pagesize)
        res = client.write(blob, data, page * pagesize)
        published = "" if res.published else " [unpublished: blocked]"
        print(f"write #{step}: pages [{page}, {page + count}) -> "
              f"version {res.version} ({res.nodes_written} new nodes)"
              f"{published}")

    latest = client.latest(blob)
    print()
    for version in range(1, latest + 1):
        print(inspector.dump(blob, version))
        stats = inspector.sharing_stats(blob, version)
        print(f"  sharing: {stats.own_nodes} own + {stats.shared_nodes} "
              f"inherited nodes ({stats.sharing_ratio:.0%} reused)\n")

    print("version manager patch catalog:")
    for version, offset, size in dep.vm.patches(blob):
        print(f"  v{version}: [{offset}, +{size})")

    if args.stuck_writes:
        print("\nstuck writes (assigned, never completed):")
        rows = dep.vm.stuck_writes(blob)
        for version, offset, size, age in rows:
            print(f"  v{version}: patch [{offset}, +{size}), "
                  f"age {age} completion(s)")
        if not rows:
            print("  (none)")
        else:
            print("  -> later versions cannot publish past the gap; see "
                  "'Stuck writes' in docs/OPERATIONS.md")

    if args.diff:
        v1, v2 = args.diff
        ranges = changed_ranges(client, blob, v1, v2)
        print(f"\nchanged ranges v{v1} -> v{v2}:")
        for iv in ranges:
            print(f"  [{iv.offset}, +{iv.size})")
        if not ranges:
            print("  (none)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
