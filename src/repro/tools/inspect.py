"""CLI: segment-tree introspection on a demo write history.

Builds a small in-process deployment, applies a scripted write history and
shows the machinery from the inside: per-version ASCII trees (with the
weaving links), structural-sharing statistics, the version manager's patch
catalog, and a structural diff between two snapshots.

Example::

    python -m repro.tools.inspect --pages 8 --writes 0:2 4:2 0:1 --diff 1 3
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.metadata.inspect import TreeInspector
from repro.util.sizes import KB
from repro.version.diff import changed_ranges


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect",
        description="Dump segment trees and sharing stats for a scripted "
        "write history.",
    )
    parser.add_argument("--pages", type=int, default=8,
                        help="blob size in 4 KB pages (power of two)")
    parser.add_argument(
        "--writes",
        nargs="+",
        default=["0:2", "4:2", "0:1"],
        metavar="PAGE:COUNT",
        help="write script: each entry patches COUNT pages at PAGE; "
        "a '!' suffix (e.g. 2:1!) simulates a writer that crashes after "
        "its version was assigned but before completing — the stuck "
        "assignment that blocks later versions from publishing",
    )
    parser.add_argument("--diff", type=int, nargs=2, metavar=("V1", "V2"),
                        default=None, help="show changed ranges between versions")
    parser.add_argument(
        "--stuck-writes",
        action="store_true",
        help="show the version manager's in-flight assignments with their "
        "age (completions elsewhere since assignment) — the operator view "
        "for diagnosing a wedged publish chain (see docs/OPERATIONS.md)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry quantile table (per-actor/per-method "
        "service-time p50/p95/p99) recorded while the write history ran "
        "— the same repro.metrics/1 view repro.tools.metrics scrapes "
        "from a live cluster (see 'Observability' in docs/OPERATIONS.md)",
    )
    parser.add_argument(
        "--rebalance",
        action="store_true",
        help="elastic-membership view: run the write history on the "
        "hash_ring strategy, join a new provider mid-run, print the pm's "
        "migration plan (per-move table and per-provider load before/"
        "after), execute it and drain the newcomer back out "
        "(see 'Scale out / drain' in docs/OPERATIONS.md)",
    )
    return parser


def _print_loads(dep, label: str) -> None:
    print(f"  load {label}:")
    for pid in sorted(dep.data):
        prov = dep.data[pid]
        print(f"    data/{pid}: {prov.page_count} page(s)")


def show_rebalance(dep) -> None:
    """Join a provider, show and execute the pm's migration plan, drain."""
    from repro.providers.rebalance import (
        collect_manifests, drain_provider, execute_rebalance,
    )

    print("\nelastic rebalance (hash_ring placement):")
    _print_loads(dep, "before join")
    new_id = dep.add_data_provider()
    print(f"  -> provider data/{new_id} joined the running cluster")

    manifests = collect_manifests(dep.driver, sorted(dep.data))
    plan = dep.pm.plan_rebalance(manifests)
    if plan is None:
        print("  migration plan: empty (every page already at its home)")
        return
    print(f"  migration plan #{plan['plan']}: {plan['total']} move(s)")
    for index, kind, key, src, dst, nbytes in plan["moves"]:
        arrow = f"data/{src} -> data/{dst}" if kind == "copy" else f"data/{src}"
        print(f"    [{index:3d}] {kind:4s} page {tuple(key)[2]:3d} "
              f"{arrow} ({nbytes} B)")
    summary = execute_rebalance(dep.driver, sorted(dep.data))
    print(f"  executed {summary['executed']} move(s), "
          f"committed={summary['committed']}")
    _print_loads(dep, "after rebalance")

    summary = drain_provider(dep.driver, sorted(dep.data), new_id)
    del dep.data[new_id]
    print(f"  -> drained data/{new_id} back out "
          f"({summary['executed']} move(s)); membership restored")
    _print_loads(dep, "after drain")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    pagesize = 4 * KB
    total = args.pages * pagesize
    if total & (total - 1):
        print("error: --pages must be a power of two", file=sys.stderr)
        return 2

    strategy = "hash_ring" if args.rebalance else "round_robin"
    dep = build_inproc(DeploymentSpec(n_data=4, n_meta=4, strategy=strategy))
    client = dep.client("inspector")
    blob = client.alloc(total, pagesize)
    inspector = TreeInspector(client)

    for step, entry in enumerate(args.writes, start=1):
        crashed = entry.endswith("!")
        page_str, count_str = entry.rstrip("!").split(":")
        page, count = int(page_str), int(count_str)
        if crashed:
            # a writer that dies between assign and complete: its version
            # stays in flight and every later version waits on it
            ticket = dep.vm.assign(blob, page * pagesize, count * pagesize)
            print(f"write #{step}: pages [{page}, {page + count}) -> "
                  f"version {ticket.version} assigned, writer crashed "
                  f"(never completes)")
            continue
        data = bytes([step % 251 + 1]) * (count * pagesize)
        res = client.write(blob, data, page * pagesize)
        published = "" if res.published else " [unpublished: blocked]"
        print(f"write #{step}: pages [{page}, {page + count}) -> "
              f"version {res.version} ({res.nodes_written} new nodes)"
              f"{published}")

    latest = client.latest(blob)
    print()
    for version in range(1, latest + 1):
        print(inspector.dump(blob, version))
        stats = inspector.sharing_stats(blob, version)
        print(f"  sharing: {stats.own_nodes} own + {stats.shared_nodes} "
              f"inherited nodes ({stats.sharing_ratio:.0%} reused)\n")

    print("version manager patch catalog:")
    for version, offset, size in dep.vm.patches(blob):
        print(f"  v{version}: [{offset}, +{size})")

    if args.stuck_writes:
        print("\nstuck writes (assigned, never completed):")
        rows = dep.vm.stuck_writes(blob)
        for version, offset, size, age in rows:
            print(f"  v{version}: patch [{offset}, +{size}), "
                  f"age {age} completion(s)")
        if not rows:
            print("  (none)")
        else:
            print("  -> later versions cannot publish past the gap; see "
                  "'Stuck writes' in docs/OPERATIONS.md")

    if args.rebalance:
        show_rebalance(dep)

    if args.metrics:
        from repro.obs.metrics import render_metrics, scrape_driver

        print()
        print(render_metrics(scrape_driver(dep.driver, source="inproc")))

    if args.diff:
        v1, v2 = args.diff
        ranges = changed_ranges(client, blob, v1, v2)
        print(f"\nchanged ranges v{v1} -> v{v2}:")
        for iv in ranges:
            print(f"  [{iv.offset}, +{iv.size})")
        if not ranges:
            print("  (none)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
