"""``python -m repro.tools.trace`` — trace an operation, export timelines.

Two subcommands:

``run`` launches a loopback TCP cluster (real node-agent OS processes —
every span crosses a process boundary, so the export's clock alignment
is exercised for real), executes a traced §VI-style write (and optional
reads), collects the spans from every actor through the ``telemetry``
control, aligns the per-process clocks, and exports::

    # Chrome trace-event JSON (open in chrome://tracing or Perfetto)
    python -m repro.tools.trace run --chrome out.json

    # the per-operation critical-path breakdown, plus self-validation
    python -m repro.tools.trace run --critical-path --check

``attach`` scrapes whatever spans a *live* cluster's actors currently
hold (uncounted control messages — attaching never perturbs the
workload) and exports them without alignment; serving-side spans from
one process share a clock domain, so per-actor timelines are exact and
cross-actor offsets are whatever the domains imply::

    python -m repro.tools.trace attach --endpoints @cluster.json \\
        --chrome attached.json

``--check`` (run mode) validates the whole chain — span schema, Chrome
document, ≥ 95 % op-window coverage after alignment, and the
histogram-vs-span reconciliation — and exits nonzero on any failure;
CI runs exactly this. ``main(argv)`` is a plain function, unit-testable
without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import DeploymentSpec
from repro.errors import RemoteError, ReproError
from repro.net.address import ClusterMap
from repro.net.tcp import TcpDriver
from repro.obs.export import (
    align_spans,
    chrome_trace,
    coverage,
    render_critical_path,
    service_totals,
    validate_chrome,
    validate_spans,
)
from repro.obs.metrics import collect_spans, reconcile, scrape_driver
from repro.obs.spans import CALLER, trace_operation
from repro.tools.metrics import load_endpoints

#: the acceptance bar --check enforces on the traced op's coverage
COVERAGE_FLOOR = 0.95


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace",
        description="Span-trace operations and export cross-process "
        "timelines (Chrome trace JSON, critical-path summaries).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="launch a loopback TCP cluster, run a traced write workload, "
        "export its timeline",
    )
    run.add_argument(
        "--data", type=int, default=4, help="data providers (default: 4)"
    )
    run.add_argument(
        "--meta", type=int, default=4, help="metadata providers (default: 4)"
    )
    run.add_argument(
        "--size",
        type=int,
        default=256 * 1024,
        help="bytes per traced write (default: 256 KiB)",
    )
    run.add_argument(
        "--pagesize", type=int, default=16384, help="page size (default: 16384)"
    )
    run.add_argument(
        "--reads",
        type=int,
        default=1,
        metavar="N",
        help="traced reads after the write (default: 1)",
    )
    _export_args(run)
    run.add_argument(
        "--check",
        action="store_true",
        help="validate span schema, Chrome document, >=95%% op coverage "
        "after alignment, and histogram reconciliation; exit 1 on failure",
    )

    attach = sub.add_parser(
        "attach",
        help="scrape the spans a live cluster currently holds and export "
        "them (read-only; control messages only)",
    )
    attach.add_argument(
        "--endpoints",
        required=True,
        metavar="JSON",
        help="actor-to-endpoint map, e.g. '{\"data/0\": \"host:7000\"}'; "
        "@FILE reads the map from disk",
    )
    attach.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="connect/scrape timeout per peer, seconds (default: 5)",
    )
    _export_args(attach)
    return parser


def _export_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--chrome",
        metavar="OUT.json",
        default=None,
        help="write the timeline as Chrome trace-event JSON (loadable in "
        "chrome://tracing and Perfetto)",
    )
    sub.add_argument(
        "--spans",
        metavar="OUT.json",
        default=None,
        help="write the raw aligned repro.spans/1 list as JSON",
    )
    sub.add_argument(
        "--critical-path",
        action="store_true",
        help="print the per-operation critical-path breakdown",
    )


def _export(args: argparse.Namespace, spans: list[dict]) -> None:
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(chrome_trace(spans), fh)
        print(f"chrome trace: {args.chrome} ({len(spans)} spans)")
    if args.spans:
        with open(args.spans, "w") as fh:
            json.dump(spans, fh)
        print(f"spans: {args.spans}")
    if args.critical_path:
        print(render_critical_path(spans))


def _run(args: argparse.Namespace) -> int:
    from repro.deploy.tcp import build_tcp

    spec = DeploymentSpec(n_data=args.data, n_meta=args.meta)
    ops: list[tuple[str, int]] = []
    with build_tcp(spec) as dep:
        client = dep.client("trace-client")
        blob = client.alloc(
            max(args.size * 4, args.pagesize * 4), args.pagesize
        )
        # one untraced warm-up write: connection setup and allocator
        # first-touch happen here, so the traced op is steady-state
        client.write_virtual(blob, 0, args.size)
        CALLER.clear()
        with trace_operation(f"write-{args.size}B") as tid:
            client.write_virtual(blob, 0, args.size)
        ops.append((f"write-{args.size}B", tid))
        for i in range(args.reads):
            with trace_operation(f"read-{args.size}B") as tid:
                client.read(blob, 0, args.size, with_data=False)
            ops.append((f"read-{args.size}B", tid))
        doc = dep.metrics()
    spans = collect_spans(doc) + CALLER.snapshot()
    aligned, offsets = align_spans(spans)
    cov = coverage(aligned)
    domains = len(offsets)
    print(
        f"traced {len(ops)} op(s): {len(spans)} spans across "
        f"{domains} clock domain(s)"
    )
    for name, tid in ops:
        print(f"  {name}: trace {tid}, coverage {cov.get(tid, 0.0):.1%}")
    _export(args, aligned)
    if args.check:
        return _check(doc, aligned, cov, ops)
    return 0


def _check(
    doc: dict, aligned: list[dict], cov: dict[int, float], ops: list
) -> int:
    problems = [f"schema: {p}" for p in validate_spans(aligned)]
    problems += [
        f"chrome: {p}" for p in validate_chrome(chrome_trace(aligned))
    ]
    problems += [f"reconcile: {p}" for p in reconcile(doc)]
    for name, tid in ops:
        c = cov.get(tid, 0.0)
        if c < COVERAGE_FLOOR:
            problems.append(
                f"coverage: {name} (trace {tid}) covers {c:.1%} of the op "
                f"window, below the {COVERAGE_FLOOR:.0%} floor"
            )
    # every serving span must nest inside its parent rpc span's window
    by_id = {s["span"]: s for s in aligned}
    for s in aligned:
        if s["kind"] != "server":
            continue
        parent = by_id.get(s["parent"])
        if parent is None:
            continue
        if s["start_ns"] < parent["start_ns"] or \
                s["end_ns"] > parent["end_ns"]:
            problems.append(
                f"nesting: server span {s['name']}@{s['actor']} escapes its "
                f"rpc window after alignment"
            )
    for problem in problems:
        print(f"check: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"check: OK ({len(aligned)} spans)", file=sys.stderr)
    return 0


def _attach(args: argparse.Namespace) -> int:
    try:
        cluster_map = ClusterMap.from_spec(load_endpoints(args.endpoints))
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    driver = TcpDriver(connect_timeout=args.timeout)
    try:
        driver.register_map(cluster_map)
        try:
            driver.wait_connected(timeout=args.timeout)
            doc = scrape_driver(driver, source="tcp")
        except (TimeoutError, RemoteError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    finally:
        driver.abort()  # read-only: never stop the operator's cluster
    spans = collect_spans(doc)
    domains = {s["domain"] for s in spans}
    traces = {s["trace"] for s in spans}
    print(
        f"attached: {len(spans)} spans, {len(traces)} trace(s), "
        f"{len(domains)} clock domain(s) (exported unaligned)"
    )
    totals = service_totals(spans)
    for method in sorted(totals):
        row = totals[method]
        print(
            f"  {method:<26} {row['count']:>5}x  "
            f"service {row['service_ns'] / 1e6:>9.3f} ms"
        )
    _export(args, spans)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    return _attach(args)


if __name__ == "__main__":
    sys.exit(main())
