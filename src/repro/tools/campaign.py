"""CLI: run a synthetic supernova survey end-to-end.

Example::

    python -m repro.tools.campaign --tiles 3 3 --epochs 8 \
        --supernovae 4 --variables 5 --seed 42
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import DeploymentSpec
from repro.deploy.inproc import build_inproc
from repro.sky.pipeline import SupernovaPipeline
from repro.sky.skymodel import SkyModel, SkySpec
from repro.util.sizes import human_size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.campaign",
        description="Synthetic supernova survey over the blob service.",
    )
    parser.add_argument("--tiles", type=int, nargs=2, default=(3, 3),
                        metavar=("X", "Y"), help="sky grid (default 3 3)")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--supernovae", type=int, default=4)
    parser.add_argument("--variables", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--providers", type=int, default=8,
                        help="data/metadata providers (default 8)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = SkySpec(tiles_x=args.tiles[0], tiles_y=args.tiles[1], seed=args.seed)
    model = SkyModel.with_random_events(
        spec, args.supernovae, args.variables, epochs=args.epochs
    )
    dep = build_inproc(
        DeploymentSpec(n_data=args.providers, n_meta=args.providers)
    )
    pipe = SupernovaPipeline(model, dep.client("survey"))
    report = pipe.run_campaign(epochs=args.epochs)

    print(f"sky: {spec.tiles_x}x{spec.tiles_y} tiles, {args.epochs} epochs, "
          f"blob {human_size(pipe.mapping.blob_size)}")
    print(f"tracks: {len(report.tracks)}")
    for track in report.tracks:
        print(f"  tile {track.tile} ({track.x:6.1f}, {track.y:6.1f}) "
              f"-> {track.label}")
    print(f"precision {report.precision:.2f}  recall {report.recall:.2f}  "
          f"(injected {report.true_supernovae}, "
          f"claimed {report.claimed_supernovae}, "
          f"matched {report.matched_supernovae})")
    print(f"I/O: {human_size(report.bytes_written)} written, "
          f"{human_size(report.bytes_read)} read")
    return 0 if report.recall >= 0.5 else 1


if __name__ == "__main__":
    sys.exit(main())
