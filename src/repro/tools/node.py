"""``python -m repro.tools.node`` — run one cluster node agent.

The deployment unit of the TCP cluster: starts a
:class:`~repro.net.node.NodeAgent` hosting the requested actors and
serves until every one of them receives the driver's ``shutdown``
control, then exits 0. The same invocation works bound to a loopback
port (single-host CI clusters, which :func:`repro.deploy.tcp.build_tcp`
launches automatically) and bound to a real interface on a cluster host
(the operator runbook is ``docs/OPERATIONS.md``):

    # node 3 of a cluster: one data + one metadata provider, paper layout
    python -m repro.tools.node --host 10.0.0.13 --port 7000 \\
        --actor data/3 --actor meta/3 --pm 10.0.0.9:7002

    # the control plane on its own machines (the paper's layout)
    python -m repro.tools.node --host 10.0.0.8 --port 7001 --actor vm
    python -m repro.tools.node --host 10.0.0.9 --port 7002 --actor pm

    # ephemeral port: the agent prints "READY <host> <port>" on stdout
    python -m repro.tools.node --port 0 --actor data/0

``--pm`` gives a data-hosting agent the provider manager's endpoint: the
agent registers each hosted data provider with the pm at start (retrying
with backoff until the pm is reachable), which is how a restarted
storage node rejoins the allocation pool with no operator action.

The ``READY`` line is the launch protocol: it is printed (and flushed)
only once the listener is bound, so a launcher may connect the moment it
reads the line. ``main(argv)`` is a plain function, unit-testable
without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.errors import ConfigError
from repro.net.node import NodeAgent, build_actor
from repro.obs.logconfig import configure_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.node",
        description="Serve blob-store actors on one TCP endpoint.",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback; use the node's "
        "cluster-facing address on real deployments)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind; 0 picks an ephemeral port, announced on "
        "the READY line (default: 0)",
    )
    parser.add_argument(
        "--actor",
        action="append",
        dest="actors",
        metavar="NAME",
        default=[],
        help="actor to host: data/N, meta/N, vm or pm; repeatable "
        "(the paper's layout colocates data/i and meta/i per storage "
        "node and gives vm and pm their own hosts)",
    )
    parser.add_argument(
        "--pm",
        metavar="HOST:PORT",
        default=None,
        help="endpoint of the provider manager's agent; hosted data "
        "providers register themselves there at start (retried with "
        "backoff, so start order does not matter)",
    )
    parser.add_argument(
        "--checksum",
        action="store_true",
        help="data providers checksum pages on put and verify on get "
        "(DeploymentSpec.page_checksums integrity mode)",
    )
    parser.add_argument(
        "--strategy",
        default="round_robin",
        help="page-allocation strategy for a hosted pm actor "
        "(round_robin / least_loaded / random_k / hash_ring — hash_ring "
        "enables elastic membership; default: round_robin)",
    )
    parser.add_argument(
        "--strategy-kwargs",
        metavar="JSON",
        default="{}",
        help="JSON keyword arguments for --strategy "
        "(e.g. '{\"k\": 2, \"seed\": 7}' for random_k)",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=1,
        help="copies of each page a hosted pm allocates (default: 1, "
        "the paper's setting)",
    )
    parser.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="durable state directory for hosted vm/pm actors (created "
        "if missing, locked against concurrent agents); restarting the "
        "agent on the same directory resumes its incarnation",
    )
    parser.add_argument(
        "--fsync",
        choices=("never", "always"),
        default="never",
        help="fsync policy for --state-dir journals: 'never' flushes "
        "to the OS only (survives agent kill), 'always' fsyncs every "
        "record (survives power loss; default: never)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=1024,
        metavar="N",
        help="compact the journal into a snapshot every N records "
        "(0 disables compaction; default: 1024)",
    )
    parser.add_argument(
        "--flight-recorder",
        metavar="DIR",
        default=None,
        help="sample this agent's metrics into a size-bounded JSONL "
        "segment ring in DIR (created if missing); a crashed agent "
        "leaves its last seconds of metrics there for post-mortem "
        "(default: off)",
    )
    parser.add_argument(
        "--flight-interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="seconds between flight-recorder samples (default: 1.0)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.actors:
        print("error: at least one --actor is required", file=sys.stderr)
        return 2
    # Surface the repro loggers on stderr: recovery summaries (INFO on
    # repro.vm / repro.pm), torn-tail truncations (WARNING on
    # repro.journal) and slow-span telemetry (DEBUG on repro.obs) are
    # operator signals — without a handler Python drops everything below
    # WARNING. The handler goes on the "repro" root only (never the
    # global root, so an embedding program's logging config is untouched)
    # and stdout stays reserved for READY. Programmatic NodeAgent users
    # get the same behavior with one repro.obs.configure_logging() call.
    configure_logging(logging.INFO)
    lock = None
    try:
        if args.state_dir is not None:
            # Validate and lock the state dir up front — BEFORE any
            # journal opens — so two agents can never interleave log
            # appends on the same directory.
            from pathlib import Path

            from repro.core.journal import StateDirLock

            state_path = Path(args.state_dir)
            try:
                state_path.mkdir(parents=True, exist_ok=True)
            except (OSError, NotADirectoryError) as exc:
                raise ConfigError(
                    f"--state-dir {args.state_dir}: not a usable directory "
                    f"({exc})"
                ) from None
            lock = StateDirLock(state_path).acquire()
        strategy_kwargs = json.loads(args.strategy_kwargs)
        if not isinstance(strategy_kwargs, dict):
            raise ConfigError(
                f"--strategy-kwargs must be a JSON object, got {args.strategy_kwargs!r}"
            )
        actors = dict(
            build_actor(
                name,
                checksum=args.checksum,
                strategy=args.strategy,
                strategy_kwargs=strategy_kwargs,
                replication=args.replication,
                state_dir=args.state_dir,
                fsync=args.fsync,
                snapshot_every=args.snapshot_every or None,
            )
            for name in args.actors
        )
        if len(actors) != len(args.actors):
            raise ConfigError(f"duplicate --actor in {args.actors}")
        agent = NodeAgent(
            actors, host=args.host, port=args.port, pm_endpoint=args.pm
        )
    except (ConfigError, TypeError, ValueError, OSError) as exc:
        # TypeError covers --strategy-kwargs that do not fit the chosen
        # strategy's constructor (e.g. '{"k": 2}' with round_robin)
        print(f"error: {exc}", file=sys.stderr)
        if lock is not None:
            lock.release()
        return 2
    recorder = None
    try:
        if args.flight_recorder is not None:
            from repro.obs.metrics import agent_metrics
            from repro.obs.recorder import FlightRecorder

            recorder = FlightRecorder(
                args.flight_recorder,
                lambda: agent_metrics(agent),
                interval_s=args.flight_interval,
            ).start()
        print(f"READY {agent.endpoint.host} {agent.endpoint.port}", flush=True)
        agent.serve_forever()
    finally:
        if recorder is not None:
            recorder.stop()
        if lock is not None:
            lock.release()
    return 0


if __name__ == "__main__":
    sys.exit(main())
