"""``python -m repro.tools.node`` — run one cluster node agent.

The deployment unit of the TCP cluster: starts a
:class:`~repro.net.node.NodeAgent` hosting the requested actors and
serves until every one of them receives the driver's ``shutdown``
control, then exits 0. The same invocation works bound to a loopback
port (single-host CI clusters, which :func:`repro.deploy.tcp.build_tcp`
launches automatically) and bound to a real interface on a storage host:

    # node 3 of a cluster: one data + one metadata provider, paper layout
    python -m repro.tools.node --host 10.0.0.13 --port 7000 \\
        --actor data/3 --actor meta/3

    # ephemeral port: the agent prints "READY <host> <port>" on stdout
    python -m repro.tools.node --port 0 --actor data/0

The ``READY`` line is the launch protocol: it is printed (and flushed)
only once the listener is bound, so a launcher may connect the moment it
reads the line. ``main(argv)`` is a plain function, unit-testable
without a subprocess.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigError
from repro.net.node import NodeAgent, build_actor


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.node",
        description="Serve blob-store actors on one TCP endpoint.",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback; use the node's "
        "cluster-facing address on real deployments)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind; 0 picks an ephemeral port, announced on "
        "the READY line (default: 0)",
    )
    parser.add_argument(
        "--actor",
        action="append",
        dest="actors",
        metavar="NAME",
        default=[],
        help="actor to host: data/N, meta/N or vm; repeatable "
        "(the paper's layout colocates data/i and meta/i per node)",
    )
    parser.add_argument(
        "--checksum",
        action="store_true",
        help="data providers checksum pages on put and verify on get "
        "(DeploymentSpec.page_checksums integrity mode)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.actors:
        print("error: at least one --actor is required", file=sys.stderr)
        return 2
    try:
        actors = dict(
            build_actor(name, checksum=args.checksum) for name in args.actors
        )
        if len(actors) != len(args.actors):
            raise ConfigError(f"duplicate --actor in {args.actors}")
        agent = NodeAgent(actors, host=args.host, port=args.port)
    except (ConfigError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"READY {agent.endpoint.host} {agent.endpoint.port}", flush=True)
    agent.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
