"""``python -m repro.tools.many_clients`` — async tail-latency sweep.

Launches a loopback TCP cluster with the asyncio client driver
(``build_tcp(client="aio")``), runs N concurrent coroutine clients per
tier — each one simulated open connection performing one page write
plus reads of its own page — and prints the Read/Write p50/p95/p99
table the benchmark family publishes (or the raw series with
``--json``)::

    # the CI fast tier
    python -m repro.tools.many_clients --clients 256

    # the paper-style sweep up to ten thousand open connections
    python -m repro.tools.many_clients --clients 256,2048,10240

Latencies are host wall-clock against real sockets; use the same host
back to back when comparing runs. ``main(argv)`` is a plain function,
unit-testable without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.figures import render_series_table
from repro.bench.many_clients import many_clients_quantiles
from repro.errors import ReproError
from repro.util.sizes import KB


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.many_clients",
        description="Measure asyncio-client tail latency against a real "
        "loopback TCP cluster.",
    )
    parser.add_argument(
        "--clients",
        default="256,2048",
        metavar="N[,N...]",
        help="comma-separated client-count tiers (default: 256,2048)",
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=2,
        help="reads of its own page each client performs after its write "
        "(default: 2)",
    )
    parser.add_argument(
        "--data", type=int, default=4, help="data agents (default: 4)"
    )
    parser.add_argument(
        "--meta", type=int, default=2, help="meta agents (default: 2)"
    )
    parser.add_argument(
        "--page",
        type=int,
        default=4 * KB,
        help="page size in bytes, power of two (default: 4096)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the series and counters as JSON instead of the table",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        tiers = tuple(int(part) for part in args.clients.split(","))
        if not tiers or any(n < 1 for n in tiers):
            raise ValueError(f"--clients needs positive tiers, got {tiers}")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        fig = many_clients_quantiles(
            tiers,
            reads_per_client=args.reads,
            n_data=args.data,
            n_meta=args.meta,
            page=args.page,
        )
    except (ReproError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        doc = {
            "figure_id": fig.figure_id,
            "series": [
                {"label": s.label, "x": s.x, "y": s.y} for s in fig.series
            ],
            "counters": fig.counters,
        }
        json.dump(doc, sys.stdout, indent=2)
        print()
    else:
        print(render_series_table(fig, y_format=lambda v: f"{v:.2f}"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
