"""``python -m repro.tools.metrics`` — scrape a live cluster's telemetry.

Dials every actor of a running TCP cluster (the same ``ClusterMap``
endpoint grammar the other tools use), round-trips the ``telemetry``
control on each, and prints the unified per-actor/per-method quantile
table (or the raw ``repro.metrics/1`` document with ``--json``). The
scrape is **read-only and invisible**: telemetry travels as a control
message, which neither side counts as a wire RPC, and the driver hangs
up with ``abort()`` — the operator's agents keep serving::

    # table against a 2-node loopback cluster
    python -m repro.tools.metrics \\
        --endpoints '{"data/0": "127.0.0.1:7000", "meta/0": "127.0.0.1:7000",
                      "data/1": "127.0.0.1:7001", "meta/1": "127.0.0.1:7001"}'

    # machine-readable, endpoints from a file, with the reconciliation
    # check (per-method histogram counts must equal served sub-calls)
    python -m repro.tools.metrics --endpoints @cluster.json --json --check

    # live operation: re-scrape every 2 s, reprinting the table with a
    # Δcount column against the previous scrape (Ctrl-C to stop)
    python -m repro.tools.metrics --endpoints @cluster.json --watch 2

``main(argv)`` is a plain function, unit-testable without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import RemoteError, ReproError
from repro.net.address import ClusterMap
from repro.net.tcp import TcpDriver
from repro.obs.metrics import reconcile, render_metrics, scrape_driver


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.metrics",
        description="Scrape per-RPC latency telemetry from a live cluster.",
    )
    parser.add_argument(
        "--endpoints",
        required=True,
        metavar="JSON",
        help="actor-to-endpoint map, e.g. '{\"data/0\": \"host:7000\"}'; "
        "@FILE (or a bare path to a .json file) reads the map from disk",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the raw repro.metrics/1 document instead of the table",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the reconciliation invariant (histogram sample totals "
        "== served sub-calls per actor); exit 1 if any actor disagrees",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="connect/scrape timeout per peer, seconds (default: 5)",
    )
    parser.add_argument(
        "--slow",
        type=int,
        default=8,
        metavar="N",
        help="slow spans shown in the table (default: 8)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep the connections open and re-scrape every SECONDS, "
        "reprinting the table with a Δcount column of calls recorded "
        "since the previous scrape (Ctrl-C to stop)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # test hook: stop --watch after N rescrapes
    )
    return parser


def load_endpoints(spec: str) -> dict[str, str]:
    """Parse the ``--endpoints`` argument: inline JSON, ``@FILE``, or a
    bare path ending in ``.json``."""
    if spec.startswith("@"):
        spec = open(spec[1:]).read()
    elif spec.endswith(".json"):
        spec = open(spec).read()
    endpoints = json.loads(spec)
    if not isinstance(endpoints, dict) or not endpoints:
        raise ValueError(f"--endpoints must be a non-empty JSON object")
    return endpoints


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        cluster_map = ClusterMap.from_spec(load_endpoints(args.endpoints))
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    driver = TcpDriver(connect_timeout=args.timeout)
    try:
        driver.register_map(cluster_map)
        try:
            driver.wait_connected(timeout=args.timeout)
            metrics = scrape_driver(driver, source="tcp")
            if args.as_json:
                json.dump(metrics, sys.stdout, indent=2)
                print()
            else:
                print(render_metrics(metrics, slow_limit=args.slow))
            # --watch: live operation — re-scrape on a cadence and reprint
            # with deltas against the previous scrape. Still control-only
            # traffic: watching never perturbs the workload counters.
            iterations = args.iterations
            while args.watch is not None and (
                iterations is None or iterations > 0
            ):
                time.sleep(args.watch)
                previous, metrics = metrics, scrape_driver(
                    driver, source="tcp"
                )
                if args.as_json:
                    json.dump(metrics, sys.stdout, indent=2)
                    print()
                else:
                    print(
                        render_metrics(
                            metrics, slow_limit=args.slow, prev=previous
                        )
                    )
                if iterations is not None:
                    iterations -= 1
        except (TimeoutError, RemoteError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            pass  # Ctrl-C ends a --watch session cleanly
    finally:
        # hang up without shutdown controls: scraping an operator's
        # cluster must never stop it
        driver.abort()
    if args.check:
        problems = reconcile(metrics)
        for problem in problems:
            print(f"reconcile: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"reconcile: OK ({len(metrics['actors'])} actor(s))",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
