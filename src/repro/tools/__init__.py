"""Command-line tools shipped with the release.

- ``python -m repro.tools.figures`` — regenerate any paper figure/ablation
  on the simulated cluster and print the measured-vs-paper table;
- ``python -m repro.tools.campaign`` — run a synthetic supernova survey
  end-to-end and report detection quality;
- ``python -m repro.tools.inspect`` — demo blob: dump segment trees,
  structural sharing and diffs for a scripted write history;
- ``python -m repro.tools.node`` — run one cluster node agent: host
  ``data/N``/``meta/N`` actors on a TCP endpoint for the TCP deployment
  (loopback CI clusters and real hosts share this entrypoint).

All tools are plain ``main(argv)`` functions, so they are unit-testable
without subprocesses.
"""
