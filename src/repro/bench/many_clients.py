"""Many-client tail latency: the asyncio driver under thousands of clients.

The thread-per-client deployments top out at a few dozen concurrent
client programs — each one costs an OS thread, and the interesting
regime for a storage *service* starts where threads stop scaling. The
:class:`~repro.net.aio.AioDriver` exists for exactly that regime: one
event loop multiplexes every peer socket, so a "client" is a coroutine
plus a pending-call table entry, and ten thousand of them need neither
ten thousand threads nor ten thousand file descriptors.

This module drives a *real* loopback TCP cluster (node-agent OS
processes behind the length-prefixed wire codec — nothing simulated)
with N concurrent :class:`~repro.core.client.AsyncBlobClient` programs
per tier. Every client awaits one page WRITE then reads its page back,
and each operation's host duration feeds a
:class:`~repro.obs.hist.LatencyHistogram` — the identical log-bucketed
accumulator the live telemetry path records into — from which the
figure plots Read/Write p50/p95/p99 versus client count.

Numbers are host wall-clock (NOT simulated, NOT deterministic): results
are published under ``benchmarks/out`` for trajectory tracking but are
deliberately never pinned in ``benchmarks/baseline/``.
"""

from __future__ import annotations

import asyncio
import time

from repro.bench.figures import FigureData, Series
from repro.core.config import DeploymentSpec
from repro.deploy.tcp import build_tcp
from repro.obs.hist import LatencyHistogram
from repro.util.sizes import KB, human_size

#: per-op ceiling generous enough for a loaded CI host; a tier that
#: cannot finish inside this is a hang, not a slow run
TIER_TIMEOUT = 600.0


async def _client_program(
    dep,
    idx: int,
    blob: str,
    page: int,
    reads_per_client: int,
    gate: asyncio.Event,
    read_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
) -> None:
    """One simulated open connection: connect, write a page, read it back.

    The gate models the "open" in open connection: every client of the
    tier is constructed and parked before any operation starts, so the
    measured quantiles reflect N *concurrent* programs, not a ramp.
    """
    client = dep.async_client(f"mc-{idx}")
    payload = bytes([(idx % 251) + 1]) * page
    offset = idx * page
    await gate.wait()
    t0 = time.perf_counter_ns()
    await client.write(blob, payload, offset)
    write_hist.record(time.perf_counter_ns() - t0)
    for _ in range(reads_per_client):
        t0 = time.perf_counter_ns()
        data = await client.read_bytes(blob, offset, page)
        read_hist.record(time.perf_counter_ns() - t0)
        if data != payload:
            raise AssertionError(f"client {idx} read back corrupt bytes")


async def _run_tier(
    dep, n_clients: int, blob: str, page: int, reads_per_client: int
) -> tuple[LatencyHistogram, LatencyHistogram]:
    """Run one client-count tier to completion on the driver's loop."""
    read_hist = LatencyHistogram()
    write_hist = LatencyHistogram()
    gate = asyncio.Event()
    tasks = [
        asyncio.ensure_future(
            _client_program(
                dep, i, blob, page, reads_per_client, gate, read_hist, write_hist
            )
        )
        for i in range(n_clients)
    ]
    gate.set()
    try:
        await asyncio.gather(*tasks)
    finally:
        for t in tasks:
            t.cancel()
    return read_hist, write_hist


def many_clients_quantiles(
    client_counts: tuple[int, ...] = (256, 2048),
    *,
    reads_per_client: int = 2,
    n_data: int = 4,
    n_meta: int = 2,
    page: int = 4 * KB,
) -> FigureData:
    """Read/Write latency quantiles vs concurrent asyncio clients.

    One loopback TCP cluster (``build_tcp(client="aio")``) is built and
    reused across all tiers; each tier launches ``client_counts[i]``
    coroutine clients that all start together behind a gate, perform one
    page write plus ``reads_per_client`` reads of their own page, and
    record per-operation host nanoseconds into Read/Write histograms.
    Histograms are recorded on the single event-loop thread — the
    single-writer convention :class:`~repro.obs.hist.LatencyHistogram`
    documents — and quantiles are reported in milliseconds.
    """
    spec = DeploymentSpec(
        n_data=n_data, n_meta=n_meta, cache_capacity=0
    )
    fig = FigureData(
        figure_id="Many clients",
        title="Async client tail latency under simulated open connections",
        xlabel="concurrent asyncio clients",
        ylabel="operation latency (ms)",
        notes=f"{human_size(page)} pages on a real loopback TCP cluster "
        f"({n_data} data + {n_meta} meta agents), 1 write + "
        f"{reads_per_client} reads per client; host wall-clock, never "
        "baseline-pinned",
    )
    quantiles = {
        f"{kind} {q}": [] for kind in ("Read", "Write") for q in ("p50", "p95", "p99")
    }
    with build_tcp(spec, client="aio") as dep:
        setup = dep.client("mc-setup")
        # one private page per client at the widest tier, rounded up to the
        # power-of-two total the tree geometry requires
        total = 1 << (max(client_counts) * page - 1).bit_length()
        blob = setup.alloc(total, page)
        for n_clients in client_counts:
            read_hist, write_hist = dep.driver.run_async(
                _run_tier(dep, n_clients, blob, page, reads_per_client),
                timeout=TIER_TIMEOUT,
            )
            assert write_hist.count == n_clients
            assert read_hist.count == n_clients * reads_per_client
            for kind, hist in (("Read", read_hist), ("Write", write_hist)):
                for q, p in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    quantiles[f"{kind} {q}"].append(hist.quantile(p) / 1e6)
        transport = dep.driver.transport_stats()
        served = sum(
            rpcs for rpcs, _calls in dep.driver.server_stats().values()
        )
    for label, ys in quantiles.items():
        fig.series.append(Series(label, list(client_counts), ys))
    fig.counters = {
        "wire_rpcs_served": served,
        "batches": transport["batches"],
        "queue_submissions": transport["queue_submissions"],
        "completion_wakeups": transport["completion_wakeups"],
    }
    return fig
