"""Workload generators for the benchmark harness.

Reproduces the paper's access patterns: single-client segment sweeps for
the metadata-overhead experiments, and the concurrent-clients loop —
"access various disjoint segments within a 1 GB interval of the data
string in a 100-iteration loop" — for the throughput experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.deploy.simulated import SimClient, SimDeployment
from repro.sim.engine import Event
from repro.util.rng import substream
from repro.util.sizes import GB


@dataclass
class SegmentPicker:
    """Per-client pseudo-random disjoint segment selector.

    The window is divided into ``window // segment`` slots; each client
    walks its own seeded permutation of the slots, re-permuting every lap.
    Concurrent clients therefore hit *different* slots at any instant
    (disjoint segments, as in the paper) while all slots get used.
    """

    window: int = 1 * GB
    segment: int = 8 << 20
    base: int = 0
    seed: int = 1234

    def offsets(self, client_index: int) -> Generator[int, None, None]:
        nslots = self.window // self.segment
        if nslots < 1:
            raise ValueError("window smaller than one segment")
        rng = substream(self.seed, "picker", client_index)
        while True:
            for slot in rng.permutation(nslots):
                yield self.base + int(slot) * self.segment


def populate_window(
    client: SimClient, blob_id: str, window: int, segment: int, base: int = 0
) -> int:
    """Pre-write a window so reads have data under them; returns versions
    written. Runs synchronously on the simulated clock (setup phase)."""
    versions = 0
    for offset in range(base, base + window, segment):
        client.write_virtual(blob_id, offset, segment)
        versions += 1
    return versions


def client_access_loop(
    dep: SimDeployment,
    client: SimClient,
    blob_id: str,
    picker: SegmentPicker,
    client_index: int,
    iterations: int,
    kind: str,
    durations: list[float],
) -> Generator[Event, None, None]:
    """Simulated process: one client's unsynchronized access loop.

    Appends each operation's simulated duration to ``durations``.
    """
    offsets = picker.offsets(client_index)
    for _ in range(iterations):
        offset = next(offsets)
        start = dep.sim.now
        if kind == "write":
            proto = client.write_virtual_proto(blob_id, offset, picker.segment)
        elif kind == "read":
            proto = client.read_virtual_proto(blob_id, offset, picker.segment)
        else:
            raise ValueError(f"unknown access kind {kind!r}")
        yield from dep.executor.run_protocol(proto, client.node)
        durations.append(dep.sim.now - start)


def run_concurrent_clients(
    dep: SimDeployment,
    blob_id: str,
    n_clients: int,
    iterations: int,
    picker: SegmentPicker,
    kind: str,
    cached: bool = False,
) -> list[float]:
    """Run the paper's concurrent-clients experiment for one point.

    Returns per-client mean bandwidth in MB/s. ``cached=True`` gives each
    reader a metadata cache and a warm-up lap over every slot first (the
    paper's "Read (cached metadata)" series; the uncached series disables
    caching entirely, the paper's worst case).
    """
    per_client = run_concurrent_client_durations(
        dep, blob_id, n_clients, iterations, picker, kind, cached=cached
    )
    mb = picker.segment / (1 << 20)
    return [mb * len(ds) / sum(ds) for ds in per_client]


def run_concurrent_client_durations(
    dep: SimDeployment,
    blob_id: str,
    n_clients: int,
    iterations: int,
    picker: SegmentPicker,
    kind: str,
    cached: bool = False,
) -> list[list[float]]:
    """The same experiment, returning every operation's simulated duration
    (seconds), one list per client in client order.

    This is the raw series behind both the bandwidth means
    (:func:`run_concurrent_clients`) and the tail-latency quantiles
    (``benchmarks/test_tail_latency.py``): per-op durations preserve the
    distribution that a mean throws away.
    """
    clients = [
        dep.client(i, cached=cached, name=f"{kind}-client-{i}")
        for i in range(n_clients)
    ]
    if cached and kind == "read":
        # Steady-state cached reads: warm each client's cache out of band
        # (zero simulated time; the paper measures the warm regime). One
        # provider sweep fills a template; every client's private cache
        # bulk-adopts it at C speed.
        dep.warm_client_cache(clients[0], blob_id)
        template = clients[0].cache
        assert template is not None
        for client in clients[1:]:
            assert client.cache is not None
            client.cache.preload_from(template)
    per_client: list[list[float]] = [[] for _ in range(n_clients)]
    procs = [
        dep.sim.process(
            client_access_loop(
                dep, clients[i], blob_id, picker, i, iterations, kind, per_client[i]
            ),
            name=f"{kind}-loop-{i}",
        )
        for i in range(n_clients)
    ]
    dep.sim.run(until=dep.sim.all_of(procs))
    return per_client
