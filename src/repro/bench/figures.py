"""Figure generators: one function per paper figure + ablations.

Each generator builds fresh simulated deployments, runs the paper's
workload, and returns a :class:`FigureData` with measured series plus the
paper's (approximately digitized) curves for side-by-side comparison. The
bench targets under ``benchmarks/`` print these tables and assert shape
properties; EXPERIMENTS.md records a snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.locked import LockedClusterSim
from repro.bench.workloads import (
    SegmentPicker,
    populate_window,
    run_concurrent_client_durations,
    run_concurrent_clients,
)
from repro.core.config import DeploymentSpec
from repro.deploy.simulated import SimDeployment
from repro.sim.network import ClusterSpec
from repro.util.sizes import GB, KB, MB, TB, human_size

#: the paper's testbed geometry
PAPER_TOTAL_SIZE = 1 * TB
PAPER_PAGESIZE = 64 * KB
#: Figure 3(a)/(b) x-axis (segment sizes)
PAPER_SEGMENT_SIZES = (64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB)
#: Figure 3(a)/(b) provider counts
PAPER_PROVIDER_COUNTS = (10, 20, 40)

# Approximate values digitized from the published plots (seconds; MB/s for
# 3c). Used for *shape* comparison only — the paper never tabulates them.
PAPER_FIG3A = {
    10: (0.006, 0.011, 0.021, 0.043, 0.092),
    20: (0.007, 0.012, 0.023, 0.047, 0.100),
    40: (0.008, 0.014, 0.026, 0.052, 0.110),
}
PAPER_FIG3B = {
    10: (0.010, 0.018, 0.038, 0.080, 0.165),
    20: (0.009, 0.015, 0.030, 0.062, 0.130),
    40: (0.008, 0.013, 0.026, 0.053, 0.110),
}
PAPER_FIG3C_CLIENTS = (1, 4, 8, 12, 16, 20)
PAPER_FIG3C = {
    "read": (66.0, 65.0, 64.0, 63.0, 62.0, 61.0),
    "write": (72.0, 71.0, 70.0, 69.0, 68.0, 67.0),
    "read_cached": (84.0, 83.0, 82.5, 82.0, 81.5, 81.0),
}


@dataclass
class Series:
    label: str
    x: list
    y: list


@dataclass
class FigureData:
    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    paper: list[Series] = field(default_factory=list)
    notes: str = ""
    #: engine-load counters summed over every deployment the figure ran
    #: (events processed, wire RPCs, ... — see SimDeployment.counters())
    counters: dict = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def absorb_counters(self, dep) -> None:
        """Accumulate a finished deployment's engine counters."""
        totals = self.counters
        for key, value in dep.counters().items():
            totals[key] = totals.get(key, 0) + value


def render_series_table(fig: FigureData, x_format=str, y_format=None) -> str:
    """Plain-text rendering of a figure: measured next to paper curves."""
    y_format = y_format or (lambda v: f"{v:.4f}")
    lines = [f"{fig.figure_id}: {fig.title}", f"  x = {fig.xlabel}; y = {fig.ylabel}"]
    all_series = [(s, "measured") for s in fig.series] + [
        (s, "paper") for s in fig.paper
    ]
    for s, origin in all_series:
        lines.append(f"  [{origin}] {s.label}")
        xs = "  ".join(f"{x_format(x):>10}" for x in s.x)
        ys = "  ".join(f"{y_format(y):>10}" for y in s.y)
        lines.append(f"    x: {xs}")
        lines.append(f"    y: {ys}")
    if fig.notes:
        lines.append(f"  note: {fig.notes}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 3(a): metadata overhead, single client, READs
# ---------------------------------------------------------------------------


def fig3a_metadata_read(
    sizes: tuple[int, ...] = PAPER_SEGMENT_SIZES,
    provider_counts: tuple[int, ...] = PAPER_PROVIDER_COUNTS,
    cluster: ClusterSpec | None = None,
) -> FigureData:
    """Time for metadata to be completely read, vs segment size.

    Workload (paper §V.C): 1 TB blob, 64 KB pages, a single client, N
    nodes each hosting one data and one metadata provider; the client
    writes then reads segments of growing size; we plot the tree-descent
    phase of the READ.
    """
    fig = FigureData(
        figure_id="Fig 3(a)",
        title="Metadata overhead, single client: reads",
        xlabel="segment size",
        ylabel="time (s)",
        notes="metadata phase of READ = version_resolved .. metadata_read",
    )
    for n in provider_counts:
        dep = SimDeployment(
            DeploymentSpec(n_data=n, n_meta=n, n_clients=1, cache_capacity=0),
            cluster=cluster,
        )
        blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
        client = dep.client(0, cached=False)
        ys = []
        for i, size in enumerate(sizes):
            offset = i * GB  # independent regions of the 1 TB blob
            client.write_virtual(blob, offset, size)
            trace: dict[str, float] = {}
            client.run(client.read_virtual_proto(blob, offset, size, trace=trace))
            ys.append(trace["metadata_read"] - trace["version_resolved"])
        fig.series.append(Series(f"{n} providers", list(sizes), ys))
        fig.absorb_counters(dep)
    for n, ys in PAPER_FIG3A.items():
        if n in provider_counts:
            fig.paper.append(Series(f"{n} providers", list(PAPER_SEGMENT_SIZES), list(ys)))
    return fig


# ---------------------------------------------------------------------------
# Figure 3(b): metadata overhead, single client, WRITEs
# ---------------------------------------------------------------------------


def fig3b_metadata_write(
    sizes: tuple[int, ...] = PAPER_SEGMENT_SIZES,
    provider_counts: tuple[int, ...] = PAPER_PROVIDER_COUNTS,
    cluster: ClusterSpec | None = None,
) -> FigureData:
    """Time for metadata to be completely written, vs segment size.

    The measured phase is version assignment → all tree nodes stored
    (includes building the woven subtree client-side). More metadata
    providers *reduce* this cost: the aggregated node puts spread over
    more nodes working in parallel (paper §V.C).
    """
    fig = FigureData(
        figure_id="Fig 3(b)",
        title="Metadata overhead, single client: writes",
        xlabel="segment size",
        ylabel="time (s)",
        notes="metadata phase of WRITE = version_assigned .. metadata_stored",
    )
    for n in provider_counts:
        dep = SimDeployment(
            DeploymentSpec(n_data=n, n_meta=n, n_clients=1, cache_capacity=0),
            cluster=cluster,
        )
        blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
        client = dep.client(0, cached=False)
        ys = []
        for i, size in enumerate(sizes):
            offset = i * GB
            trace: dict[str, float] = {}
            client.run(client.write_virtual_proto(blob, offset, size, trace=trace))
            ys.append(trace["metadata_stored"] - trace["version_assigned"])
        fig.series.append(Series(f"{n} providers", list(sizes), ys))
        fig.absorb_counters(dep)
    for n, ys in PAPER_FIG3B.items():
        if n in provider_counts:
            fig.paper.append(Series(f"{n} providers", list(PAPER_SEGMENT_SIZES), list(ys)))
    return fig


# ---------------------------------------------------------------------------
# Figure 3(c): throughput of concurrent clients
# ---------------------------------------------------------------------------


def fig3c_throughput(
    client_counts: tuple[int, ...] = PAPER_FIG3C_CLIENTS,
    iterations: int = 25,
    segment: int = 8 * MB,
    window: int = 1 * GB,
    providers: int = 20,
    cluster: ClusterSpec | None = None,
    kinds: tuple[str, ...] = ("read", "write", "read_cached"),
) -> FigureData:
    """Average per-client bandwidth vs number of concurrent clients.

    Workload (paper §V.D): 1 TB blob, 64 KB pages, 20 provider nodes;
    every client runs an unsynchronized loop over disjoint segments within
    a 1 GB window. Three series: uncached reads (the paper's worst case:
    "client-level caching has been totally disabled"), writes, and reads
    with the client-side metadata cache.

    ``iterations`` defaults below the paper's 100 to keep host runtime
    sane; bandwidth is a per-op mean, so the estimate is unbiased.
    """
    fig = FigureData(
        figure_id="Fig 3(c)",
        title="Throughput of concurrent client access",
        xlabel="concurrent clients",
        ylabel="avg bandwidth per client (MB/s)",
        notes=f"{human_size(segment)} segments in a {human_size(window)} window, "
        f"{iterations}-iteration loop",
    )
    labels = {
        "read": "Read",
        "write": "Write",
        "read_cached": "Read (cached metadata)",
    }
    # Setup reuse (host-time only): READs never mutate blob state and every
    # lane drains to idle between series, so both read kinds at a given
    # client count share one populated deployment — the measured durations
    # are identical to fresh-deployment runs (FIFO lanes are time-shift
    # invariant), but the dominant populate cost is paid once, not twice.
    read_kinds = [k for k in kinds if k != "write"]
    ys_by_kind: dict[str, list] = {k: [] for k in kinds}
    for n in client_counts:
        picker = SegmentPicker(window=window, segment=segment)
        if "write" in kinds:
            dep = SimDeployment(
                DeploymentSpec(
                    n_data=providers, n_meta=providers, n_clients=n, cache_capacity=0
                ),
                cluster=cluster,
            )
            blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
            bandwidths = run_concurrent_clients(
                dep, blob, n, iterations, picker, kind="write"
            )
            ys_by_kind["write"].append(sum(bandwidths) / len(bandwidths))
            fig.absorb_counters(dep)
        if read_kinds:
            dep = SimDeployment(
                DeploymentSpec(
                    n_data=providers, n_meta=providers, n_clients=n, cache_capacity=0
                ),
                cluster=cluster,
            )
            blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
            setup = dep.client(0, cached=False, name="populator")
            populate_window(setup, blob, window, segment)
            for kind in read_kinds:
                bandwidths = run_concurrent_clients(
                    dep, blob, n, iterations, picker,
                    kind="read", cached=(kind == "read_cached"),
                )
                ys_by_kind[kind].append(sum(bandwidths) / len(bandwidths))
            fig.absorb_counters(dep)
    for kind in kinds:
        fig.series.append(Series(labels[kind], list(client_counts), ys_by_kind[kind]))
    for kind in kinds:
        fig.paper.append(
            Series(
                labels[kind], list(PAPER_FIG3C_CLIENTS), list(PAPER_FIG3C[kind])
            )
        )
    return fig


def tail_latency_quantiles(
    client_counts: tuple[int, ...] = (1, 8, 20),
    iterations: int = 8,
    segment: int = 8 << 20,
    window: int = 1 * GB,
    providers: int = 20,
    cluster: ClusterSpec | None = None,
) -> FigureData:
    """Per-operation latency quantiles vs concurrent clients (tail view).

    The Fig 3(c) workload, but instead of collapsing each client's loop to
    a bandwidth *mean*, every operation's simulated duration feeds a
    :class:`~repro.obs.hist.LatencyHistogram` — the same log-bucketed
    accumulator the live telemetry path records into — and the figure
    plots p50/p95/p99 per access kind. The paper's headline ("per client
    bandwidth hardly decreases") is a statement about means; this is the
    companion claim the lock-free design implies but the paper never
    plots: the *tail* doesn't degenerate under concurrency either.

    Simulated durations are deterministic, so the series are bit-stable
    and ``repro.bench.compare`` gates them at rtol 1e-9.
    """
    from repro.obs.hist import LatencyHistogram

    fig = FigureData(
        figure_id="Tail latency",
        title="Per-operation latency quantiles under concurrent access",
        xlabel="concurrent clients",
        ylabel="operation latency (ms)",
        notes=f"{human_size(segment)} segments in a {human_size(window)} window, "
        f"{iterations}-iteration loop; quantiles via the telemetry "
        f"histogram (log buckets, <=1/16 relative error)",
    )
    quantiles = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
    ys: dict[tuple[str, str], list[float]] = {
        (kind, qname): []
        for kind in ("Read", "Write")
        for qname, _ in quantiles
    }
    for n in client_counts:
        picker = SegmentPicker(window=window, segment=segment)
        for kind in ("read", "write"):
            dep = SimDeployment(
                DeploymentSpec(
                    n_data=providers, n_meta=providers, n_clients=n,
                    cache_capacity=0,
                ),
                cluster=cluster,
            )
            blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
            if kind == "read":
                populate_window(dep.client(0, name="populator"), blob,
                                window, segment)
            durations = run_concurrent_client_durations(
                dep, blob, n, iterations, picker, kind=kind
            )
            hist = LatencyHistogram()
            for per_client in durations:
                for seconds in per_client:
                    hist.record(int(seconds * 1e9))
            for qname, p in quantiles:
                ys[(kind.capitalize(), qname)].append(hist.quantile(p) / 1e6)
            fig.absorb_counters(dep)
    for (kind, qname), series in ys.items():
        fig.series.append(Series(f"{kind} {qname}", list(client_counts), series))
    return fig


# ---------------------------------------------------------------------------
# Ablation A: lock-free versioning vs global reader-writer lock
# ---------------------------------------------------------------------------


def ablation_lockfree(
    client_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    iterations: int = 15,
    segment: int = 8 * MB,
    providers: int = 20,
) -> FigureData:
    """Per-client WRITE bandwidth: this system vs a global RW lock."""
    fig = FigureData(
        figure_id="Ablation A",
        title="Lock-free versioning vs global RW lock (writes)",
        xlabel="concurrent writers",
        ylabel="avg bandwidth per client (MB/s)",
        notes="same striping and cluster model; only concurrency control differs",
    )
    lockfree, locked = [], []
    for n in client_counts:
        dep = SimDeployment(
            DeploymentSpec(n_data=providers, n_meta=providers, n_clients=n,
                           cache_capacity=0)
        )
        blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
        picker = SegmentPicker(segment=segment)
        bw = run_concurrent_clients(dep, blob, n, iterations, picker, kind="write")
        lockfree.append(sum(bw) / len(bw))
        fig.absorb_counters(dep)

        base = LockedClusterSim(
            DeploymentSpec(n_data=providers, n_meta=1, n_clients=n)
        )
        bw2 = base.run_clients(n, iterations, segment, "write")
        locked.append(sum(bw2) / len(bw2))
        fig.absorb_counters(base)
    fig.series.append(Series("lock-free (this system)", list(client_counts), lockfree))
    fig.series.append(Series("global RW lock", list(client_counts), locked))
    return fig


# ---------------------------------------------------------------------------
# Ablation B: DHT-distributed vs centralized metadata
# ---------------------------------------------------------------------------


def ablation_metadata(
    client_counts: tuple[int, ...] = (1, 4, 8, 16),
    iterations: int = 15,
    segment: int = 8 * MB,
    providers: int = 20,
) -> FigureData:
    """Uncached READ bandwidth: 20 metadata providers vs a single one."""
    fig = FigureData(
        figure_id="Ablation B",
        title="Distributed vs centralized metadata (uncached reads)",
        xlabel="concurrent readers",
        ylabel="avg bandwidth per client (MB/s)",
        notes="centralized = all tree nodes on one metadata provider",
    )
    # Setup reuse (host-time only): the populated blob is read-only under
    # this workload and lanes idle out between points, so one deployment
    # per metadata layout serves every client count — per-point durations
    # match fresh-deployment runs exactly, while the dominant populate
    # phase runs once per layout instead of once per point.
    for label, n_meta in (("distributed (20 providers)", providers), ("centralized (1 provider)", 1)):
        dep = SimDeployment(
            DeploymentSpec(
                n_data=providers, n_meta=n_meta, n_clients=max(client_counts),
                cache_capacity=0, colocate=False,
            )
        )
        blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
        picker = SegmentPicker(segment=segment)
        setup = dep.client(0, cached=False, name="populator")
        populate_window(setup, blob, picker.window, segment)
        ys = []
        for n in client_counts:
            bw = run_concurrent_clients(dep, blob, n, iterations, picker, kind="read")
            ys.append(sum(bw) / len(bw))
        fig.absorb_counters(dep)
        fig.series.append(Series(label, list(client_counts), ys))
    return fig


# ---------------------------------------------------------------------------
# Ablation C: RPC aggregation on/off
# ---------------------------------------------------------------------------


def ablation_rpc_aggregation(
    sizes: tuple[int, ...] = PAPER_SEGMENT_SIZES,
    providers: int = 20,
) -> FigureData:
    """Metadata-write time with and without the aggregating RPC framework
    (the 'tradeoff between striping and streaming' of paper §V.A)."""
    fig = FigureData(
        figure_id="Ablation C",
        title="RPC aggregation on/off (metadata write phase)",
        xlabel="segment size",
        ylabel="time (s)",
        notes="aggregation streams all sub-calls per destination in one RPC",
    )
    for label, aggregate in (("aggregated RPCs", True), ("one RPC per node", False)):
        dep = SimDeployment(
            DeploymentSpec(n_data=providers, n_meta=providers, n_clients=1,
                           cache_capacity=0),
            cluster=ClusterSpec(aggregate=aggregate),
        )
        blob = dep.alloc_blob(PAPER_TOTAL_SIZE, PAPER_PAGESIZE)
        client = dep.client(0, cached=False)
        ys = []
        for i, size in enumerate(sizes):
            trace: dict[str, float] = {}
            client.run(client.write_virtual_proto(blob, i * GB, size, trace=trace))
            ys.append(trace["metadata_stored"] - trace["version_assigned"])
        fig.series.append(Series(label, list(sizes), ys))
        fig.absorb_counters(dep)
    return fig


# ---------------------------------------------------------------------------
# Ablation D: page-size sweep
# ---------------------------------------------------------------------------


def ablation_pagesize(
    pagesizes: tuple[int, ...] = (16 * KB, 64 * KB, 256 * KB, 1 * MB),
    segment: int = 8 * MB,
    providers: int = 20,
) -> FigureData:
    """End-to-end WRITE and READ time of one segment vs page size.

    Finer pages disperse better but multiply metadata; coarser pages do
    the opposite — the striping-grain tradeoff behind the paper's choice
    of 64 KB."""
    fig = FigureData(
        figure_id="Ablation D",
        title="Page-size sweep (8 MB segment, end-to-end)",
        xlabel="page size",
        ylabel="time (s)",
    )
    wys, rys = [], []
    for pagesize in pagesizes:
        dep = SimDeployment(
            DeploymentSpec(n_data=providers, n_meta=providers, n_clients=1,
                           cache_capacity=0)
        )
        blob = dep.alloc_blob(PAPER_TOTAL_SIZE, pagesize)
        client = dep.client(0, cached=False)
        wtrace: dict[str, float] = {}
        client.run(client.write_virtual_proto(blob, 0, segment, trace=wtrace))
        wys.append(wtrace["done"] - wtrace["start"])
        rtrace: dict[str, float] = {}
        client.run(client.read_virtual_proto(blob, 0, segment, trace=rtrace))
        rys.append(rtrace["done"] - rtrace["start"])
        fig.absorb_counters(dep)
    fig.series.append(Series("WRITE", list(pagesizes), wys))
    fig.series.append(Series("READ (uncached)", list(pagesizes), rys))
    return fig
