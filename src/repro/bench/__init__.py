"""Benchmark harness: regenerates every figure of the paper's evaluation.

The paper's evaluation (§V) is Figure 3, panels (a)-(c). Each panel has a
generator here returning structured series, a text renderer mirroring the
plot, and an embedded digest of the paper's own curves so benches can
assert the reproduced *shape* (orderings, monotonicity, crossovers) rather
than absolute numbers — the substrate is a calibrated simulator, not the
authors' 2008 testbed.

Ablation experiments (lock-free vs global lock, distributed vs centralized
metadata, RPC aggregation on/off, page-size sweep) quantify the design
choices DESIGN.md calls out.
"""

from repro.bench.workloads import SegmentPicker, populate_window
from repro.bench.figures import (
    fig3a_metadata_read,
    fig3b_metadata_write,
    fig3c_throughput,
    ablation_lockfree,
    ablation_metadata,
    ablation_rpc_aggregation,
    ablation_pagesize,
    render_series_table,
)

__all__ = [
    "SegmentPicker",
    "populate_window",
    "fig3a_metadata_read",
    "fig3b_metadata_write",
    "fig3c_throughput",
    "ablation_lockfree",
    "ablation_metadata",
    "ablation_rpc_aggregation",
    "ablation_pagesize",
    "render_series_table",
]
