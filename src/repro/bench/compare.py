"""Machine-readable benchmark results and the perf-regression differ.

Every benchmark emits ``benchmarks/out/<name>.json`` alongside its table:
the figure series (the scientific result), the host wall-clock spent
generating it (the perf-trajectory signal), and engine counters (events
processed, wire RPCs, sub-calls, messages/bytes on the simulated wire) that
explain *why* wall-clock moved. This module loads two such result sets and
diffs them:

- a **regression** is a wall-clock increase beyond ``wall_tolerance``
  (host timing is noisy, so the default tolerance is generous);
- a **series drift** is any simulated data point moving beyond
  ``series_rtol`` — simulated series are deterministic, so drift means the
  model or protocol changed, not the host;
- counter changes are reported as context (informational).

Usage::

    python -m repro.bench.compare OLD_DIR NEW_DIR [--wall-tolerance 0.25]

Exit status is 1 if any regression or series drift was flagged, which
makes the differ directly usable as a CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

RESULT_SCHEMA_VERSION = 1

#: wall-clock increases below this fraction are considered noise
DEFAULT_WALL_TOLERANCE = 0.25
#: baselines shorter than this many seconds skip the wall-clock ratio test:
#: on sub-second benches scheduler noise alone produces multi-x ratios, so
#: a ratio tripwire only reads signal from durations above the floor
DEFAULT_WALL_FLOOR = 1.0
#: relative tolerance for simulated series values (should be bit-stable)
DEFAULT_SERIES_RTOL = 1e-9


def result_payload(
    name: str,
    figure_id: str,
    series: Iterable[Any],
    wall_clock_s: float,
    counters: dict[str, int] | None = None,
    profile: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the canonical JSON payload for one benchmark result."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "name": name,
        "figure_id": figure_id,
        "wall_clock_s": wall_clock_s,
        "counters": dict(counters or {}),
        "profile": dict(profile or {}),
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)} for s in series
        ],
    }


@dataclass
class Finding:
    """One flagged difference between two result sets."""

    name: str
    kind: str  # "regression" | "improvement" | "series_drift" | "missing" | "counters"
    detail: str
    severity: str = "info"  # "info" | "warn" | "fail"

    def __str__(self) -> str:
        tag = {"info": " ", "warn": "~", "fail": "!"}[self.severity]
        return f"[{tag}] {self.name}: {self.kind}: {self.detail}"


@dataclass
class Comparison:
    """Outcome of diffing two result sets."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "fail"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        if not self.findings:
            return "no differences flagged"
        return "\n".join(str(f) for f in self.findings)


def load_results(directory: str | Path) -> dict[str, dict[str, Any]]:
    """Load every ``*.json`` benchmark result in a directory, by name."""
    directory = Path(directory)
    if not directory.is_dir():
        # A typo'd baseline path must not read as "every benchmark vanished"
        raise FileNotFoundError(f"result directory {directory} does not exist")
    results: dict[str, dict[str, Any]] = {}
    for path in sorted(directory.glob("*.json")):
        with path.open() as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise json.JSONDecodeError(
                    f"{path}: {exc.msg}", exc.doc, exc.pos
                ) from None
        results[payload.get("name", path.stem)] = payload
    return results


def _series_map(payload: dict[str, Any]) -> dict[str, dict[str, list]]:
    return {s["label"]: s for s in payload.get("series", ())}


def compare_results(
    old: dict[str, dict[str, Any]],
    new: dict[str, dict[str, Any]],
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    series_rtol: float = DEFAULT_SERIES_RTOL,
    wall_floor: float = DEFAULT_WALL_FLOOR,
) -> Comparison:
    """Diff two result sets (as returned by :func:`load_results`)."""
    comparison = Comparison()
    add = comparison.findings.append
    for name in sorted(set(old) | set(new)):
        if name not in new:
            add(Finding(name, "missing", "present in old set only", "warn"))
            continue
        if name not in old:
            add(Finding(name, "missing", "present in new set only", "info"))
            continue
        o, n = old[name], new[name]

        # wall-clock trajectory (skipped below the floor: ratios computed
        # from sub-second baselines are scheduler noise, not regressions)
        ow, nw = o.get("wall_clock_s"), n.get("wall_clock_s")
        if ow and nw and ow >= wall_floor:
            ratio = nw / ow
            if ratio > 1 + wall_tolerance:
                add(
                    Finding(
                        name,
                        "regression",
                        f"wall-clock {ow:.2f}s -> {nw:.2f}s ({ratio:.2f}x)",
                        "fail",
                    )
                )
            elif ratio < 1 / (1 + wall_tolerance):
                add(
                    Finding(
                        name,
                        "improvement",
                        f"wall-clock {ow:.2f}s -> {nw:.2f}s ({ratio:.2f}x)",
                        "info",
                    )
                )

        # simulated series: deterministic, so any drift is a real change
        old_series, new_series = _series_map(o), _series_map(n)
        for label in sorted(set(old_series) | set(new_series)):
            if label not in old_series or label not in new_series:
                add(
                    Finding(
                        name, "series_drift", f"series {label!r} appeared/vanished",
                        "warn",
                    )
                )
                continue
            os_, ns_ = old_series[label], new_series[label]
            if os_["x"] != ns_["x"]:
                add(
                    Finding(
                        name,
                        "series_drift",
                        f"series {label!r} x-axis changed "
                        f"({os_['x']} -> {ns_['x']})",
                        "warn",
                    )
                )
                continue
            if len(os_["y"]) != len(ns_["y"]):
                # same x-axis but a truncated/padded y is data loss, not a
                # re-parameterization: fail, or zip below would hide it
                add(
                    Finding(
                        name,
                        "series_drift",
                        f"series {label!r} y length changed "
                        f"({len(os_['y'])} -> {len(ns_['y'])} points)",
                        "fail",
                    )
                )
                continue
            for x, oy, ny in zip(os_["x"], os_["y"], ns_["y"]):
                scale = max(abs(oy), abs(ny), 1e-30)
                if abs(oy - ny) / scale > series_rtol:
                    add(
                        Finding(
                            name,
                            "series_drift",
                            f"series {label!r} at x={x}: {oy!r} -> {ny!r}",
                            "fail",
                        )
                    )

        # engine counters: context for wall-clock movement
        oc, nc = o.get("counters", {}), n.get("counters", {})
        changed = {
            k: (oc.get(k), nc.get(k))
            for k in sorted(set(oc) | set(nc))
            if oc.get(k) != nc.get(k)
        }
        if changed:
            detail = ", ".join(f"{k}: {a} -> {b}" for k, (a, b) in changed.items())
            add(Finding(name, "counters", detail, "info"))
    return comparison


def compare_dirs(
    old_dir: str | Path,
    new_dir: str | Path,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    series_rtol: float = DEFAULT_SERIES_RTOL,
    wall_floor: float = DEFAULT_WALL_FLOOR,
) -> Comparison:
    """Load and diff two result directories."""
    return compare_results(
        load_results(old_dir),
        load_results(new_dir),
        wall_tolerance=wall_tolerance,
        series_rtol=series_rtol,
        wall_floor=wall_floor,
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two benchmark result sets and flag regressions.",
    )
    parser.add_argument("old_dir", help="baseline results directory")
    parser.add_argument("new_dir", help="candidate results directory")
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_WALL_TOLERANCE,
        help="fractional wall-clock increase tolerated before flagging "
        f"(default {DEFAULT_WALL_TOLERANCE})",
    )
    parser.add_argument(
        "--series-rtol",
        type=float,
        default=DEFAULT_SERIES_RTOL,
        help="relative tolerance for simulated series drift "
        f"(default {DEFAULT_SERIES_RTOL})",
    )
    parser.add_argument(
        "--wall-floor",
        type=float,
        default=DEFAULT_WALL_FLOOR,
        help="skip wall-clock comparison when the baseline ran shorter "
        f"than this many seconds (default {DEFAULT_WALL_FLOOR}; sub-second "
        "ratios are scheduler noise)",
    )
    args = parser.parse_args(argv)
    try:
        comparison = compare_dirs(
            args.old_dir,
            args.new_dir,
            wall_tolerance=args.wall_tolerance,
            series_rtol=args.series_rtol,
            wall_floor=args.wall_floor,
        )
    except (FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"error: {exc}")
        return 2
    print(comparison.render())
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
