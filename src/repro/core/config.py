"""Configuration objects: blob geometry and deployment topology."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.metadata.tree import TreeGeometry
from repro.util.bits import is_pow2
from repro.util.sizes import human_size


@dataclass(frozen=True)
class BlobConfig:
    """Geometry of one blob: fixed logical size and page size.

    Both are powers of two by the paper's convention (§II). The paper's
    headline configuration is ``BlobConfig(total_size=1 * TB,
    pagesize=64 * KB)``; storage is allocated on write, so a huge logical
    size costs nothing until data arrives.
    """

    total_size: int
    pagesize: int

    def __post_init__(self) -> None:
        if not is_pow2(self.total_size) or not is_pow2(self.pagesize):
            raise ConfigError(
                "total_size and pagesize must be powers of two, got "
                f"{self.total_size} / {self.pagesize}"
            )
        if self.pagesize > self.total_size:
            raise ConfigError("pagesize cannot exceed total_size")

    def geometry(self) -> TreeGeometry:
        return TreeGeometry(self.total_size, self.pagesize)

    def __str__(self) -> str:
        return f"Blob({human_size(self.total_size)}, pages of {human_size(self.pagesize)})"


@dataclass(frozen=True)
class DeploymentSpec:
    """Topology of a deployment.

    The paper's setups: N nodes each hosting one data provider and one
    metadata provider (colocated), plus dedicated nodes for the version
    manager and the provider manager, plus client nodes.
    """

    n_data: int = 20
    n_meta: int = 20
    n_clients: int = 1
    #: copies of each page / metadata node (1 = the paper's setting)
    replication: int = 1
    #: page allocation strategy name (see repro.providers.strategies)
    strategy: str = "round_robin"
    strategy_kwargs: dict = field(default_factory=dict)
    #: client metadata cache capacity in nodes; 0 disables caching
    cache_capacity: int = 1 << 20
    #: host data+meta provider i on the same simulated node (paper's layout)
    colocate: bool = True
    #: data providers checksum real pages on put and verify on get
    #: (integrity mode: provider-side CPU work, see providers.page)
    page_checksums: bool = False
    #: TCP deployment only: actor name -> "host:port" of the node agent
    #: serving it (e.g. {"data/0": "10.0.0.5:7000"}). Empty = the builder
    #: launches a loopback cluster of agents itself; non-empty = connect
    #: to agents an operator already runs (real hosts, same code path).
    endpoints: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_data < 1 or self.n_meta < 1 or self.n_clients < 1:
            raise ConfigError("deployment needs at least one of each node kind")
        if self.replication < 1:
            raise ConfigError("replication must be >= 1")
        if self.replication > min(self.n_data, self.n_meta):
            raise ConfigError("replication exceeds provider count")
        if self.cache_capacity < 0:
            raise ConfigError("cache_capacity must be >= 0")
        for name, endpoint in self.endpoints.items():
            if not isinstance(name, str) or not isinstance(endpoint, str):
                raise ConfigError(
                    "endpoints must map actor names ('data/0') to "
                    f"'host:port' strings, got {name!r}: {endpoint!r}"
                )
