"""Client facades over the sans-io protocols.

A :class:`BlobClient` binds a driver (in-process or threaded), a metadata
router and a private metadata cache, and exposes the paper's primitives as
ordinary methods. Many clients may share one driver — each keeps its own
cache and write-uid sequence, exactly like independent client processes in
the paper's deployment.

:class:`AsyncBlobClient` is the coroutine twin for the aio driver
(:mod:`repro.net.aio`): same protocols, same cache and write-uid
semantics, but every primitive is awaitable, so thousands of client
coroutines can share one event loop — the many-open-connections shape
the paper's 64-thread client tier cannot express.
"""

from __future__ import annotations

import itertools
import threading
from typing import Sequence

from repro.core.protocol import (
    LATEST,
    ReadResult,
    WriteResult,
    alloc_protocol,
    fresh_write_uid,
    read_protocol,
    split_pages,
    stat_protocol,
    virtual_pages,
    write_protocol,
)
from repro.core.gc import GCStats, gc_protocol
from repro.metadata.cache import DEFAULT_CAPACITY, MetadataCache
from repro.metadata.router import StaticRouter
from repro.metadata.tree import TreeGeometry
from repro.providers.page import PagePayload
from repro.util.bits import align_down, align_up

_client_seq = itertools.count(1)


class BlobClient:
    """One logical client of the blob service."""

    def __init__(
        self,
        driver,
        router: StaticRouter,
        *,
        name: str | None = None,
        cache_capacity: int = DEFAULT_CAPACITY,
        elastic: bool = False,
    ) -> None:
        self.driver = driver
        self.router = router
        #: elastic-cluster mode (deployments with strategy="hash_ring"):
        #: WRITEs allocate at each page's consistent-hash home and READs
        #: fall back to the pm's relocation table when a rebalance moved
        #: pages off the providers their metadata records
        self.elastic = elastic
        self.name = name or f"client-{next(_client_seq)}"
        self.cache: MetadataCache | None = (
            MetadataCache(cache_capacity) if cache_capacity > 0 else None
        )
        self._geoms: dict[str, TreeGeometry] = {}
        self._geom_lock = threading.Lock()

    # -- blob lifecycle ---------------------------------------------------

    def alloc(self, total_size: int, pagesize: int) -> str:
        """Create a blob (paper's ALLOC); returns its globally unique id."""
        blob_id = self.driver.run(alloc_protocol(total_size, pagesize))
        with self._geom_lock:
            self._geoms[blob_id] = TreeGeometry(total_size, pagesize)
        return blob_id

    def open(self, blob_id: str) -> TreeGeometry:
        """Learn (and cache) the geometry of an existing blob."""
        with self._geom_lock:
            geom = self._geoms.get(blob_id)
        if geom is None:
            total_size, pagesize, _ = self.driver.run(stat_protocol(blob_id))
            geom = TreeGeometry(total_size, pagesize)
            with self._geom_lock:
                self._geoms[blob_id] = geom
        return geom

    def geometry(self, blob_id: str) -> TreeGeometry:
        return self.open(blob_id)

    def latest(self, blob_id: str) -> int:
        """Latest published version number."""
        return self.driver.run(stat_protocol(blob_id))[2]

    # -- WRITE -----------------------------------------------------------

    def write(self, blob_id: str, data: bytes, offset: int) -> WriteResult:
        """Page-aligned WRITE of real bytes; returns the assigned version."""
        geom = self.open(blob_id)
        return self.write_pages(blob_id, offset, split_pages(data, geom.pagesize))

    def write_pages(
        self, blob_id: str, offset: int, payloads: Sequence[PagePayload]
    ) -> WriteResult:
        geom = self.open(blob_id)
        return self.driver.run(
            write_protocol(
                blob_id, geom, offset, payloads, self.router,
                fresh_write_uid(self.name), hashed_alloc=self.elastic,
            )
        )

    def write_virtual(self, blob_id: str, offset: int, size: int) -> WriteResult:
        """WRITE with virtual payloads (protocol exercised, no real bytes)."""
        geom = self.open(blob_id)
        return self.write_pages(blob_id, offset, virtual_pages(size, geom.pagesize))

    def write_unaligned(
        self,
        blob_id: str,
        data: bytes,
        offset: int,
        base_version: int = LATEST,
    ) -> WriteResult:
        """Unaligned WRITE via read-modify-write of the boundary pages.

        Extension beyond the paper (which writes whole pages): the head and
        tail fragments are taken from ``base_version``; concurrent writers
        to the same boundary pages resolve last-writer-wins at page
        granularity. Snapshot semantics of the *aligned* region are
        unchanged.
        """
        geom = self.open(blob_id)
        if not data:
            raise ValueError("write_unaligned requires non-empty data")
        lo = align_down(offset, geom.pagesize)
        hi = align_up(offset + len(data), geom.pagesize)
        base = self.read(blob_id, lo, hi - lo, version=base_version)
        assert base.data is not None
        merged = bytearray(base.data)
        merged[offset - lo : offset - lo + len(data)] = data
        return self.write(blob_id, bytes(merged), lo)

    # -- READ ------------------------------------------------------------

    def read(
        self,
        blob_id: str,
        offset: int,
        size: int,
        version: int = LATEST,
        with_data: bool = True,
    ) -> ReadResult:
        """READ a segment out of snapshot ``version`` (default: latest)."""
        geom = self.open(blob_id)
        return self.driver.run(
            read_protocol(
                blob_id, geom, offset, size, self.router,
                version=version, cache=self.cache, with_data=with_data,
                locate_fallback=self.elastic,
            )
        )

    def read_bytes(
        self, blob_id: str, offset: int, size: int, version: int = LATEST
    ) -> bytes:
        result = self.read(blob_id, offset, size, version=version)
        assert result.data is not None
        return result.data

    def read_into(
        self,
        blob_id: str,
        out: bytearray | memoryview,
        offset: int,
        version: int = LATEST,
    ) -> ReadResult:
        """READ ``len(out)`` bytes at ``offset`` straight into ``out``.

        Zero-copy assembly: provider pages are scattered into the caller's
        buffer via memoryview slices — no intermediate ``bytes`` objects
        are built from payloads. ``ReadResult.data`` is a memoryview over
        ``out`` (so ``.data.obj is out``); the stored pages themselves are
        never aliased by ``out``, so mutating the buffer afterwards cannot
        disturb any published snapshot.
        """
        geom = self.open(blob_id)
        size = memoryview(out).nbytes
        return self.driver.run(
            read_protocol(
                blob_id, geom, offset, size, self.router,
                version=version, cache=self.cache, out=out,
                locate_fallback=self.elastic,
            )
        )

    # -- garbage collection ------------------------------------------------

    def gc(
        self,
        blob_id: str,
        keep_versions: Sequence[int],
        data_ids: Sequence[int],
        meta_ids: Sequence[int],
    ) -> GCStats:
        """Client-ordered GC: drop everything unreachable from the kept
        snapshots (paper lists GC as client-ordered; see repro.core.gc)."""
        geom = self.open(blob_id)
        return self.driver.run(
            gc_protocol(
                blob_id, geom, tuple(keep_versions), self.router,
                tuple(data_ids), tuple(meta_ids),
            )
        )


class AsyncBlobClient:
    """One logical client of the blob service, as awaitable coroutines.

    Binds an :class:`repro.net.aio.AioDriver` (any driver exposing an
    awaitable ``drive(proto)``) and runs the *same* sans-io protocols as
    :class:`BlobClient` — a method here and its blocking twin produce
    bit-identical wire traffic. Methods must be awaited from coroutines
    running on the driver's event loop (``driver.run_async`` /
    ``driver.spawn`` put them there). The geometry map and metadata
    cache are shared safely because all awaiting coroutines interleave
    on that single loop thread.
    """

    def __init__(
        self,
        driver,
        router: StaticRouter,
        *,
        name: str | None = None,
        cache_capacity: int = DEFAULT_CAPACITY,
        elastic: bool = False,
    ) -> None:
        self.driver = driver
        self.router = router
        self.elastic = elastic
        self.name = name or f"client-{next(_client_seq)}"
        self.cache: MetadataCache | None = (
            MetadataCache(cache_capacity) if cache_capacity > 0 else None
        )
        self._geoms: dict[str, TreeGeometry] = {}

    # -- blob lifecycle ---------------------------------------------------

    async def alloc(self, total_size: int, pagesize: int) -> str:
        """Create a blob (paper's ALLOC); returns its globally unique id."""
        blob_id = await self.driver.drive(alloc_protocol(total_size, pagesize))
        self._geoms[blob_id] = TreeGeometry(total_size, pagesize)
        return blob_id

    async def open(self, blob_id: str) -> TreeGeometry:
        """Learn (and cache) the geometry of an existing blob."""
        geom = self._geoms.get(blob_id)
        if geom is None:
            total_size, pagesize, _ = await self.driver.drive(
                stat_protocol(blob_id)
            )
            geom = TreeGeometry(total_size, pagesize)
            self._geoms[blob_id] = geom
        return geom

    async def geometry(self, blob_id: str) -> TreeGeometry:
        """Alias of :meth:`open` (matches the blocking facade)."""
        return await self.open(blob_id)

    async def latest(self, blob_id: str) -> int:
        """Latest published version number."""
        return (await self.driver.drive(stat_protocol(blob_id)))[2]

    # -- WRITE -----------------------------------------------------------

    async def write(self, blob_id: str, data: bytes, offset: int) -> WriteResult:
        """Page-aligned WRITE of real bytes; returns the assigned version."""
        geom = await self.open(blob_id)
        return await self.write_pages(
            blob_id, offset, split_pages(data, geom.pagesize)
        )

    async def write_pages(
        self, blob_id: str, offset: int, payloads: Sequence[PagePayload]
    ) -> WriteResult:
        """WRITE pre-split page payloads at a page-aligned offset."""
        geom = await self.open(blob_id)
        return await self.driver.drive(
            write_protocol(
                blob_id, geom, offset, payloads, self.router,
                fresh_write_uid(self.name), hashed_alloc=self.elastic,
            )
        )

    async def write_virtual(
        self, blob_id: str, offset: int, size: int
    ) -> WriteResult:
        """WRITE with virtual payloads (protocol exercised, no real bytes)."""
        geom = await self.open(blob_id)
        return await self.write_pages(
            blob_id, offset, virtual_pages(size, geom.pagesize)
        )

    # -- READ ------------------------------------------------------------

    async def read(
        self,
        blob_id: str,
        offset: int,
        size: int,
        version: int = LATEST,
        with_data: bool = True,
    ) -> ReadResult:
        """READ a segment out of snapshot ``version`` (default: latest)."""
        geom = await self.open(blob_id)
        return await self.driver.drive(
            read_protocol(
                blob_id, geom, offset, size, self.router,
                version=version, cache=self.cache, with_data=with_data,
                locate_fallback=self.elastic,
            )
        )

    async def read_bytes(
        self, blob_id: str, offset: int, size: int, version: int = LATEST
    ) -> bytes:
        """READ and return the segment's bytes."""
        result = await self.read(blob_id, offset, size, version=version)
        assert result.data is not None
        return result.data

    async def read_into(
        self,
        blob_id: str,
        out: bytearray | memoryview,
        offset: int,
        version: int = LATEST,
    ) -> ReadResult:
        """READ ``len(out)`` bytes at ``offset`` straight into ``out``
        (same zero-copy scatter as the blocking facade)."""
        geom = await self.open(blob_id)
        size = memoryview(out).nbytes
        return await self.driver.drive(
            read_protocol(
                blob_id, geom, offset, size, self.router,
                version=version, cache=self.cache, out=out,
                locate_fallback=self.elastic,
            )
        )

    # -- garbage collection ------------------------------------------------

    async def gc(
        self,
        blob_id: str,
        keep_versions: Sequence[int],
        data_ids: Sequence[int],
        meta_ids: Sequence[int],
    ) -> GCStats:
        """Client-ordered GC: drop everything unreachable from the kept
        snapshots (paper lists GC as client-ordered; see repro.core.gc)."""
        geom = await self.open(blob_id)
        return await self.driver.drive(
            gc_protocol(
                blob_id, geom, tuple(keep_versions), self.router,
                tuple(data_ids), tuple(meta_ids),
            )
        )
