"""Write-ahead log + snapshots: the control plane's durability tier.

The paper's consistency story hangs on the version manager being the
single serialization point — which is only a useful property if that
point *survives restarts*. :class:`Journal` gives the vm and pm a
crash-legible state directory:

- ``wal.log`` — an append-only log of length+checksum-framed records.
  Each frame is ``<u32 body-length, u32 crc32>`` followed by the body
  (an 8-byte sequence number + the pickled record). Appends are flushed
  to the OS on every record (a SIGKILL loses nothing already appended)
  and additionally ``fsync``'d under the ``"always"`` policy (a power
  loss loses nothing either).
- ``snapshot.pkl`` — a compaction point: the actor's full pickled state
  plus the sequence number of the last record it covers, published
  atomically (tmp + ``os.replace``). On open, records at or below the
  snapshot's sequence number are skipped, so a crash *between* writing
  the snapshot and truncating the log never double-applies.

Recovery (:meth:`Journal.open`) loads the snapshot, replays the log and
**truncates a torn tail**: a half-written frame (short header, short
body, or checksum mismatch) marks the crash point — everything before it
is durable state, everything after is discarded with a logged warning,
never an error. The owning actor then resolves in-flight work on top of
the replayed state (see ``VersionManager.rollback_unpublished``).

Crash-point fault injection: ``fail_after=N`` makes the journal die
exactly ``N`` bytes into its append stream — the write that crosses the
limit persists only its first bytes and raises :class:`JournalCrashed`,
and every later append fails too (the process is "dead"). Sweeping ``N``
across record boundaries is how ``tests/test_journal_recovery.py``
proves recovery always lands on a clean prefix state.

``StateDirLock`` (flock-based) and the shared fsync helpers used by
:class:`~repro.core.persistence.DiskSpill` live here too, so every
durability knob in the system spells fsync policy the same way.
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigError, ReproError

logger = logging.getLogger("repro.journal")

#: accepted fsync policies, shared by the journal and DiskSpill:
#: ``"never"`` (flush to the OS only — survives SIGKILL, the test
#: default) and ``"always"`` (fsync every append/publish — survives
#: power loss, the production setting).
FSYNC_POLICIES = ("never", "always")

#: frame header: little-endian (body_length, crc32-of-body)
_HEADER = struct.Struct("<II")
#: sanity cap on a single record; anything larger is corruption
_MAX_RECORD = 1 << 26

WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.pkl"
LOCK_NAME = "agent.lock"


class JournalError(ReproError):
    """The journal could not be read or written (not a torn tail —
    those are truncated and logged, never raised)."""


class JournalCrashed(JournalError):
    """Fault injection tripped: the simulated process died mid-write.

    After this is raised once, every further append raises it too — a
    crashed process never writes again until "restarted" by reopening
    the state directory with a fresh :class:`Journal`.
    """


def check_fsync_policy(policy: str) -> str:
    """Validate an fsync policy name (shared CLI/constructor knob)."""
    if policy not in FSYNC_POLICIES:
        raise ConfigError(
            f"fsync policy must be one of {FSYNC_POLICIES}, got {policy!r}"
        )
    return policy


def sync_file(fileobj) -> None:
    """Flush a file object's buffers all the way to stable storage."""
    fileobj.flush()
    os.fsync(fileobj.fileno())


def sync_dir(path: str | os.PathLike) -> None:
    """fsync a directory: makes a just-renamed entry durable.

    ``os.replace`` publishes atomically with respect to *process* death,
    but only a directory fsync makes the new entry survive power loss.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class StateDirLock:
    """Advisory exclusive lock on a state directory (flock + pidfile).

    A live agent holds ``agent.lock`` for its whole lifetime; a second
    agent pointed at the same ``--state-dir`` fails :meth:`acquire` with
    a :class:`~repro.errors.ConfigError` naming the holder's pid. The
    flock is released automatically by the OS if the holder is killed,
    so a stale pidfile never wedges a restart.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / LOCK_NAME
        self._file = None

    def acquire(self) -> "StateDirLock":
        """Take the lock or raise ``ConfigError`` if a live agent holds it."""
        import fcntl

        f = open(self.path, "a+")
        try:
            fcntl.flock(f.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            f.seek(0)
            holder = f.read().strip() or "unknown"
            f.close()
            raise ConfigError(
                f"state dir {self.directory} is locked by a live agent "
                f"(pid {holder})"
            ) from None
        f.seek(0)
        f.truncate()
        f.write(str(os.getpid()))
        f.flush()
        self._file = f
        return self

    def release(self) -> None:
        """Drop the lock (the file stays behind as a breadcrumb)."""
        if self._file is not None:
            self._file.close()  # closing the fd releases the flock
            self._file = None

    @property
    def held(self) -> bool:
        return self._file is not None


class Journal:
    """One actor's write-ahead log + snapshot under a state directory.

    Lifecycle: construct, :meth:`open` (recovery — returns the snapshot
    state and the records to replay on top of it), then :meth:`append`
    per mutation and :meth:`compact` at snapshot points. The owning
    actor decides *what* the records mean; the journal only promises
    that whatever :meth:`open` returns is a clean prefix of what was
    appended.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: str = "never",
        snapshot_every: int | None = 1024,
        fail_after: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.fsync = check_fsync_policy(fsync)
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigError(
                f"snapshot_every must be >= 1 or None, got {snapshot_every}"
            )
        self.snapshot_every = snapshot_every
        #: fault injection: die this many bytes into the append stream
        self.fail_after = fail_after
        self._appended_bytes = 0
        self._crashed = False
        self._file = None
        self._seqno = 0  # last sequence number written (or recovered)
        self.records_since_snapshot = 0
        self.truncated_bytes = 0  # torn tail dropped by the last open()
        self.replayed_records = 0  # log records the last open() returned

    # -- recovery ---------------------------------------------------------

    def open(self) -> tuple[Any | None, list[Any]]:
        """Recover: ``(snapshot_state_or_None, records_to_replay)``.

        Loads the snapshot (if any), scans the log, truncates a torn
        tail in place (logged, never fatal) and leaves the journal ready
        for appends. Records already covered by the snapshot's sequence
        number are skipped, so a crash between snapshot publication and
        log truncation cannot double-apply.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        snap_state, snap_seqno = self._load_snapshot()
        wal = self.directory / WAL_NAME
        records: list[Any] = []
        good_end = 0
        self._seqno = snap_seqno
        try:
            raw = wal.read_bytes()
        except FileNotFoundError:
            raw = b""
        pos = 0
        torn_reason = None
        while pos < len(raw):
            if pos + _HEADER.size > len(raw):
                torn_reason = f"short header at byte {pos}"
                break
            length, crc = _HEADER.unpack_from(raw, pos)
            if length < 8 or length > _MAX_RECORD:
                torn_reason = f"implausible frame length {length} at byte {pos}"
                break
            body = raw[pos + _HEADER.size : pos + _HEADER.size + length]
            if len(body) < length:
                torn_reason = f"short body at byte {pos}"
                break
            if zlib.crc32(body) != crc:
                torn_reason = f"checksum mismatch at byte {pos}"
                break
            seqno = int.from_bytes(body[:8], "little")
            if seqno > snap_seqno:
                try:
                    records.append(pickle.loads(body[8:]))
                except Exception as exc:  # corrupt pickle inside a good crc
                    torn_reason = f"undecodable record at byte {pos}: {exc}"
                    break
                self._seqno = seqno
            pos += _HEADER.size + length
            good_end = pos
        self.truncated_bytes = len(raw) - good_end
        if torn_reason is not None:
            logger.warning(
                "journal %s: torn tail (%s): truncating %d byte(s) after "
                "%d clean record(s)",
                wal, torn_reason, self.truncated_bytes, len(records),
            )
        self._file = open(wal, "r+b" if wal.exists() else "wb")
        self._file.truncate(good_end)
        self._file.seek(good_end)
        if self.fsync == "always" and self.truncated_bytes:
            sync_file(self._file)
        self.records_since_snapshot = len(records)
        self.replayed_records = len(records)
        return snap_state, records

    def _load_snapshot(self) -> tuple[Any | None, int]:
        path = self.directory / SNAPSHOT_NAME
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None, 0
        try:
            snap = pickle.loads(blob)
            return snap["state"], int(snap["seqno"])
        except Exception as exc:
            # a torn snapshot cannot happen through compact() (atomic
            # replace), so this is real corruption: refuse loudly rather
            # than silently restarting from an empty history
            raise JournalError(f"snapshot {path} is unreadable: {exc}") from exc

    # -- append path ------------------------------------------------------

    def append(self, record: Any) -> None:
        """Durably append one record (fsync per policy), WAL-first.

        Callers must append *before* applying the mutation and must not
        reply to the client until this returns — then every externally
        visible state transition is recoverable.
        """
        if self._file is None:
            raise JournalError("journal not opened; call open() first")
        body = (self._seqno + 1).to_bytes(8, "little") + pickle.dumps(
            record, protocol=pickle.HIGHEST_PROTOCOL
        )
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        self._write(frame)
        self._seqno += 1
        self.records_since_snapshot += 1

    def _write(self, frame: bytes) -> None:
        """Write raw bytes, honoring the crash-point fault injection."""
        if self._crashed:
            raise JournalCrashed("journal already crashed (fail_after)")
        if (
            self.fail_after is not None
            and self._appended_bytes + len(frame) > self.fail_after
        ):
            keep = max(0, self.fail_after - self._appended_bytes)
            self._file.write(frame[:keep])
            self._file.flush()  # the torn bytes ARE on disk, like a real crash
            self._appended_bytes += keep
            self._crashed = True
            raise JournalCrashed(
                f"fault injection: journal died {keep} byte(s) into a "
                f"{len(frame)}-byte frame (fail_after={self.fail_after})"
            )
        self._file.write(frame)
        self._file.flush()  # SIGKILL-safe even under fsync="never"
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        self._appended_bytes += len(frame)

    @property
    def tail_offset(self) -> int:
        """Current byte length of the log (record-boundary probe point)."""
        return self._file.tell() if self._file is not None else 0

    def should_compact(self) -> bool:
        """True when the log has outgrown the snapshot policy."""
        return (
            self.snapshot_every is not None
            and self.records_since_snapshot >= self.snapshot_every
        )

    # -- compaction -------------------------------------------------------

    def compact(self, state: Any) -> None:
        """Publish ``state`` as the new snapshot and reset the log.

        The snapshot lands atomically (tmp + replace, fsync'd under the
        ``"always"`` policy) *before* the log is truncated; a crash
        between the two steps is handled by :meth:`open` skipping
        records the snapshot already covers.
        """
        if self._file is None:
            raise JournalError("journal not opened; call open() first")
        if self._crashed:
            raise JournalCrashed("journal already crashed (fail_after)")
        path = self.directory / SNAPSHOT_NAME
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as f:
            pickle.dump(
                {"seqno": self._seqno, "state": state},
                f,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if self.fsync == "always":
                sync_file(f)
        os.replace(tmp, path)
        if self.fsync == "always":
            sync_dir(self.directory)
        self._file.truncate(0)
        self._file.seek(0)
        if self.fsync == "always":
            sync_file(self._file)
        self.records_since_snapshot = 0

    def close(self) -> None:
        """Release the log file handle (state stays on disk)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def iter_frames(self) -> Iterator[tuple[int, Any]]:
        """``(seqno, record)`` pairs currently in the log (tooling)."""
        raw = (self.directory / WAL_NAME).read_bytes()
        pos = 0
        while pos + _HEADER.size <= len(raw):
            length, crc = _HEADER.unpack_from(raw, pos)
            body = raw[pos + _HEADER.size : pos + _HEADER.size + length]
            if len(body) < length or zlib.crc32(body) != crc:
                return
            yield int.from_bytes(body[:8], "little"), pickle.loads(body[8:])
            pos += _HEADER.size + length
