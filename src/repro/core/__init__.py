"""Core blob API: the paper's primary contribution, assembled.

:mod:`repro.core.protocol` holds the sans-io READ / WRITE / ALLOC / GC
protocol generators — the algorithms of paper §III.B, executable on any
driver. :mod:`repro.core.client` wraps them in the blocking
:class:`~repro.core.client.BlobClient` facade used by applications;
:mod:`repro.core.gc` implements client-ordered garbage collection and
:mod:`repro.core.persistence` the optional spill-to-disk page backend.
"""

from repro.core.config import BlobConfig, DeploymentSpec
from repro.core.client import BlobClient
from repro.core.protocol import ReadResult, WriteResult
from repro.core.gc import GCStats

__all__ = [
    "BlobConfig",
    "DeploymentSpec",
    "BlobClient",
    "ReadResult",
    "WriteResult",
    "GCStats",
]
