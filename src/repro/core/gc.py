"""Client-ordered garbage collection (paper §III: "the previous version of
the pages remain available ... until some garbage collection is ordered by
the client"; §VI lists a full design as future work).

Mark-and-sweep over the metadata graph:

1. **guard** — refuse to run while writes are in flight (the paper's model
   orders GC from a quiescent client);
2. **mark** — walk the segment trees of every kept version (shared subtrees
   visited once), collecting reachable node keys and page keys;
3. **sweep** — ask every provider for its key inventory for the blob and
   free everything unreachable.

Versions other than the kept ones become unreadable; kept versions are
bit-for-bit unaffected (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import StaleWrite
from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.router import StaticRouter
from repro.metadata.tree import TreeGeometry
from repro.net.sansio import Batch, Call
from repro.providers.page import PageKey


@dataclass(frozen=True, slots=True)
class GCStats:
    """Outcome of one collection."""

    blob_id: str
    kept_versions: tuple[int, ...]
    nodes_live: int
    pages_live: int
    nodes_freed: int
    pages_freed: int


def gc_protocol(
    blob_id: str,
    geom: TreeGeometry,
    keep_versions: tuple[int, ...],
    router: StaticRouter,
    data_ids: tuple[int, ...],
    meta_ids: tuple[int, ...],
):
    """Sans-io GC protocol; returns :class:`GCStats`."""
    # -- guard: no writes may be in flight, and kept versions must exist --
    (stat,) = yield Batch([Call("vm", "vm.stat", (blob_id,))])
    _, _, latest = stat
    (in_flight,) = yield Batch([Call("vm", "vm.in_flight", (blob_id,))])
    if in_flight:
        raise StaleWrite(
            f"blob {blob_id}: GC ordered while writes {in_flight} are in flight"
        )
    keep = tuple(sorted({v for v in keep_versions if v >= 1}))
    for v in keep:
        if v > latest:
            raise StaleWrite(
                f"blob {blob_id}: cannot keep unpublished version {v} "
                f"(latest is {latest})"
            )

    # -- mark: BFS over the union of kept trees, shared subtrees once -----
    live_nodes: set[NodeKey] = set()
    live_pages: set[PageKey] = set()
    frontier = [
        NodeKey(blob_id, v, 0, geom.total_size) for v in keep
    ]
    frontier = [k for k in frontier if k not in live_nodes]
    while frontier:
        live_nodes.update(frontier)
        calls = [
            Call(router.route(key)[0], "meta.get_node", (key,)) for key in frontier
        ]
        nodes: list[TreeNode] = yield Batch(calls)
        next_frontier: list[NodeKey] = []
        seen_this_round: set[NodeKey] = set()
        for node in nodes:
            if node.is_leaf:
                live_pages.add(
                    PageKey(blob_id, node.write_uid, geom.page_index(node.interval))
                )
                continue
            for child in node.child_keys():
                if child.version == 0:
                    continue  # implicit zero subtree: nothing stored
                if child in live_nodes or child in seen_this_round:
                    continue
                seen_this_round.add(child)
                next_frontier.append(child)
        frontier = next_frontier

    # -- sweep metadata -----------------------------------------------------
    meta_lists = yield Batch(
        [Call(("meta", m), "meta.list_nodes", (blob_id,)) for m in meta_ids]
    )
    nodes_freed = 0
    free_calls = []
    for m, keys in zip(meta_ids, meta_lists):
        doomed = [k for k in keys if k not in live_nodes]
        if doomed:
            nodes_freed += len(doomed)
            free_calls.append(Call(("meta", m), "meta.free_nodes", (doomed,)))
    if free_calls:
        yield Batch(free_calls)

    # -- sweep data ---------------------------------------------------------
    data_lists = yield Batch(
        [Call(("data", d), "data.list_pages", (blob_id,)) for d in data_ids]
    )
    pages_freed = 0
    free_calls = []
    for d, keys in zip(data_ids, data_lists):
        doomed = [k for k in keys if k not in live_pages]
        if doomed:
            pages_freed += len(doomed)
            free_calls.append(Call(("data", d), "data.free_pages", (doomed,)))
    if free_calls:
        yield Batch(free_calls)

    return GCStats(
        blob_id=blob_id,
        kept_versions=keep,
        nodes_live=len(live_nodes),
        pages_live=len(live_pages),
        nodes_freed=nodes_freed,
        pages_freed=pages_freed,
    )
