"""Sans-io READ / WRITE / ALLOC protocols (paper §III.B).

These generators are the client algorithms of the paper, expressed once and
executed by any driver (in-process, threaded, simulated). The interaction
structure mirrors paper Figure 1 exactly:

WRITE: provider manager (allocation) → data providers (pages, parallel) →
version manager (version + border refs: the only serialization) → metadata
providers (nodes, parallel) → version manager (success report).

READ: version manager (latest/validation, the only centralized touch) →
metadata providers (tree descent, one parallel batch per level) → data
providers (pages, parallel).

Replica fail-over: with ``replication > 1`` every fetch tries the primary
owner and falls back to successive replicas on failure; the final attempt
raises normally so genuine losses surface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from repro.errors import RemoteError
from repro.metadata.build import plan_write_tree
from repro.metadata.cache import MetadataCache
from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.router import StaticRouter
from repro.metadata.tree import TreeGeometry
from repro.net.message import estimate_size
from repro.net.sansio import Address, Batch, Call, Compute, Mark, Op
from repro.providers.page import PageKey, PagePayload
from repro.util.intervals import Interval
from repro.version.manager import LATEST, WriteTicket

ADDR_VM: Address = "vm"
ADDR_PM: Address = "pm"

# Request footprints of the per-node/per-page hot calls, precomputed once
# from the same estimator the drivers would invoke per call. Key/node wire
# sizes are type-constant, so resolving them per call is pure overhead on
# the simulator's hottest path.
_GET_NODE_REQ_BYTES = estimate_size((NodeKey("", 0, 0, 0),))
_GET_PAGE_REQ_BYTES = estimate_size((PageKey("", "", 0),))


def data_addr(provider_id: int) -> Address:
    return ("data", provider_id)


@dataclass(frozen=True, slots=True)
class WriteResult:
    """Outcome of one WRITE."""

    blob_id: str
    version: int  # the paper's vw
    latest_published: int  # latest published when the report was accepted
    offset: int
    size: int
    pages_written: int
    nodes_written: int

    @property
    def published(self) -> bool:
        """True iff this snapshot was already published at report time."""
        return self.latest_published >= self.version


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Outcome of one READ.

    ``data`` is ``bytes`` for plain reads (aliasing the stored page
    zero-copy when a single immutable page exactly covers the request), a
    ``memoryview`` over the caller's buffer for ``out=``-reads, and
    ``None`` for virtual reads.
    """

    blob_id: str
    version: int  # effective snapshot read
    latest: int  # the paper's vr (latest published at read time)
    offset: int
    size: int
    data: bytes | memoryview | None
    nodes_fetched: int
    cache_hits: int
    pages_fetched: int
    zero_bytes: int  # bytes satisfied from the implicit all-zero version 0


Proto = Generator[Op, Any, Any]


# ---------------------------------------------------------------------------
# ALLOC / stat
# ---------------------------------------------------------------------------


def alloc_protocol(total_size: int, pagesize: int) -> Proto:
    """Allocate a fresh blob; returns its id (paper's ALLOC primitive)."""
    (blob_id,) = yield Batch([Call(ADDR_VM, "vm.alloc", (total_size, pagesize))])
    return blob_id


def stat_protocol(blob_id: str) -> Proto:
    """Fetch ``(total_size, pagesize, latest_published)``."""
    (stat,) = yield Batch([Call(ADDR_VM, "vm.stat", (blob_id,))])
    return stat


# ---------------------------------------------------------------------------
# WRITE
# ---------------------------------------------------------------------------


def write_protocol(
    blob_id: str,
    geom: TreeGeometry,
    offset: int,
    payloads: Sequence[PagePayload],
    router: StaticRouter,
    write_uid: str,
    trace: dict[str, float] | None = None,
    hashed_alloc: bool = False,
) -> Proto:
    """The WRITE of paper §III.B; returns a :class:`WriteResult`.

    ``hashed_alloc`` switches step 1 to the pm's consistent-hash
    allocation (``pm.get_providers_hashed``): placement then depends only
    on each page's key and the live provider set, which is what lets an
    elastic cluster compute minimal migrations when membership changes.
    Off by default — the paper's strategies and their wire behavior are
    untouched.

    When ``trace`` is supplied it is filled with phase timestamps
    (``start``, ``providers_allocated``, ``pages_stored``,
    ``version_assigned``, ``metadata_stored``, ``done``) in the driver's
    clock — simulated seconds under the simulator. Figure 3(b) plots
    ``metadata_stored - version_assigned`` (building + storing metadata).
    """
    npages = len(payloads)
    if npages == 0:
        raise ValueError("WRITE requires at least one page")
    for p in payloads:
        if p.nbytes != geom.pagesize:
            raise ValueError(
                f"every payload must be exactly one page ({geom.pagesize} B); "
                f"got {p.nbytes} B"
            )
    size = npages * geom.pagesize
    patch = geom.check_aligned(offset, size)
    first_page = offset // geom.pagesize

    def mark(name: str):
        if trace is not None:
            t = yield Mark(name)
            trace[name] = t

    yield from mark("start")

    # 1. ask the provider manager where the fresh pages should live
    if hashed_alloc:
        (groups,) = yield Batch(
            [Call(
                ADDR_PM,
                "pm.get_providers_hashed",
                (blob_id, write_uid, first_page, npages, geom.pagesize),
            )]
        )
    else:
        (groups,) = yield Batch(
            [Call(ADDR_PM, "pm.get_providers", (blob_id, npages, geom.pagesize))]
        )
    yield from mark("providers_allocated")

    # 2. store all pages in parallel (every replica of every page at once)
    yield Compute("client.touch_page", npages)
    # every payload is exactly one page, so all puts share one footprint
    put_req_bytes = estimate_size((PageKey("", "", 0), payloads[0]))
    page_calls = []
    for i, payload in enumerate(payloads):
        key = PageKey(blob_id, write_uid, first_page + i)
        for provider_id in groups[i]:
            page_calls.append(
                Call(
                    data_addr(provider_id),
                    "data.put_page",
                    (key, payload),
                    request_bytes=put_req_bytes,
                )
            )
    yield Batch(page_calls)
    yield from mark("pages_stored")

    # 3. the only serialization point: get a version number + border refs
    (ticket,) = yield Batch([Call(ADDR_VM, "vm.assign", (blob_id, offset, size))])
    assert isinstance(ticket, WriteTicket)
    yield from mark("version_assigned")

    # 4. weave and publish the metadata subtree — in complete isolation
    nodes = plan_write_tree(
        geom, blob_id, ticket.version, patch, ticket.refs_as_dict(), groups, write_uid
    )
    yield Compute("client.build_node", len(nodes))
    put_node_req_bytes = estimate_size((nodes[0],))  # nodes are fixed-size
    meta_calls = [
        Call(owner, "meta.put_node", (node,), request_bytes=put_node_req_bytes)
        for node in nodes
        for owner in router.route(node.key)
    ]
    yield Batch(meta_calls)
    yield from mark("metadata_stored")

    # 5. report success; the VM publishes versions in order
    (latest,) = yield Batch([Call(ADDR_VM, "vm.complete", (blob_id, ticket.version))])
    yield from mark("done")
    return WriteResult(
        blob_id=blob_id,
        version=ticket.version,
        latest_published=latest,
        offset=offset,
        size=size,
        pages_written=npages,
        nodes_written=len(nodes),
    )


# ---------------------------------------------------------------------------
# READ
# ---------------------------------------------------------------------------


def read_protocol(
    blob_id: str,
    geom: TreeGeometry,
    offset: int,
    size: int,
    router: StaticRouter,
    version: int = LATEST,
    cache: MetadataCache | None = None,
    with_data: bool = True,
    out: Any | None = None,
    trace: dict[str, float] | None = None,
    locate_fallback: bool = False,
) -> Proto:
    """The READ of paper §III.B; returns a :class:`ReadResult`.

    ``locate_fallback`` arms the elastic-cluster page fallback: when every
    provider a tree node records answers PageMissing (the page was moved
    by a rebalance after the node was published), the client asks the pm
    where those pages went (``pm.locate``) and fetches from the current
    holders. Zero extra RPCs while pages are where their metadata says.

    ``with_data=False`` runs the full metadata + page protocol but skips
    byte assembly (simulation benches; virtual payloads).

    ``out`` is an optional caller-supplied writable buffer (``bytearray``
    or writable ``memoryview``) of at least ``size`` bytes: provider pages
    are scattered straight into it via memoryview slices — zero
    intermediate copies — and ``ReadResult.data`` is a view over ``out``
    trimmed to ``size``.

    When ``trace`` is supplied it is filled with phase timestamps
    (``start``, ``version_resolved``, ``metadata_read``, ``pages_read``,
    ``done``). Figure 3(a) plots ``metadata_read - version_resolved``
    (the complete tree descent).
    """
    req = geom.check_bounds(offset, size)
    dst: memoryview | None = None
    if out is not None:
        if not with_data:
            raise ValueError("out buffer requires with_data=True")
        dst = memoryview(out)
        if dst.ndim != 1 or dst.itemsize != 1:
            dst = dst.cast("B")
        if dst.readonly:
            raise ValueError("out buffer must be writable")
        if dst.nbytes < size:
            raise ValueError(
                f"out buffer of {dst.nbytes} B cannot hold a {size} B read"
            )
        dst = dst[:size]

    def mark(name: str):
        if trace is not None:
            t = yield Mark(name)
            trace[name] = t

    yield from mark("start")

    # 1. the only centralized interaction: resolve/validate the version
    (resolved,) = yield Batch(
        [Call(ADDR_VM, "vm.resolve_read", (blob_id, version))]
    )
    yield from mark("version_resolved")
    effective, latest = resolved
    if effective == 0:
        # Version 0 is the implicit all-zero string: nothing to fetch.
        if dst is not None:
            _zero_range(dst, 0, size)
            data = dst
        else:
            data = bytes(size) if with_data else None
        return ReadResult(
            blob_id, 0, latest, offset, size, data,
            nodes_fetched=0, cache_hits=0, pages_fetched=0, zero_bytes=size,
        )

    # 2. descend the segment tree, one parallel batch per level
    nodes_fetched = 0
    cache_hits = 0
    zero_bytes = 0
    leaves: list[TreeNode] = []
    frontier: list[NodeKey] = [
        NodeKey(blob_id, effective, 0, geom.total_size)
    ]
    while frontier:
        resolved_nodes: dict[NodeKey, TreeNode] = {}
        to_fetch: list[NodeKey] = []
        for key in frontier:
            node = cache.get(key) if cache is not None else None
            if node is not None:
                cache_hits += 1
                resolved_nodes[key] = node
            else:
                to_fetch.append(key)
        if to_fetch:
            fetched = yield from _gather_nodes(router, to_fetch)
            nodes_fetched += len(fetched)
            for key, node in zip(to_fetch, fetched):
                resolved_nodes[key] = node
                if cache is not None:
                    cache.put(node)
        next_frontier: list[NodeKey] = []
        for key in frontier:
            node = resolved_nodes[key]
            if node.is_leaf:
                leaves.append(node)
                continue
            for child_key in node.child_keys():
                child_iv = child_key.interval
                if not child_iv.intersects(req):
                    continue
                if child_key.version == 0:
                    # untouched since the initial all-zero string
                    zero_bytes += child_iv.intersection(req).size
                    continue
                next_frontier.append(child_key)
        frontier = next_frontier
    yield from mark("metadata_read")

    # 3. fetch the pages referenced by the leaves, in parallel
    payloads = yield from _gather_pages(geom, leaves, locate_fallback)
    if leaves:
        yield Compute("client.touch_page", len(leaves))
    yield from mark("pages_read")

    # 4. assemble the requested byte range (zero payload copies: see
    # assemble_read; a fresh-bytes materialization happens only when the
    # caller asked for immutable bytes that more than one page must feed)
    data = None
    if dst is not None:
        if zero_bytes or any(p.is_virtual for p in payloads):
            # the caller's buffer may be dirty: zero exactly the regions
            # no real payload will cover (never the whole buffer — a huge
            # read with one unwritten page must not pay a full rewrite)
            _zero_uncovered(req, leaves, payloads, dst)
        assemble_read(req, leaves, payloads, dst)
        data = dst
    elif with_data:
        single = _single_full_page(req, leaves, payloads) if not zero_bytes else None
        if single is not None:
            # one immutable page exactly covers the request: alias it
            # (write-once pages can never change under the reader)
            data = single
        else:
            buf = bytearray(size)  # zero-filled: version-0 regions need no work
            assemble_read(req, leaves, payloads, memoryview(buf))
            data = bytes(buf)
    yield from mark("done")
    return ReadResult(
        blob_id=blob_id,
        version=effective,
        latest=latest,
        offset=offset,
        size=size,
        data=data,
        nodes_fetched=nodes_fetched,
        cache_hits=cache_hits,
        pages_fetched=len(leaves),
        zero_bytes=zero_bytes,
    )


# ---------------------------------------------------------------------------
# zero-copy READ assembly
# ---------------------------------------------------------------------------


def assemble_read(
    req: Interval, leaves: Sequence[TreeNode], payloads: Sequence[PagePayload], dst: memoryview
) -> int:
    """Scatter fetched page payloads into ``dst`` (a writable byte view of
    ``req.size`` bytes) with **zero payload copies**: each real payload is
    sliced as a memoryview and written straight into place — no
    intermediate ``bytes`` objects, no joins. Virtual payloads are skipped
    (the caller pre-zeroes gapped buffers). Returns payload bytes written.
    """
    written = 0
    req_offset = req.offset
    req_end = req.end
    for leaf, payload in zip(leaves, payloads):
        src = payload.view()
        if src is None:
            continue
        iv = leaf.interval
        src_lo = max(0, req_offset - iv.offset)
        src_hi = min(iv.size, req_end - iv.offset)
        if src_hi <= src_lo:
            continue
        dst_lo = iv.offset + src_lo - req_offset
        dst[dst_lo : dst_lo + (src_hi - src_lo)] = src[src_lo:src_hi]
        written += src_hi - src_lo
    return written


#: shared all-zero block for gap filling: ≤ one page-sized slice per gap
#: chunk instead of a request-sized throwaway bytes object
_ZEROS = memoryview(bytes(64 * 1024))


def _zero_range(dst: memoryview, lo: int, hi: int) -> None:
    chunk = len(_ZEROS)
    while lo < hi:
        n = min(chunk, hi - lo)
        dst[lo : lo + n] = _ZEROS[:n]
        lo += n


def _zero_uncovered(
    req: Interval, leaves: Sequence[TreeNode], payloads: Sequence[PagePayload], dst: memoryview
) -> None:
    """Zero exactly the bytes of ``dst`` that no real payload will cover:
    version-0 gaps plus regions backed by virtual payloads."""
    spans: list[tuple[int, int]] = []
    req_offset = req.offset
    req_end = req.end
    for leaf, payload in zip(leaves, payloads):
        if payload.data is None:
            continue
        iv = leaf.interval
        lo = max(iv.offset, req_offset) - req_offset
        hi = min(iv.end, req_end) - req_offset
        if hi > lo:
            spans.append((lo, hi))
    spans.sort()
    cursor = 0
    for lo, hi in spans:
        if lo > cursor:
            _zero_range(dst, cursor, lo)
        if hi > cursor:
            cursor = hi
    _zero_range(dst, cursor, req.size)


def _single_full_page(
    req: Interval, leaves: Sequence[TreeNode], payloads: Sequence[PagePayload]
) -> bytes | None:
    """The stored ``bytes`` object itself when exactly one immutable page
    covers the whole request (the zero-copy plain-read fast path), else
    ``None``. Memoryview payloads still materialize here because plain
    reads promise immutable ``bytes``."""
    if len(leaves) != 1:
        return None
    payload = payloads[0]
    if payload.data is None or leaves[0].interval != req:
        return None
    data = payload.data
    return data if type(data) is bytes else bytes(data)


# ---------------------------------------------------------------------------
# replica fail-over helpers
# ---------------------------------------------------------------------------


def _gather_nodes(router: StaticRouter, keys: list[NodeKey]) -> Proto:
    """Fetch tree nodes, falling back across replicas on failure."""

    def routes_for(key: NodeKey) -> tuple[Address, ...]:
        return router.route(key)

    def call_for(key: NodeKey, owner: Address, last: bool) -> Call:
        return Call(
            owner,
            "meta.get_node",
            (key,),
            request_bytes=_GET_NODE_REQ_BYTES,
            allow_error=not last,
        )

    return (yield from _gather_with_failover(keys, routes_for, call_for))


def _gather_pages(
    geom: TreeGeometry, leaves: list[TreeNode], locate_fallback: bool = False
) -> Proto:
    """Fetch page payloads for leaves, falling back across page replicas.

    With ``locate_fallback``, exhausting a leaf's recorded providers is
    not final: the pm's relocation table is consulted once, in one batch
    for all still-missing pages, and the fetch retried against the
    current holders (the elastic-membership read path)."""

    def key_for(leaf: TreeNode) -> PageKey:
        return PageKey(
            leaf.key.blob_id, leaf.write_uid, geom.page_index(leaf.interval)
        )

    def routes_for(leaf: TreeNode) -> tuple[Address, ...]:
        return tuple(data_addr(p) for p in leaf.providers)

    def call_for(leaf: TreeNode, owner: Address, last: bool) -> Call:
        return Call(
            owner,
            "data.get_page",
            (key_for(leaf),),
            request_bytes=_GET_PAGE_REQ_BYTES,
            allow_error=not last,
        )

    payloads = yield from _gather_with_failover(
        leaves, routes_for, call_for, tolerate_exhaust=locate_fallback
    )
    if not locate_fallback:
        return payloads
    missing = [i for i, p in enumerate(payloads) if isinstance(p, RemoteError)]
    if not missing:
        return payloads
    keys = [key_for(leaves[i]) for i in missing]
    (located,) = yield Batch([Call(ADDR_PM, "pm.locate", (keys,))])
    retry: list[tuple[int, tuple[int, ...]]] = []
    for i, holders in zip(missing, located):
        if not holders:
            # the pm never moved it: the original loss is the real story
            raise payloads[i].unwrap()
        retry.append((i, holders))

    def retry_routes(item: tuple[int, tuple[int, ...]]) -> tuple[Address, ...]:
        return tuple(data_addr(p) for p in item[1])

    def retry_call(item: tuple[int, tuple[int, ...]], owner: Address, last: bool) -> Call:
        return Call(
            owner,
            "data.get_page",
            (key_for(leaves[item[0]]),),
            request_bytes=_GET_PAGE_REQ_BYTES,
            allow_error=not last,
        )

    fetched = yield from _gather_with_failover(retry, retry_routes, retry_call)
    for (i, _holders), payload in zip(retry, fetched):
        payloads[i] = payload
    return payloads


def _gather_with_failover(
    items: list,
    routes_for: Callable[[Any], tuple[Address, ...]],
    call_for: Callable[[Any, Address, bool], Call],
    tolerate_exhaust: bool = False,
) -> Proto:
    """Fetch one value per item, retrying across each item's replica owners.

    Attempt ``k`` addresses replica ``k`` of every still-unresolved item in
    one parallel batch. The final replica's call is issued with
    ``allow_error=False`` so an unrecoverable loss raises with its precise
    error type — unless ``tolerate_exhaust``, where the final error is
    returned in the item's slot instead (callers with a further fallback,
    e.g. the pm relocation table, decide what exhaustion means).
    """
    if not items:
        return []
    out: list[Any] = [None] * len(items)
    pending = list(range(len(items)))
    attempt = 0
    while pending:
        calls = []
        for i in pending:
            routes = routes_for(items[i])
            last = attempt >= len(routes) - 1
            calls.append(
                call_for(
                    items[i],
                    routes[min(attempt, len(routes) - 1)],
                    last and not tolerate_exhaust,
                )
            )
        results = yield Batch(calls)
        still: list[int] = []
        for i, result in zip(pending, results):
            if isinstance(result, RemoteError):
                if (
                    tolerate_exhaust
                    and attempt >= len(routes_for(items[i])) - 1
                ):
                    out[i] = result  # exhausted: hand the error back
                else:
                    still.append(i)
            else:
                out[i] = result
        pending = still
        attempt += 1
    return out


# ---------------------------------------------------------------------------
# payload helpers (used by clients and benches)
# ---------------------------------------------------------------------------


def split_pages(data: bytes, pagesize: int) -> list[PagePayload]:
    """Cut a page-aligned buffer into real page payloads.

    Zero-copy: each payload holds a ``memoryview`` slice of ``data`` (pages
    are immutable downstream, so no per-page materialization is needed)."""
    if len(data) % pagesize:
        raise ValueError(
            f"buffer of {len(data)} B is not a whole number of {pagesize} B pages"
        )
    if len(data) == pagesize and type(data) is bytes:
        # single whole page: store the caller's bytes object itself, which
        # lets a full-page READ later alias it end to end with zero copies
        return [PagePayload.real(data)]
    view = memoryview(data)
    return [
        PagePayload.real(view[i : i + pagesize])
        for i in range(0, len(data), pagesize)
    ]


def virtual_pages(size: int, pagesize: int) -> list[PagePayload]:
    """Virtual payloads covering ``size`` bytes (simulation benches)."""
    if size % pagesize:
        raise ValueError(f"{size} B is not a whole number of {pagesize} B pages")
    return [PagePayload.virtual(pagesize) for _ in range(size // pagesize)]


_uid_counter = itertools.count(1)


def fresh_write_uid(owner: str) -> str:
    """Process-unique write id: ``owner`` scopes it to a logical client."""
    return f"{owner}#{next(_uid_counter)}"


@estimate_size.register
def _(obj: WriteTicket) -> int:
    return 64 + 24 * len(obj.border_refs)
