"""Optional spill-to-disk page backend.

The paper keeps pages in RAM for access efficiency and notes that data
persistence "can still be provided following the scheme described in [12]"
(a hierarchical lower storage tier). :class:`DiskSpill` is that lower tier:
a data provider constructed with a spill writes every page through to disk
and can evict its RAM copies; reads fall back to disk transparently. The
layout is one file per page under a directory keyed by the page address —
deliberately simple, crash-legible, and easy to verify in tests.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.core.journal import check_fsync_policy, sync_dir, sync_file
from repro.providers.page import PageKey, PagePayload


class DiskSpill:
    """File-per-page persistence under a root directory.

    ``fsync`` takes the same policy knob as the control-plane journal
    (``"never"``/``"always"``): under ``"always"`` every stored page is
    fsync'd before its atomic rename and the parent directory is fsync'd
    after, so a power loss can never publish an empty or torn page file.
    """

    def __init__(self, root: str | os.PathLike, *, fsync: str = "never") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = check_fsync_policy(fsync)
        self.stores = 0
        self.loads = 0
        self.bytes_spilled = 0
        self.fsyncs = 0

    def _path(self, key: PageKey) -> Path:
        digest = hashlib.sha1(
            f"{key.blob_id}:{key.write_uid}:{key.index}".encode()
        ).hexdigest()
        # two-level fan-out keeps directories small at scale
        return self.root / digest[:2] / f"{digest}.page"

    def store(self, key: PageKey, payload: PagePayload) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        # Zero-copy spill: a real payload's bytes/memoryview is handed to
        # the file layer as-is (write() accepts any buffer), so a page that
        # arrived as a view of the writer's buffer goes caller-buffer ->
        # disk with no intermediate materialization. Only virtual payloads
        # manufacture bytes (their zeros exist nowhere yet).
        view = payload.view()
        with open(tmp, "wb") as f:
            f.write(view if view is not None else bytes(payload.nbytes))
            if self.fsync == "always":
                # the data must be durable BEFORE the rename publishes it,
                # else a power loss can expose an empty/torn page file
                sync_file(f)
                self.fsyncs += 1
        os.replace(tmp, path)  # atomic publish: readers never see torn pages
        if self.fsync == "always":
            sync_dir(path.parent)  # make the new directory entry durable
            self.fsyncs += 1
        self.stores += 1
        self.bytes_spilled += payload.nbytes

    def load(self, key: PageKey) -> PagePayload | None:
        path = self._path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        self.loads += 1
        return PagePayload.real(data)

    def drop(self, key: PageKey) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def page_files(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.page"))
