"""File-like access to a blob.

The paper positions its service against distributed *file systems* (§I):
applications expect a file-oriented API. :class:`BlobFile` provides one on
top of the versioned blob — ``read`` / ``write`` / ``seek`` / ``tell`` with
explicit snapshot semantics:

- a file opened with ``version=`` is a **pinned immutable snapshot**: reads
  are repeatable forever, writes are rejected;
- a writable file buffers writes and publishes them as one blob WRITE per
  ``flush()`` — so one flush == one snapshot, and ``flush()`` returns the
  new version number;
- unaligned flushes fall back to read-modify-write against the latest
  snapshot (page-granularity last-writer-wins, as documented on
  :meth:`~repro.core.client.BlobClient.write_unaligned`).
"""

from __future__ import annotations

import io

from repro.core.client import BlobClient
from repro.errors import ReproError
from repro.version.manager import LATEST


class BlobFile:
    """Seekable file facade over one blob."""

    def __init__(
        self,
        client: BlobClient,
        blob_id: str,
        mode: str = "r",
        version: int = LATEST,
    ) -> None:
        if mode not in ("r", "r+", "w"):
            raise ValueError(f"mode must be 'r', 'r+' or 'w', got {mode!r}")
        self.client = client
        self.blob_id = blob_id
        self.mode = mode
        self.geom = client.open(blob_id)
        if mode == "r":
            # pin: resolve LATEST once so reads are repeatable
            self.version = (
                client.latest(blob_id) if version == LATEST else version
            )
        else:
            if version != LATEST:
                raise ValueError("writable files always track the latest version")
            self.version = LATEST
        self._pos = 0
        self._buffer: list[tuple[int, bytes]] = []  # (offset, pending bytes)
        self._closed = False

    # -- positioning -----------------------------------------------------

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = self.geom.total_size + offset
        else:
            raise ValueError(f"bad whence {whence!r}")
        if pos < 0:
            raise ValueError("negative seek position")
        self._pos = pos
        return pos

    def tell(self) -> int:
        return self._pos

    @property
    def size(self) -> int:
        """The blob's fixed logical size (files never grow or shrink)."""
        return self.geom.total_size

    # -- reading -----------------------------------------------------------

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if self._buffer:
            raise ReproError("flush() pending writes before reading")
        remaining = self.geom.total_size - self._pos
        if remaining <= 0:
            return b""
        n = remaining if size < 0 else min(size, remaining)
        if n == 0:
            return b""
        version = self.version if self.mode == "r" else LATEST
        data = self.client.read_bytes(self.blob_id, self._pos, n, version=version)
        self._pos += n
        return data

    def readinto(self, buf) -> int:
        data = self.read(len(buf))
        buf[: len(data)] = data
        return len(data)

    # -- writing ------------------------------------------------------------

    def write(self, data: bytes) -> int:
        self._check_open()
        if self.mode == "r":
            raise ReproError("file opened read-only (a pinned snapshot)")
        if not data:
            return 0
        end = self._pos + len(data)
        if end > self.geom.total_size:
            raise ReproError(
                f"write past fixed blob size ({end} > {self.geom.total_size})"
            )
        self._buffer.append((self._pos, bytes(data)))
        self._pos = end
        return len(data)

    def flush(self) -> int | None:
        """Publish buffered writes as one snapshot; returns its version.

        Contiguous buffered writes are coalesced; non-contiguous buffers
        flush as successive snapshots in offset order.
        """
        self._check_open()
        if not self._buffer:
            return None
        runs = self._coalesce()
        self._buffer.clear()
        version = None
        for offset, data in runs:
            if (
                offset % self.geom.pagesize == 0
                and len(data) % self.geom.pagesize == 0
            ):
                version = self.client.write(self.blob_id, data, offset).version
            else:
                version = self.client.write_unaligned(
                    self.blob_id, data, offset
                ).version
        return version

    def _coalesce(self) -> list[tuple[int, bytes]]:
        """Merge buffered writes into disjoint runs, later writes winning
        on overlap (write order, not offset order, decides)."""
        runs: list[tuple[int, bytearray]] = []
        for offset, data in self._buffer:
            merged: list[tuple[int, bytearray]] = []
            new_off, new_buf = offset, bytearray(data)
            for run_off, run_buf in runs:
                run_end = run_off + len(run_buf)
                new_end = new_off + len(new_buf)
                if run_end < new_off or new_end < run_off:
                    merged.append((run_off, run_buf))  # disjoint, keep
                    continue
                # overlap or adjacency: splice the runs, new bytes win
                lo = min(run_off, new_off)
                hi = max(run_end, new_end)
                combined = bytearray(hi - lo)
                combined[run_off - lo : run_off - lo + len(run_buf)] = run_buf
                combined[new_off - lo : new_off - lo + len(new_buf)] = new_buf
                new_off, new_buf = lo, combined
            merged.append((new_off, new_buf))
            runs = merged
        return [(off, bytes(buf)) for off, buf in sorted(runs)]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            if self.mode != "r":
                self.flush()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("I/O operation on closed BlobFile")

    def __enter__(self) -> "BlobFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        pin = f"@v{self.version}" if self.mode == "r" else "@latest"
        return f"<BlobFile {self.blob_id}{pin} mode={self.mode} pos={self._pos}>"


def open_blob(
    client: BlobClient, blob_id: str, mode: str = "r", version: int = LATEST
) -> BlobFile:
    """Convenience constructor mirroring the built-in ``open``."""
    return BlobFile(client, blob_id, mode=mode, version=version)
