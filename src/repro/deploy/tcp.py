"""TCP deployment: the blob store as an actual cluster of OS processes.

Two modes, one code path:

- **launched** (default, ``spec.endpoints`` empty): for every cluster
  node the builder spawns ``python -m repro.tools.node`` as an
  independent OS process bound to an ephemeral loopback port — the
  paper's layout, one agent hosting ``data/i`` + ``meta/i`` per node
  (``spec.colocate``), started, dialed, certified and torn down entirely
  by this module. This is the single-host CI cluster.
- **connected** (``spec.endpoints`` or the ``endpoints=`` argument
  given): the agents are already running — launched by an operator, an
  init system, or on other hosts entirely — and the builder only dials
  them. Nothing else changes: same driver, same handshake, same
  protocols.

Orthogonally, ``control_plane`` picks where the version manager and
provider manager — the intentional serialization points, whose RPCs are
tiny — live:

- ``"parent"``: on dedicated service threads in the driver process, as
  in the process deployment (the historical tcp layout);
- ``"agents"``: on their own node agents, dialed like any other remote
  actor — the paper's deployment, where the vm and pm get dedicated
  machines and **no actor lives in the client parent**. In launched mode
  the builder spawns one agent for each; in connected mode
  ``spec.endpoints`` must name ``vm`` and ``pm`` (and ``control_plane``
  defaults to ``"agents"`` whenever it does). The pm starts empty; data
  agents register their providers with it at start (they are launched
  with ``--pm``), and the builder blocks until the pm has learned every
  provider, so allocation never races registration.

The inspection surface (``blob_nodes``, ``total_pages_stored``,
``transport_stats``, ``server_stats``) is deployment-parity by
construction: the same provider proxy classes the process deployment
uses, plus vm/pm proxies when the control plane is remote — all fetching
over TCP.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, Union

from repro.core.client import AsyncBlobClient, BlobClient
from repro.core.config import DeploymentSpec
from repro.errors import ConfigError
from repro.metadata.router import StaticRouter
from repro.net.address import CONTROL_ACTORS, ClusterMap, Endpoint, format_actor
from repro.net.aio import AioDriver
from repro.net.tcp import TcpDriver
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.version.manager import VersionManager

# the TCP deployment reuses the process deployment's proxy classes: they
# only need RemoteActorDriver.call, which both drivers inherit
from repro.deploy.process import DataProviderProxy, MetadataProviderProxy

#: how long the builder waits for a launched agent's READY line
LAUNCH_TIMEOUT = 30.0


class VersionManagerProxy:
    """Parent-side view of a version manager on its own node agent.

    Exposes the inspection surface deployments and tests read
    (``get_latest``, ``patches``, ``stat``, ``in_flight_versions``) with
    the same signatures as a live :class:`VersionManager`, each fetched
    as one ``vm.*`` RPC. Protocol traffic (assign/complete/resolve) does
    not go through this proxy — clients reach the remote vm through the
    driver like any other actor.
    """

    def __init__(self, driver: TcpDriver) -> None:
        self._driver = driver

    def get_latest(self, blob_id: str) -> int:
        return self._driver.call("vm", "vm.get_latest", (blob_id,))

    def stat(self, blob_id: str) -> tuple[int, int, int]:
        return self._driver.call("vm", "vm.stat", (blob_id,))

    def patches(self, blob_id: str) -> list[tuple[int, int, int]]:
        return self._driver.call("vm", "vm.patches", (blob_id,))

    def in_flight_versions(self, blob_id: str) -> list[int]:
        return self._driver.call("vm", "vm.in_flight", (blob_id,))


class ProviderManagerProxy:
    """Parent-side view of a provider manager on its own node agent."""

    def __init__(self, driver: TcpDriver) -> None:
        self._driver = driver

    def providers(self) -> list[int]:
        return self._driver.call("pm", "pm.providers")

    @property
    def provider_count(self) -> int:
        return len(self.providers())

    def register(self, provider_id: int) -> int:
        return self._driver.call("pm", "pm.register", (provider_id,))

    def deregister(self, provider_id: int) -> int:
        return self._driver.call("pm", "pm.deregister", (provider_id,))

    def report_usage(self, provider_id: int, nbytes: int) -> bool:
        return self._driver.call("pm", "pm.report_usage", (provider_id, nbytes))

    def config(self) -> dict:
        return self._driver.call("pm", "pm.config")


class _AgentProcess:
    """One launched ``repro.tools.node`` OS process."""

    def __init__(
        self,
        actor_names: list[str],
        host: str,
        checksum: bool,
        extra_args: Sequence[str] = (),
    ) -> None:
        self.actor_names = actor_names
        argv = [
            sys.executable,
            "-m",
            "repro.tools.node",
            "--host",
            host,
            "--port",
            "0",
        ]
        for name in actor_names:
            argv += ["--actor", name]
        if checksum:
            argv.append("--checksum")
        argv += list(extra_args)
        # the agent must import repro no matter how the parent found it
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_dir
        )
        # kept for respawn(): a restarted agent reruns the same command
        self.argv = argv
        self.env = env
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, env=env, text=True
        )
        self.endpoint: Endpoint | None = None

    def respawn(self) -> None:
        """Relaunch a dead agent on the **same** endpoint.

        The original launch used ``--port 0``; the respawn pins the port
        the first incarnation announced, so every peer's automatic
        redial (same ``host:port``) reaches the new process. Follow with
        :meth:`wait_ready`. Only meaningful for agents started with a
        ``--state-dir`` — a stateless vm/pm comes back empty.
        """
        if self.endpoint is None:
            raise RuntimeError("agent was never READY; nothing to respawn")
        if self.proc.poll() is None:
            raise RuntimeError(f"agent {self.actor_names} is still running")
        self.close_pipe()
        argv = list(self.argv)
        argv[argv.index("--port") + 1] = str(self.endpoint.port)
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, env=self.env, text=True
        )
        self.endpoint = None

    def wait_ready(self, deadline: float) -> Endpoint:
        """Block (bounded) for the agent's ``READY host port`` line."""
        stdout = self.proc.stdout
        assert stdout is not None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"agent {self.actor_names} not READY within {LAUNCH_TIMEOUT}s"
                )
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"agent {self.actor_names} exited with code "
                    f"{self.proc.returncode} before READY"
                )
            ready, _, _ = select.select([stdout], [], [], min(remaining, 0.2))
            if not ready:
                continue
            line = stdout.readline()
            if not line:
                continue  # poll() above surfaces the exit next iteration
            parts = line.split()
            if len(parts) == 3 and parts[0] == "READY":
                self.endpoint = Endpoint(parts[1], int(parts[2]))
                return self.endpoint
            raise RuntimeError(
                f"agent {self.actor_names} printed {line!r}, expected READY"
            )

    def reap(self, timeout: float = 10.0) -> int | None:
        """Wait for exit; escalate to terminate/kill on a hung agent."""
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.terminate()
        try:
            return self.proc.wait(5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
        try:
            return self.proc.wait(5)
        except subprocess.TimeoutExpired:  # pragma: no cover - unkillable
            return None

    def kill(self) -> None:
        self.proc.kill()
        try:
            self.proc.wait(10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass

    def close_pipe(self) -> None:
        if self.proc.stdout is not None:
            try:
                self.proc.stdout.close()
            except OSError:
                pass


@dataclass
class TcpDeployment:
    spec: DeploymentSpec
    #: TcpDriver (one thread pair per peer) or AioDriver (one event loop
    #: multiplexing every peer) — same registration and execution surface
    driver: Union[TcpDriver, AioDriver]
    router: StaticRouter
    #: live objects when the control plane is in-parent, proxies when it
    #: runs on its own agents (same inspection surface either way)
    vm: Union[VersionManager, VersionManagerProxy]
    pm: Union[ProviderManager, ProviderManagerProxy]
    data: dict[int, DataProviderProxy]
    meta: dict[int, MetadataProviderProxy]
    cluster_map: ClusterMap
    #: True when vm/pm live on their own node agents (zero in-parent actors)
    remote_control_plane: bool = False
    #: per-actor ``(wire_rpcs, sub_calls)`` already served when the build
    #: returned — the deployment's own setup traffic (fully-remote control
    #: plane: provider registration, both the agents' self-registration
    #: frames and the builder's registration poll). Subtract from
    #: ``driver.server_stats()`` to get workload-only counts. Exact for
    #: *launched* clusters (the builder waits until registration traffic
    #: is quiescent); for operator-run agents dialed via ``endpoints`` an
    #: agent still retrying its own ``--pm`` registration can land one
    #: late frame after this snapshot.
    stats_base: dict = field(default_factory=dict)
    #: caller-side transport counters at build time (the builder's own
    #: calls); subtract from ``transport_stats()`` for workload-only counts
    transport_base: dict = field(default_factory=dict)
    #: launched loopback agents (empty in connected mode)
    agents: list[_AgentProcess] = field(default_factory=list)
    _clients: list[BlobClient] = field(default_factory=list)

    @property
    def stats_base_rpcs(self) -> int:
        """Total setup wire RPCs (see :attr:`stats_base`)."""
        return sum(r for r, _ in self.stats_base.values())

    def in_parent_actors(self) -> list:
        """Addresses served by threads inside the client parent — the
        serialization points under ``control_plane="parent"``, the empty
        list when the deployment is fully distributed."""
        remote = set(self.driver.remote_addresses())
        return [a for a in self.driver.addresses() if a not in remote]

    def client(self, name: str | None = None) -> BlobClient:
        c = BlobClient(
            self.driver,
            self.router,
            name=name,
            cache_capacity=self.spec.cache_capacity,
            elastic=self.spec.strategy == "hash_ring",
        )
        self._clients.append(c)
        return c

    def async_client(self, name: str | None = None) -> AsyncBlobClient:
        """A coroutine-facade client (``build_tcp(..., client="aio")``
        deployments only): awaitable read/write/read_into sharing the
        deployment's event-loop driver. Any number of these can run
        concurrently as coroutines — the high-concurrency client tier."""
        if not hasattr(self.driver, "drive"):
            raise ConfigError(
                "async_client() needs the aio driver; build the deployment "
                "with build_tcp(..., client='aio')"
            )
        return AsyncBlobClient(
            self.driver,
            self.router,
            name=name,
            cache_capacity=self.spec.cache_capacity,
            elastic=self.spec.strategy == "hash_ring",
        )

    @property
    def data_ids(self) -> list[int]:
        return sorted(self.data)

    @property
    def meta_ids(self) -> list[int]:
        return sorted(self.meta)

    def total_pages_stored(self) -> int:
        return sum(p.page_count for p in self.data.values())

    def blob_nodes(self, blob_id: str) -> list:
        """Every stored tree node of a blob across all metadata providers
        (inspection surface shared with the other deployments; the
        cross-driver conformance suite compares these). Fetched over the
        wire, one ``meta.dump_nodes`` RPC per provider."""
        return [
            node
            for proxy in self.meta.values()
            for node in proxy.iter_nodes(blob_id)
        ]

    def transport_stats(self) -> dict[str, int]:
        """Batched-transport counters (see ThreadedDriver.transport_stats)."""
        return self.driver.transport_stats()

    def workload_stats(self) -> dict:
        """Per-actor ``(wire_rpcs, sub_calls)`` with the deployment's own
        setup traffic (:attr:`stats_base`) subtracted — the counts the
        *workload* generated. Telemetry/stats scrapes travel as controls
        and are invisible to these counters, so scraping between two
        reads of this never perturbs the difference."""
        stats = self.driver.server_stats()
        return {
            a: (
                r - self.stats_base.get(a, (0, 0))[0],
                c - self.stats_base.get(a, (0, 0))[1],
            )
            for a, (r, c) in stats.items()
        }

    def metrics(self) -> dict:
        """The cluster's unified telemetry document (``repro.metrics/1``):
        per-actor/per-method latency histograms, error counters and slow
        spans, scraped over the wire via the ``telemetry`` control (see
        :mod:`repro.obs.metrics`; the CLI twin is ``repro.tools.metrics``)."""
        from repro.obs.metrics import scrape_driver

        return scrape_driver(self.driver, source="tcp")

    # -- elastic membership ----------------------------------------------

    def add_agent(
        self, provider_id: int | None = None, timeout: float = LAUNCH_TIMEOUT
    ) -> int:
        """Launch a new storage agent and admit it to the *running* cluster.

        The agent self-registers with the pm over the PR 5 path (it is
        started with ``--pm`` when the control plane is remote; with an
        in-parent pm the builder registers it directly), the builder
        blocks until the pm knows it, and a provider proxy joins
        :attr:`data`. The new provider receives fresh allocations
        immediately; call :meth:`rebalance` to migrate existing pages to
        their new consistent-hash homes. Launched clusters only.
        """
        if not self.agents:
            raise ConfigError(
                "add_agent launches an OS process; connected clusters "
                "(endpoints=...) are operator-managed"
            )
        new_id = provider_id if provider_id is not None else max(self.data) + 1
        if ("data", new_id) in self.cluster_map:
            raise ConfigError(f"provider {new_id} already deployed")
        name = format_actor(("data", new_id))
        host = self.cluster_map.endpoint_for(("data", min(self.data))).host
        extra: list[str] = []
        if self.remote_control_plane:
            extra = ["--pm", str(self.cluster_map.endpoint_for("pm"))]
        agent = _AgentProcess([name], host, self.spec.page_checksums, extra)
        deadline = time.monotonic() + timeout
        try:
            endpoint = agent.wait_ready(deadline)
        except BaseException:
            agent.kill()
            agent.close_pipe()
            raise
        self.agents.append(agent)
        self.cluster_map.add(name, endpoint)
        self.driver.register_remote(("data", new_id), endpoint)
        self.driver.peer(("data", new_id)).wait_connected(timeout)
        if self.remote_control_plane:
            while new_id not in self.driver.call("pm", "pm.providers"):
                if time.monotonic() > deadline:
                    raise ConfigError(
                        f"pm never learned new provider {new_id} "
                        "(its agent registers at start via --pm)"
                    )
                time.sleep(0.05)
        else:
            self.pm.register(new_id)
        self.data[new_id] = DataProviderProxy(self.driver, new_id)
        return new_id

    def rebalance(self, limit_moves: int | None = None) -> dict:
        """Migrate pages to their consistent-hash homes (plan, execute,
        commit — or resume a plan a crash interrupted). Requires the
        ``hash_ring`` strategy; see :mod:`repro.providers.rebalance`."""
        from repro.providers.rebalance import execute_rebalance

        return execute_rebalance(
            self.driver, self.pm.providers(), limit_moves=limit_moves
        )

    def drain_agent(
        self, provider_id: int, limit_moves: int | None = None
    ) -> dict:
        """Drain one storage provider and retire it from the cluster.

        Every page it holds is migrated to the surviving providers'
        hash homes (journaled, resumable), the provider is deregistered,
        and its actor receives a clean shutdown. With ``limit_moves`` the
        drain stops early (``committed`` false) and the provider stays a
        draining member — call again to resume.
        """
        from repro.providers.rebalance import drain_provider

        summary = drain_provider(
            self.driver,
            self.pm.providers(),
            provider_id,
            limit_moves=limit_moves,
        )
        if not summary["committed"]:
            return summary
        address = ("data", provider_id)
        self.driver.peer(address).stop()
        self.data.pop(provider_id, None)
        try:
            idx = self.agent_index_for(address)
        except KeyError:
            idx = None
        if idx is not None and self.agents[idx].actor_names == [
            format_actor(address)
        ]:
            # the agent hosted only this actor: its serve loop exits now
            self.agents[idx].reap()
            self.agents[idx].close_pipe()
        return summary

    # -- failure injection ------------------------------------------------

    def kill_agent(self, index: int) -> None:
        """SIGKILL one launched node agent: every actor it hosts becomes a
        dead peer (RemoteError fail-fast + replica fail-over)."""
        self.agents[index].kill()

    def restart_agent(self, index: int, timeout: float = LAUNCH_TIMEOUT) -> None:
        """Relaunch a killed agent on its original endpoint and wait for
        READY. Peers redial automatically; with a ``state_dir`` the new
        incarnation replays its journal first, so a vm/pm restarted this
        way resumes exactly where the kill interrupted it. Callers that
        need the reconnect to have happened should follow with
        ``deployment.driver.peer(address).wait_connected()``."""
        agent = self.agents[index]
        old = agent.endpoint
        agent.respawn()
        got = agent.wait_ready(time.monotonic() + timeout)
        assert got == old, f"agent restarted on {got}, expected {old}"

    def agent_index_for(self, address) -> int:
        """Which launched agent hosts an actor (colocation-aware)."""
        name = format_actor(address)
        for i, agent in enumerate(self.agents):
            if name in agent.actor_names:
                return i
        raise KeyError(f"no launched agent hosts {name!r}")

    # -- lifecycle --------------------------------------------------------

    def agent_exitcodes(self) -> list[int | None]:
        """Exit codes after :meth:`close` (0 = clean shutdown)."""
        return [a.proc.returncode for a in self.agents]

    def close(self) -> None:
        # orderly: every peer sends its actor the shutdown control, so
        # each agent's serve_forever returns once its last actor stops
        self.driver.close()
        for agent in self.agents:
            agent.reap()
            agent.close_pipe()

    def __enter__(self) -> "TcpDeployment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def plan_loopback_nodes(spec: DeploymentSpec) -> list[list[str]]:
    """Actor names per launched node, the paper's colocated layout:
    node ``i`` hosts ``data/i`` and ``meta/i`` (``spec.colocate``), or
    one agent per actor when colocation is off."""
    data = [format_actor(("data", i)) for i in range(spec.n_data)]
    meta = [format_actor(("meta", i)) for i in range(spec.n_meta)]
    if not spec.colocate:
        return [[name] for name in data + meta]
    nodes = []
    for i in range(max(spec.n_data, spec.n_meta)):
        node = []
        if i < spec.n_data:
            node.append(data[i])
        if i < spec.n_meta:
            node.append(meta[i])
        nodes.append(node)
    return nodes


def _await_pm_registration(
    driver: TcpDriver, spec: DeploymentSpec, deadline: float
) -> None:
    """Block until the remote pm has learned every data provider.

    Launched data agents register themselves (they are started with
    ``--pm``, one wire RPC each); this poll turns that asynchronous
    start-up into the builder's synchronous guarantee that the pm knows
    the whole cluster before the first write allocates anything — and,
    because each agent registers exactly once, that no registration
    traffic trails into the workload (the conformance suite's wire-RPC
    equality depends on that quiescence).
    """
    expected = set(range(spec.n_data))
    while True:
        got = set(driver.call("pm", "pm.providers"))
        if expected <= got:
            return
        if time.monotonic() > deadline:
            missing = sorted(expected - got)
            raise ConfigError(
                f"pm never learned data providers {missing} (agents launched "
                f"with --pm register at start; is the pm agent reachable?)"
            )
        time.sleep(0.05)


def build_tcp(
    spec: DeploymentSpec | None = None,
    *,
    endpoints: dict[str, str] | ClusterMap | None = None,
    host: str = "127.0.0.1",
    connect_timeout: float = 5.0,
    control_plane: str | None = None,
    state_dir: str | os.PathLike | None = None,
    client: str = "threaded",
) -> TcpDeployment:
    """Assemble a TCP cluster deployment (context-manage it to stop it).

    With no ``endpoints`` (and an empty ``spec.endpoints``) a loopback
    cluster of node-agent OS processes is launched; otherwise the given
    agents are dialed. ``control_plane="agents"`` puts the vm and pm on
    their own node agents too (launched, or dialed from the two extra
    ``endpoints`` entries ``"vm"``/``"pm"``) so no actor runs in this
    process; the default ``None`` means ``"agents"`` exactly when the
    endpoint map names both control actors, else ``"parent"``. Either
    way the builder blocks until every peer holds a live connection and
    the pm knows every data provider, so a returned deployment is
    serving and allocatable.

    ``state_dir`` makes the control plane durable: the vm journals under
    ``<state_dir>/vm`` and the pm under ``<state_dir>/pm`` (launched
    agents are started with ``--state-dir``; an in-parent control plane
    journals directly). Killing a control agent and calling
    :meth:`TcpDeployment.restart_agent` then resumes the same version
    history. In connected mode the operator owns the agents' state dirs,
    so passing one here is a :class:`~repro.errors.ConfigError`.

    ``client`` picks the caller-side transport: ``"threaded"`` (default)
    is the :class:`~repro.net.tcp.TcpDriver` with one sender/receiver
    thread pair per peer; ``"aio"`` is the
    :class:`~repro.net.aio.AioDriver`, one event loop multiplexing every
    peer socket, which additionally enables
    :meth:`TcpDeployment.async_client` for thousands of concurrent
    client coroutines. The wire traffic is identical either way (the
    conformance suite certifies both against the same fingerprints).
    """
    spec = spec or DeploymentSpec()
    endpoints = endpoints if endpoints is not None else (spec.endpoints or None)
    if control_plane not in (None, "parent", "agents"):
        raise ConfigError(
            f"control_plane must be 'parent' or 'agents', got {control_plane!r}"
        )
    if state_dir is not None and endpoints is not None:
        raise ConfigError(
            "state_dir applies to launched clusters; operator-run agents "
            "(endpoints=...) configure --state-dir on their own command lines"
        )
    if client not in ("threaded", "aio"):
        raise ConfigError(
            f"client must be 'threaded' or 'aio', got {client!r}"
        )

    agents: list[_AgentProcess] = []
    try:
        deadline = time.monotonic() + LAUNCH_TIMEOUT
        if endpoints is None:
            remote_cp = control_plane == "agents"
            cluster_map = ClusterMap()
            # append one at a time: if the k-th launch raises (EMFILE,
            # ENOMEM), the k-1 agents already running must be visible to
            # the except-cleanup below, or they leak as orphan processes
            storage_args: list[str] = []
            if remote_cp:
                # control plane first: storage agents need the pm's
                # endpoint on their command line to self-register
                vm_args: list[str] = []
                pm_args = ["--strategy", spec.strategy,
                           "--replication", str(spec.replication)]
                if spec.strategy_kwargs:
                    pm_args += ["--strategy-kwargs",
                                json.dumps(spec.strategy_kwargs)]
                if state_dir is not None:
                    # one subdirectory (and one agent lock) per agent
                    vm_args += ["--state-dir", str(Path(state_dir) / "vm")]
                    pm_args += ["--state-dir", str(Path(state_dir) / "pm")]
                agents.append(_AgentProcess(["vm"], host, False, vm_args))
                agents.append(_AgentProcess(["pm"], host, False, pm_args))
                cluster_map.add("vm", agents[0].wait_ready(deadline))
                pm_endpoint = agents[1].wait_ready(deadline)
                cluster_map.add("pm", pm_endpoint)
                storage_args = ["--pm", str(pm_endpoint)]
            first_storage = len(agents)
            for names in plan_loopback_nodes(spec):
                agents.append(
                    _AgentProcess(names, host, spec.page_checksums, storage_args)
                )
            for agent in agents[first_storage:]:
                endpoint = agent.wait_ready(deadline)
                for name in agent.actor_names:
                    cluster_map.add(name, endpoint)
        else:
            cluster_map = (
                endpoints
                if isinstance(endpoints, ClusterMap)
                else ClusterMap.from_spec(endpoints)
            )
            if control_plane is None:
                remote_cp = cluster_map.has_control_plane()
            else:
                remote_cp = control_plane == "agents"
            if remote_cp and not cluster_map.has_control_plane():
                raise ConfigError(
                    "control_plane='agents' needs endpoints for 'vm' and 'pm'"
                )
        if not remote_cp and any(a in cluster_map for a in CONTROL_ACTORS):
            # a partial map (only one of vm/pm) must not silently fall
            # back to an in-parent control plane either: a fresh parent
            # vm next to an operator's vm agent means two disjoint
            # version histories
            raise ConfigError(
                "endpoints name a control actor ('vm'/'pm') but the "
                "control plane is in-parent; name both and pass "
                "control_plane='agents' (or drop the entries)"
            )
        for i in range(spec.n_data):
            if ("data", i) not in cluster_map:
                raise ConfigError(f"no endpoint for actor 'data/{i}'")
        for i in range(spec.n_meta):
            if ("meta", i) not in cluster_map:
                raise ConfigError(f"no endpoint for actor 'meta/{i}'")

        driver: Union[TcpDriver, AioDriver]
        if client == "aio":
            driver = AioDriver(connect_timeout=connect_timeout)
        else:
            driver = TcpDriver(connect_timeout=connect_timeout)
        try:
            if remote_cp:
                driver.register_remote("vm", cluster_map.endpoint_for("vm"))
                driver.register_remote("pm", cluster_map.endpoint_for("pm"))
                vm: Union[VersionManager, VersionManagerProxy] = (
                    VersionManagerProxy(driver)
                )
                pm: Union[ProviderManager, ProviderManagerProxy] = (
                    ProviderManagerProxy(driver)
                )
            else:
                vm_journal = pm_journal = None
                if state_dir is not None:
                    from repro.core.journal import Journal

                    vm_journal = Journal(Path(state_dir) / "vm")
                    pm_journal = Journal(Path(state_dir) / "pm")
                vm = VersionManager(journal=vm_journal)
                pm = ProviderManager(
                    make_strategy(spec.strategy, **spec.strategy_kwargs),
                    replication=spec.replication,
                    journal=pm_journal,
                )
                for i in range(spec.n_data):
                    pm.register(i)
                driver.register("vm", vm)
                driver.register("pm", pm)
            for i in range(spec.n_data):
                driver.register_remote(("data", i), cluster_map.endpoint_for(("data", i)))
            for i in range(spec.n_meta):
                driver.register_remote(("meta", i), cluster_map.endpoint_for(("meta", i)))
            driver.wait_connected(timeout=max(connect_timeout, 10.0))
            if remote_cp:
                # the remote pm must agree with the spec the clients
                # plan around: a silent replication mismatch surfaces
                # only as data loss at the first storage-node failure
                pm_config = driver.call("pm", "pm.config")
                expected = {
                    "replication": spec.replication,
                    "strategy": spec.strategy,
                    # build the spec's strategy locally to resolve
                    # constructor defaults, so {} == {"k": 2, "seed": 0}
                    # compares as the placement-equivalence it is
                    "strategy_kwargs": make_strategy(
                        spec.strategy, **spec.strategy_kwargs
                    ).params(),
                }
                if pm_config != expected:
                    raise ConfigError(
                        f"the pm agent was started with {pm_config}, but "
                        f"DeploymentSpec assumes {expected}; restart the pm "
                        f"with matching --strategy/--replication"
                    )
                if agents:
                    # launched agents self-register; wait for quiescence
                    _await_pm_registration(driver, spec, deadline)
                else:
                    # operator-run agents may predate --pm or still be
                    # registering: replay deployment-wide registration
                    # (idempotent — pm membership is a set)
                    for i in range(spec.n_data):
                        driver.call("pm", "pm.register", (i,))
        except BaseException:
            # hang up without sending shutdown controls: a failed build
            # must never stop an operator's running agents (launched
            # agents are killed by the outer cleanup anyway)
            driver.abort()
            raise
    except BaseException:
        for agent in agents:
            agent.kill()
            agent.close_pipe()
        raise

    router = StaticRouter(list(range(spec.n_meta)), replication=spec.replication)
    data = {i: DataProviderProxy(driver, i) for i in range(spec.n_data)}
    meta = {i: MetadataProviderProxy(driver, i) for i in range(spec.n_meta)}
    return TcpDeployment(
        spec=spec,
        driver=driver,
        router=router,
        vm=vm,
        pm=pm,
        data=data,
        meta=meta,
        cluster_map=cluster_map,
        remote_control_plane=remote_cp,
        # stats controls are not counted as wire RPCs, so this snapshot
        # is itself invisible to the counters it baselines
        stats_base=driver.server_stats(),
        transport_base=driver.transport_stats(),
        agents=agents,
    )
