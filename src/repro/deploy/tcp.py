"""TCP deployment: the blob store as an actual cluster of OS processes.

Two modes, one code path:

- **launched** (default, ``spec.endpoints`` empty): for every cluster
  node the builder spawns ``python -m repro.tools.node`` as an
  independent OS process bound to an ephemeral loopback port — the
  paper's layout, one agent hosting ``data/i`` + ``meta/i`` per node
  (``spec.colocate``), started, dialed, certified and torn down entirely
  by this module. This is the single-host CI cluster.
- **connected** (``spec.endpoints`` or the ``endpoints=`` argument
  given): the agents are already running — launched by an operator, an
  init system, or on other hosts entirely — and the builder only dials
  them. Nothing else changes: same driver, same handshake, same
  protocols.

As in the process deployment, the version manager and provider manager —
the intentional serialization points, whose RPCs are tiny — live in the
driver process on dedicated service threads, and the data/metadata
providers (where the paper's parallelism lives) are remote. The
inspection surface (``blob_nodes``, ``total_pages_stored``,
``transport_stats``, ``server_stats``) is deployment-parity by
construction: the same proxy classes the process deployment uses, now
fetching over TCP.
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.client import BlobClient
from repro.core.config import DeploymentSpec
from repro.errors import ConfigError
from repro.metadata.router import StaticRouter
from repro.net.address import ClusterMap, Endpoint, format_actor
from repro.net.tcp import TcpDriver
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.version.manager import VersionManager

# the TCP deployment reuses the process deployment's proxy classes: they
# only need RemoteActorDriver.call, which both drivers inherit
from repro.deploy.process import DataProviderProxy, MetadataProviderProxy

#: how long the builder waits for a launched agent's READY line
LAUNCH_TIMEOUT = 30.0


class _AgentProcess:
    """One launched ``repro.tools.node`` OS process."""

    def __init__(self, actor_names: list[str], host: str, checksum: bool) -> None:
        self.actor_names = actor_names
        argv = [
            sys.executable,
            "-m",
            "repro.tools.node",
            "--host",
            host,
            "--port",
            "0",
        ]
        for name in actor_names:
            argv += ["--actor", name]
        if checksum:
            argv.append("--checksum")
        # the agent must import repro no matter how the parent found it
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_dir
        )
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, env=env, text=True
        )
        self.endpoint: Endpoint | None = None

    def wait_ready(self, deadline: float) -> Endpoint:
        """Block (bounded) for the agent's ``READY host port`` line."""
        stdout = self.proc.stdout
        assert stdout is not None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"agent {self.actor_names} not READY within {LAUNCH_TIMEOUT}s"
                )
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"agent {self.actor_names} exited with code "
                    f"{self.proc.returncode} before READY"
                )
            ready, _, _ = select.select([stdout], [], [], min(remaining, 0.2))
            if not ready:
                continue
            line = stdout.readline()
            if not line:
                continue  # poll() above surfaces the exit next iteration
            parts = line.split()
            if len(parts) == 3 and parts[0] == "READY":
                self.endpoint = Endpoint(parts[1], int(parts[2]))
                return self.endpoint
            raise RuntimeError(
                f"agent {self.actor_names} printed {line!r}, expected READY"
            )

    def reap(self, timeout: float = 10.0) -> int | None:
        """Wait for exit; escalate to terminate/kill on a hung agent."""
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.terminate()
        try:
            return self.proc.wait(5)
        except subprocess.TimeoutExpired:
            self.proc.kill()
        try:
            return self.proc.wait(5)
        except subprocess.TimeoutExpired:  # pragma: no cover - unkillable
            return None

    def kill(self) -> None:
        self.proc.kill()
        try:
            self.proc.wait(10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass

    def close_pipe(self) -> None:
        if self.proc.stdout is not None:
            try:
                self.proc.stdout.close()
            except OSError:
                pass


@dataclass
class TcpDeployment:
    spec: DeploymentSpec
    driver: TcpDriver
    router: StaticRouter
    vm: VersionManager
    pm: ProviderManager
    data: dict[int, DataProviderProxy]
    meta: dict[int, MetadataProviderProxy]
    cluster_map: ClusterMap
    #: launched loopback agents (empty in connected mode)
    agents: list[_AgentProcess] = field(default_factory=list)
    _clients: list[BlobClient] = field(default_factory=list)

    def client(self, name: str | None = None) -> BlobClient:
        c = BlobClient(
            self.driver,
            self.router,
            name=name,
            cache_capacity=self.spec.cache_capacity,
        )
        self._clients.append(c)
        return c

    @property
    def data_ids(self) -> list[int]:
        return sorted(self.data)

    @property
    def meta_ids(self) -> list[int]:
        return sorted(self.meta)

    def total_pages_stored(self) -> int:
        return sum(p.page_count for p in self.data.values())

    def blob_nodes(self, blob_id: str) -> list:
        """Every stored tree node of a blob across all metadata providers
        (inspection surface shared with the other deployments; the
        cross-driver conformance suite compares these). Fetched over the
        wire, one ``meta.dump_nodes`` RPC per provider."""
        return [
            node
            for proxy in self.meta.values()
            for node in proxy.iter_nodes(blob_id)
        ]

    def transport_stats(self) -> dict[str, int]:
        """Batched-transport counters (see ThreadedDriver.transport_stats)."""
        return self.driver.transport_stats()

    # -- failure injection ------------------------------------------------

    def kill_agent(self, index: int) -> None:
        """SIGKILL one launched node agent: every actor it hosts becomes a
        dead peer (RemoteError fail-fast + replica fail-over)."""
        self.agents[index].kill()

    def agent_index_for(self, address) -> int:
        """Which launched agent hosts an actor (colocation-aware)."""
        name = format_actor(address)
        for i, agent in enumerate(self.agents):
            if name in agent.actor_names:
                return i
        raise KeyError(f"no launched agent hosts {name!r}")

    # -- lifecycle --------------------------------------------------------

    def agent_exitcodes(self) -> list[int | None]:
        """Exit codes after :meth:`close` (0 = clean shutdown)."""
        return [a.proc.returncode for a in self.agents]

    def close(self) -> None:
        # orderly: every peer sends its actor the shutdown control, so
        # each agent's serve_forever returns once its last actor stops
        self.driver.close()
        for agent in self.agents:
            agent.reap()
            agent.close_pipe()

    def __enter__(self) -> "TcpDeployment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def plan_loopback_nodes(spec: DeploymentSpec) -> list[list[str]]:
    """Actor names per launched node, the paper's colocated layout:
    node ``i`` hosts ``data/i`` and ``meta/i`` (``spec.colocate``), or
    one agent per actor when colocation is off."""
    data = [format_actor(("data", i)) for i in range(spec.n_data)]
    meta = [format_actor(("meta", i)) for i in range(spec.n_meta)]
    if not spec.colocate:
        return [[name] for name in data + meta]
    nodes = []
    for i in range(max(spec.n_data, spec.n_meta)):
        node = []
        if i < spec.n_data:
            node.append(data[i])
        if i < spec.n_meta:
            node.append(meta[i])
        nodes.append(node)
    return nodes


def build_tcp(
    spec: DeploymentSpec | None = None,
    *,
    endpoints: dict[str, str] | ClusterMap | None = None,
    host: str = "127.0.0.1",
    connect_timeout: float = 5.0,
) -> TcpDeployment:
    """Assemble a TCP cluster deployment (context-manage it to stop it).

    With no ``endpoints`` (and an empty ``spec.endpoints``) a loopback
    cluster of node-agent OS processes is launched; otherwise the given
    agents are dialed. Either way the builder blocks until every peer
    holds a live connection, so a returned deployment is serving.
    """
    spec = spec or DeploymentSpec()
    endpoints = endpoints if endpoints is not None else (spec.endpoints or None)

    agents: list[_AgentProcess] = []
    try:
        if endpoints is None:
            deadline = time.monotonic() + LAUNCH_TIMEOUT
            # append one at a time: if the k-th launch raises (EMFILE,
            # ENOMEM), the k-1 agents already running must be visible to
            # the except-cleanup below, or they leak as orphan processes
            for names in plan_loopback_nodes(spec):
                agents.append(_AgentProcess(names, host, spec.page_checksums))
            cluster_map = ClusterMap()
            for agent in agents:
                endpoint = agent.wait_ready(deadline)
                for name in agent.actor_names:
                    cluster_map.add(name, endpoint)
        else:
            cluster_map = (
                endpoints
                if isinstance(endpoints, ClusterMap)
                else ClusterMap.from_spec(endpoints)
            )
        for i in range(spec.n_data):
            if ("data", i) not in cluster_map:
                raise ConfigError(f"no endpoint for actor 'data/{i}'")
        for i in range(spec.n_meta):
            if ("meta", i) not in cluster_map:
                raise ConfigError(f"no endpoint for actor 'meta/{i}'")

        vm = VersionManager()
        pm = ProviderManager(
            make_strategy(spec.strategy, **spec.strategy_kwargs),
            replication=spec.replication,
        )
        for i in range(spec.n_data):
            pm.register(i)
        driver = TcpDriver(connect_timeout=connect_timeout)
        try:
            driver.register("vm", vm)
            driver.register("pm", pm)
            for i in range(spec.n_data):
                driver.register_remote(("data", i), cluster_map.endpoint_for(("data", i)))
            for i in range(spec.n_meta):
                driver.register_remote(("meta", i), cluster_map.endpoint_for(("meta", i)))
            driver.wait_connected(timeout=max(connect_timeout, 10.0))
        except BaseException:
            driver.close()
            raise
    except BaseException:
        for agent in agents:
            agent.kill()
            agent.close_pipe()
        raise

    router = StaticRouter(list(range(spec.n_meta)), replication=spec.replication)
    data = {i: DataProviderProxy(driver, i) for i in range(spec.n_data)}
    meta = {i: MetadataProviderProxy(driver, i) for i in range(spec.n_meta)}
    return TcpDeployment(
        spec=spec,
        driver=driver,
        router=router,
        vm=vm,
        pm=pm,
        data=data,
        meta=meta,
        cluster_map=cluster_map,
        agents=agents,
    )
