"""Threaded deployment: real concurrency, one service thread per actor.

This is the deployment used to *demonstrate* (not time — see DESIGN.md on
the GIL) the paper's concurrency properties: readers and writers in
arbitrary interleavings, writers completing out of order, in-order
publication, and the absence of any shared lock on the data path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import BlobClient
from repro.core.config import DeploymentSpec
from repro.metadata.provider import MetadataProvider, blob_nodes
from repro.metadata.router import StaticRouter
from repro.net.threaded import ThreadedDriver
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.version.manager import VersionManager


@dataclass
class ThreadedDeployment:
    spec: DeploymentSpec
    driver: ThreadedDriver
    router: StaticRouter
    vm: VersionManager
    pm: ProviderManager
    data: dict[int, DataProvider]
    meta: dict[int, MetadataProvider]
    _clients: list[BlobClient] = field(default_factory=list)

    def client(self, name: str | None = None) -> BlobClient:
        c = BlobClient(
            self.driver,
            self.router,
            name=name,
            cache_capacity=self.spec.cache_capacity,
            elastic=self.spec.strategy == "hash_ring",
        )
        self._clients.append(c)
        return c

    @property
    def data_ids(self) -> list[int]:
        return sorted(self.data)

    @property
    def meta_ids(self) -> list[int]:
        return sorted(self.meta)

    def total_pages_stored(self) -> int:
        return sum(p.page_count for p in self.data.values())

    def blob_nodes(self, blob_id: str) -> list:
        """Every stored tree node of a blob across all metadata providers
        (inspection surface shared with the other deployments; the
        cross-driver conformance suite compares these)."""
        return blob_nodes(self.meta.values(), blob_id)

    def transport_stats(self) -> dict[str, int]:
        """Batched-transport counters (see ThreadedDriver.transport_stats)."""
        return self.driver.transport_stats()

    def metrics(self) -> dict:
        """The unified telemetry document (``repro.metrics/1``): per-actor
        per-method service-time quantiles plus wire counters, read from
        the service threads' accumulators (see :mod:`repro.obs.metrics`)."""
        from repro.obs.metrics import scrape_driver

        return scrape_driver(self.driver, source="threaded")

    def add_data_provider(self) -> int:
        """A provider joining the running system on its own service thread
        (paper: providers may dynamically join). Mirrors
        ``InprocDeployment.add_data_provider``; pair with
        :mod:`repro.providers.rebalance` to migrate pages to it."""
        new_id = max(self.data, default=-1) + 1
        dp = DataProvider(new_id, checksum=self.spec.page_checksums)
        self.data[new_id] = dp
        self.driver.register(("data", new_id), dp)
        self.pm.register(new_id)
        return new_id

    def close(self) -> None:
        self.driver.close()

    def __enter__(self) -> "ThreadedDeployment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def build_threaded(spec: DeploymentSpec | None = None) -> ThreadedDeployment:
    """Assemble a threaded deployment (context-manage it to stop threads)."""
    spec = spec or DeploymentSpec()
    vm = VersionManager()
    pm = ProviderManager(
        make_strategy(spec.strategy, **spec.strategy_kwargs),
        replication=spec.replication,
    )
    data: dict[int, DataProvider] = {
        i: DataProvider(i, checksum=spec.page_checksums) for i in range(spec.n_data)
    }
    meta: dict[int, MetadataProvider] = {
        i: MetadataProvider(i) for i in range(spec.n_meta)
    }
    for i in data:
        pm.register(i)
    driver = ThreadedDriver()
    driver.register("vm", vm)
    driver.register("pm", pm)
    for i, dp in data.items():
        driver.register(("data", i), dp)
    for i, mp in meta.items():
        driver.register(("meta", i), mp)
    router = StaticRouter(sorted(meta), replication=spec.replication)
    return ThreadedDeployment(
        spec=spec, driver=driver, router=router, vm=vm, pm=pm, data=data, meta=meta
    )
