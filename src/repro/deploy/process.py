"""Process deployment: every provider actor in its own OS process.

The real-concurrency deployment whose timing numbers finally *mean*
something: data and metadata providers run as spawned worker processes
(no shared GIL with clients or with each other), while the version manager
and provider manager — the system's intentional serialization points,
whose RPCs are a few dozen bytes — stay in the parent on dedicated
service threads exactly as in the threaded deployment.

The inspection surface is deployment-parity by construction: ``data`` and
``meta`` are dicts of *proxies* that satisfy the same ``iter_pages`` /
``iter_nodes`` / ``stats`` / ``page_count`` contracts the in-process
deployments expose from live actor objects, fetched over the wire via the
``data.dump_pages`` / ``meta.dump_nodes`` RPCs. The cross-driver
conformance suite reads these to prove bit-identical pages, trees and
version chains against inproc/threaded/simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.client import BlobClient
from repro.core.config import DeploymentSpec
from repro.metadata.provider import MetadataProvider
from repro.metadata.router import StaticRouter
from repro.net.process import ProcessDriver
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.version.manager import VersionManager


class DataProviderProxy:
    """Parent-side view of a data provider living in a worker process."""

    def __init__(self, driver: ProcessDriver, provider_id: int) -> None:
        self._driver = driver
        self.provider_id = provider_id
        self._address = ("data", provider_id)

    def iter_pages(self, blob_id: str) -> Iterable[tuple]:
        return iter(self._driver.call(self._address, "data.dump_pages", (blob_id,)))

    def stats(self) -> dict[str, int]:
        return self._driver.call(self._address, "data.stats")

    @property
    def page_count(self) -> int:
        return self.stats()["pages"]


class MetadataProviderProxy:
    """Parent-side view of a metadata provider living in a worker process."""

    def __init__(self, driver: ProcessDriver, provider_id: int) -> None:
        self._driver = driver
        self.provider_id = provider_id
        self._address = ("meta", provider_id)

    def iter_nodes(self, blob_id: str) -> Iterable:
        return iter(self._driver.call(self._address, "meta.dump_nodes", (blob_id,)))

    def stats(self) -> dict[str, int]:
        return self._driver.call(self._address, "meta.stats")

    @property
    def node_count(self) -> int:
        return self.stats()["nodes"]


@dataclass
class ProcessDeployment:
    spec: DeploymentSpec
    driver: ProcessDriver
    router: StaticRouter
    vm: VersionManager
    pm: ProviderManager
    data: dict[int, DataProviderProxy]
    meta: dict[int, MetadataProviderProxy]
    _clients: list[BlobClient] = field(default_factory=list)

    def client(self, name: str | None = None) -> BlobClient:
        c = BlobClient(
            self.driver,
            self.router,
            name=name,
            cache_capacity=self.spec.cache_capacity,
            elastic=self.spec.strategy == "hash_ring",
        )
        self._clients.append(c)
        return c

    @property
    def data_ids(self) -> list[int]:
        return sorted(self.data)

    @property
    def meta_ids(self) -> list[int]:
        return sorted(self.meta)

    def total_pages_stored(self) -> int:
        return sum(p.page_count for p in self.data.values())

    def blob_nodes(self, blob_id: str) -> list:
        """Every stored tree node of a blob across all metadata providers
        (inspection surface shared with the other deployments; the
        cross-driver conformance suite compares these). Fetched over the
        wire, one ``meta.dump_nodes`` RPC per provider."""
        return [
            node
            for proxy in self.meta.values()
            for node in proxy.iter_nodes(blob_id)
        ]

    def transport_stats(self) -> dict[str, int]:
        """Batched-transport counters (see ThreadedDriver.transport_stats)."""
        return self.driver.transport_stats()

    def metrics(self) -> dict:
        """The unified telemetry document (``repro.metrics/1``), worker
        actors scraped over their socketpairs via the ``telemetry``
        control (see :mod:`repro.obs.metrics`)."""
        from repro.obs.metrics import scrape_driver

        return scrape_driver(self.driver, source="process")

    def close(self) -> None:
        self.driver.close()

    def __enter__(self) -> "ProcessDeployment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def build_process(
    spec: DeploymentSpec | None = None, *, mp_context: str | None = None
) -> ProcessDeployment:
    """Assemble a process deployment (context-manage it to stop workers).

    Provider actors are *constructed inside their workers* from spec
    alone; the parent never holds provider state. ``spec.page_checksums``
    travels with the constructor spec, so integrity work runs on worker
    CPUs.
    """
    spec = spec or DeploymentSpec()
    vm = VersionManager()
    pm = ProviderManager(
        make_strategy(spec.strategy, **spec.strategy_kwargs),
        replication=spec.replication,
    )
    for i in range(spec.n_data):
        pm.register(i)
    driver = ProcessDriver(mp_context=mp_context)
    driver.register("vm", vm)
    driver.register("pm", pm)
    for i in range(spec.n_data):
        driver.register_process(
            ("data", i), DataProvider, i, checksum=spec.page_checksums
        )
    for i in range(spec.n_meta):
        driver.register_process(("meta", i), MetadataProvider, i)
    router = StaticRouter(list(range(spec.n_meta)), replication=spec.replication)
    data = {i: DataProviderProxy(driver, i) for i in range(spec.n_data)}
    meta = {i: MetadataProviderProxy(driver, i) for i in range(spec.n_meta)}
    return ProcessDeployment(
        spec=spec, driver=driver, router=router, vm=vm, pm=pm, data=data, meta=meta
    )
