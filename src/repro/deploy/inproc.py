"""Single-threaded functional deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import BlobClient
from repro.core.config import DeploymentSpec
from repro.metadata.provider import MetadataProvider, blob_nodes
from repro.metadata.router import StaticRouter
from repro.net.inproc import InprocDriver
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.version.manager import VersionManager


@dataclass
class InprocDeployment:
    """All actors plus the driver and router, in one process."""

    spec: DeploymentSpec
    driver: InprocDriver
    router: StaticRouter
    vm: VersionManager
    pm: ProviderManager
    data: dict[int, DataProvider]
    meta: dict[int, MetadataProvider]
    _clients: list[BlobClient] = field(default_factory=list)

    def client(self, name: str | None = None) -> BlobClient:
        c = BlobClient(
            self.driver,
            self.router,
            name=name,
            cache_capacity=self.spec.cache_capacity,
            elastic=self.spec.strategy == "hash_ring",
        )
        self._clients.append(c)
        return c

    @property
    def data_ids(self) -> list[int]:
        return sorted(self.data)

    @property
    def meta_ids(self) -> list[int]:
        return sorted(self.meta)

    def total_pages_stored(self) -> int:
        return sum(p.page_count for p in self.data.values())

    def total_nodes_stored(self) -> int:
        return sum(p.node_count for p in self.meta.values())

    def blob_nodes(self, blob_id: str) -> list:
        """Every stored tree node of a blob across all metadata providers
        (inspection surface shared with the other deployments; the
        cross-driver conformance suite compares these)."""
        return blob_nodes(self.meta.values(), blob_id)

    def metrics(self) -> dict:
        """The unified telemetry document (``repro.metrics/1``): per-actor
        per-method latency quantiles recorded at the dispatch point (see
        :mod:`repro.obs.metrics`). No wire layer here, so the wire
        counters are ``None``."""
        from repro.obs.metrics import scrape_driver

        return scrape_driver(self.driver, source="inproc")

    def add_data_provider(self, spill=None) -> int:
        """A provider joining the running system (paper: providers may
        dynamically join)."""
        new_id = max(self.data, default=-1) + 1
        dp = DataProvider(new_id, spill=spill, checksum=self.spec.page_checksums)
        self.data[new_id] = dp
        self.driver.register(("data", new_id), dp)
        self.pm.register(new_id)
        return new_id


def build_inproc(spec: DeploymentSpec | None = None, spills: dict[int, object] | None = None) -> InprocDeployment:
    """Assemble an in-process deployment from a topology spec."""
    spec = spec or DeploymentSpec()
    driver = InprocDriver()
    vm = VersionManager()
    pm = ProviderManager(
        make_strategy(spec.strategy, **spec.strategy_kwargs),
        replication=spec.replication,
    )
    driver.register("vm", vm)
    driver.register("pm", pm)
    data: dict[int, DataProvider] = {}
    spills = spills or {}
    for i in range(spec.n_data):
        dp = DataProvider(i, spill=spills.get(i), checksum=spec.page_checksums)
        data[i] = dp
        driver.register(("data", i), dp)
        pm.register(i)
    meta: dict[int, MetadataProvider] = {}
    for i in range(spec.n_meta):
        mp = MetadataProvider(i)
        meta[i] = mp
        driver.register(("meta", i), mp)
    router = StaticRouter(sorted(meta), replication=spec.replication)
    return InprocDeployment(
        spec=spec, driver=driver, router=router, vm=vm, pm=pm, data=data, meta=meta
    )
