"""Simulated deployment: the benchmark substrate.

Builds the paper's topology on the discrete-event cluster: N provider
nodes (each hosting one data provider and one metadata provider, colocated
exactly like the paper's experiments), dedicated version-manager and
provider-manager nodes, and a set of client nodes. Protocols run as
simulated processes; all times are simulated seconds.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.config import DeploymentSpec
from repro.core.protocol import (
    LATEST,
    alloc_protocol,
    fresh_write_uid,
    read_protocol,
    virtual_pages,
    write_protocol,
)
from repro.metadata.cache import MetadataCache
from repro.metadata.provider import MetadataProvider, blob_nodes
from repro.metadata.router import StaticRouter
from repro.metadata.tree import TreeGeometry
from repro.net.simdriver import SimRpcExecutor
from repro.providers.data_provider import DataProvider
from repro.providers.manager import ProviderManager
from repro.providers.strategies import make_strategy
from repro.sim.engine import Process, Simulator
from repro.sim.network import ClusterSpec, Network, SimNode
from repro.version.manager import VersionManager


class SimDeployment:
    """Actors placed on simulated nodes; spawn clients and run protocols."""

    def __init__(
        self,
        spec: DeploymentSpec | None = None,
        cluster: ClusterSpec | None = None,
    ) -> None:
        self.spec = spec or DeploymentSpec()
        self.sim = Simulator()
        self.network = Network(self.sim, cluster)
        self.executor = SimRpcExecutor(self.sim, self.network)

        self.vm = VersionManager()
        self.pm = ProviderManager(
            make_strategy(self.spec.strategy, **self.spec.strategy_kwargs),
            replication=self.spec.replication,
        )
        vm_node = self.network.add_node("vm-node")
        pm_node = self.network.add_node("pm-node")
        self.executor.register("vm", self.vm, vm_node)
        self.executor.register("pm", self.pm, pm_node)

        self.data: dict[int, DataProvider] = {}
        self.meta: dict[int, MetadataProvider] = {}
        if self.spec.colocate:
            # One physical node hosts data provider i and metadata provider i
            # (the layout of every experiment in the paper).
            for i in range(max(self.spec.n_data, self.spec.n_meta)):
                node = self.network.add_node(f"prov-{i}")
                if i < self.spec.n_data:
                    self._add_data(i, node)
                if i < self.spec.n_meta:
                    self._add_meta(i, node)
        else:
            for i in range(self.spec.n_data):
                self._add_data(i, self.network.add_node(f"data-{i}"))
            for i in range(self.spec.n_meta):
                self._add_meta(i, self.network.add_node(f"meta-{i}"))

        self.router = StaticRouter(sorted(self.meta), replication=self.spec.replication)
        self.client_nodes: list[SimNode] = [
            self.network.add_node(f"client-{i}", role="client")
            for i in range(self.spec.n_clients)
        ]
        self._clients: list[SimClient] = []

    def _add_data(self, i: int, node: SimNode) -> None:
        dp = DataProvider(i, checksum=self.spec.page_checksums)
        self.data[i] = dp
        self.executor.register(("data", i), dp, node)
        self.pm.register(i)

    def _add_meta(self, i: int, node: SimNode) -> None:
        mp = MetadataProvider(i)
        self.meta[i] = mp
        self.executor.register(("meta", i), mp, node)

    # -- clients ----------------------------------------------------------

    def client(
        self, index: int = 0, *, cached: bool | None = None, name: str | None = None
    ) -> "SimClient":
        """A logical client bound to client node ``index``.

        ``cached`` overrides the spec: True gives the client a metadata
        cache (the "Read (cached metadata)" series), False disables it
        (the paper's worst-case uncached experiment).
        """
        capacity = self.spec.cache_capacity
        if cached is True and capacity == 0:
            capacity = 1 << 20
        if cached is False:
            capacity = 0
        client = SimClient(
            self,
            self.client_nodes[index],
            name=name or f"sim-client-{index}",
            cache_capacity=capacity,
        )
        self._clients.append(client)
        return client

    # -- setup conveniences (zero simulated time) ---------------------------

    def alloc_blob(self, total_size: int, pagesize: int) -> str:
        """Allocate a blob directly on the version manager (setup step —
        not part of any timed experiment)."""
        return self.vm.alloc(total_size, pagesize)

    def geometry(self, blob_id: str) -> TreeGeometry:
        total_size, pagesize, _ = self.vm.stat(blob_id)
        return TreeGeometry(total_size, pagesize)

    def blob_nodes(self, blob_id: str) -> list["TreeNode"]:
        """Every stored tree node of a blob across all metadata providers.

        Setup/inspection helper (zero simulated time); computed fresh on
        each call so it always reflects the current store.
        """
        return blob_nodes(self.meta.values(), blob_id)

    def warm_client_cache(self, client: "SimClient", blob_id: str) -> int:
        """Fill a client's metadata cache with every stored node of a blob.

        Setup helper for the "Read (cached metadata)" series: the paper
        measures steady-state cached reads, so how the cache got warm is
        outside the measured window. Runs in zero simulated time. Returns
        the number of nodes cached.
        """
        if client.cache is None:
            raise ValueError("client has no metadata cache to warm")
        nodes = self.blob_nodes(blob_id)
        put = client.cache.put
        for node in nodes:
            put(node)
        return len(nodes)

    def run(self, until: Any = None) -> Any:
        return self.sim.run(until)

    @property
    def now(self) -> float:
        return self.sim.now

    def counters(self) -> dict[str, int]:
        """Engine-load counters for the perf-regression harness."""
        return {
            "events_processed": self.sim.events_processed,
            "processes_started": self.sim._processes_started,
            "wire_rpcs": self.executor.wire_rpcs,
            "sub_calls": self.executor.sub_calls,
            "messages_sent": self.network.messages_sent,
            "bytes_sent": self.network.bytes_sent,
        }

    def metrics(self) -> dict:
        """The unified telemetry document (``repro.metrics/1``) for a
        finished simulation: the same per-actor/per-method quantile shape
        the live drivers scrape, plus a ``nodes`` section re-exporting
        the simulator's :class:`~repro.sim.trace.NodeUtilization` report.
        Service times are *host* nanoseconds around handler bodies (hot
        handlers), utilization is *simulated* (modelled contention)."""
        from repro.obs.metrics import scrape_driver, sim_node_entries

        doc = scrape_driver(self.executor, source="simulated")
        doc["nodes"] = sim_node_entries(self.network)
        return doc

    def spans(self) -> list[dict]:
        """The modeled-timeline spans recorded while traces were open
        (``repro.spans/1`` dicts in simulated-time nanoseconds, clock
        domain :data:`~repro.obs.spans.SIM_DOMAIN` — born aligned), in
        exactly the schema the real drivers' scrape produces, so a
        modeled timeline diffs directly against a measured one through
        :mod:`repro.obs.export`."""
        return list(self.executor.spans)

    def clear_spans(self) -> None:
        """Drop recorded simulated spans (between traced experiments)."""
        self.executor.spans.clear()


class SimClient:
    """Client facade over the simulated executor.

    ``*_proto`` methods build protocol generators for spawning as
    concurrent processes; the plain methods run one protocol to completion
    synchronously (advancing the simulation).
    """

    def __init__(
        self,
        deployment: SimDeployment,
        node: SimNode,
        name: str,
        cache_capacity: int,
    ) -> None:
        self.dep = deployment
        self.node = node
        self.name = name
        self.cache: MetadataCache | None = (
            MetadataCache(cache_capacity) if cache_capacity > 0 else None
        )

    # -- protocol factories ------------------------------------------------

    def write_virtual_proto(
        self,
        blob_id: str,
        offset: int,
        size: int,
        trace: dict[str, float] | None = None,
    ):
        geom = self.dep.geometry(blob_id)
        return write_protocol(
            blob_id, geom, offset, virtual_pages(size, geom.pagesize),
            self.dep.router, fresh_write_uid(self.name), trace=trace,
        )

    def read_virtual_proto(
        self,
        blob_id: str,
        offset: int,
        size: int,
        version: int = LATEST,
        trace: dict[str, float] | None = None,
    ):
        geom = self.dep.geometry(blob_id)
        return read_protocol(
            blob_id, geom, offset, size, self.dep.router,
            version=version, cache=self.cache, with_data=False, trace=trace,
        )

    # -- process spawning ---------------------------------------------------

    def spawn(self, proto) -> Process:
        """Run a protocol as a concurrent simulated process."""
        return self.dep.sim.process(
            self.dep.executor.run_protocol(proto, self.node), name=self.name
        )

    def spawn_timed(self, proto) -> Process:
        """Like :meth:`spawn`; the process returns ``(value, duration)``."""

        def timed() -> Generator:
            start = self.dep.sim.now
            value = yield from self.dep.executor.run_protocol(proto, self.node)
            return value, self.dep.sim.now - start

        return self.dep.sim.process(timed(), name=f"{self.name}-timed")

    # -- synchronous helpers ---------------------------------------------------

    def run(self, proto) -> Any:
        proc = self.spawn(proto)
        return self.dep.sim.run(until=proc)

    def alloc(self, total_size: int, pagesize: int) -> str:
        return self.run(alloc_protocol(total_size, pagesize))

    def write_virtual(self, blob_id: str, offset: int, size: int):
        return self.run(self.write_virtual_proto(blob_id, offset, size))

    def read_virtual(self, blob_id: str, offset: int, size: int, version: int = LATEST):
        return self.run(self.read_virtual_proto(blob_id, offset, size, version))

    def timed(self, proto) -> tuple[Any, float]:
        """Run a protocol synchronously; returns ``(value, sim_duration)``."""
        proc = self.spawn_timed(proto)
        return self.dep.sim.run(until=proc)

    def traced(self, proto, name: str = "op") -> tuple[Any, int]:
        """Run a protocol synchronously under a trace; returns
        ``(value, trace_id)``.

        The executor records every wire group's rpc + serving spans in
        simulated time, and this helper adds the operation's own root
        span, so :meth:`SimDeployment.spans` afterwards holds a complete
        modeled timeline for the operation.
        """
        from repro.obs.spans import SIM_DOMAIN, make_span, new_span_id
        from repro.obs.trace import end_trace, set_op_span, start_trace

        tid = start_trace()
        sid = new_span_id()
        prev = set_op_span(sid)
        t0 = self.dep.sim.now
        failed = False
        try:
            value = self.run(proto)
        except BaseException:
            failed = True
            raise
        finally:
            t1 = self.dep.sim.now
            set_op_span(prev)
            end_trace()
            self.dep.executor.spans.append(
                make_span(
                    tid, sid, prev, "op", name, "client",
                    int(t0 * 1e9), int(t1 * 1e9),
                    domain=SIM_DOMAIN, error=failed,
                )
            )
        return value, tid
