"""Deployment builders: wire actors, drivers and clients together.

Five deployments mirror the five drivers:

- :func:`~repro.deploy.inproc.build_inproc` — everything in one thread;
  the functional substrate for tests, examples and the sky pipeline.
- :func:`~repro.deploy.threaded.build_threaded` — each actor on its own
  service thread (the paper's one-process-per-node layout), real client
  threads; validates concurrency/lock-freedom claims.
- :func:`~repro.deploy.process.build_process` — each provider actor in
  its own OS process (pickle frames over pipes, no shared GIL); the
  real-parallelism deployment whose throughput numbers are meaningful.
- :func:`~repro.deploy.tcp.build_tcp` — provider actors behind node
  agents reached over real TCP connections: the cluster deployment,
  launched as loopback OS processes (CI) or dialed on real hosts.
  ``build_tcp(spec, client="aio")`` keeps the same cluster but swaps the
  client tier for :class:`~repro.net.aio.AioDriver` — one asyncio event
  loop multiplexing every peer socket, awaitable clients via
  ``dep.async_client()`` — for thousands of concurrent client programs.
- :class:`~repro.deploy.simulated.SimDeployment` — actors on simulated
  cluster nodes with calibrated costs; the benchmark substrate.
"""

from repro.deploy.inproc import InprocDeployment, build_inproc
from repro.deploy.threaded import ThreadedDeployment, build_threaded
from repro.deploy.process import ProcessDeployment, build_process
from repro.deploy.tcp import TcpDeployment, build_tcp
from repro.deploy.simulated import SimClient, SimDeployment

__all__ = [
    "InprocDeployment",
    "build_inproc",
    "ThreadedDeployment",
    "build_threaded",
    "ProcessDeployment",
    "build_process",
    "TcpDeployment",
    "build_tcp",
    "SimDeployment",
    "SimClient",
]
