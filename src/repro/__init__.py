"""repro — lock-free concurrent fine-grain access to massive distributed data.

A faithful, self-contained Python reproduction of Nicolae, Antoniu & Bougé,
"Enabling Lock-Free Concurrent Fine-Grain Access to Massive Distributed
Data: Application to Supernovae Detection" (IEEE CLUSTER 2008) — the
BlobSeer precursor: versioned terabyte-scale blobs striped into immutable
pages, distributed segment-tree metadata over a DHT, a version manager as
the single serialization point, and full read/read, read/write and
write/write concurrency.

Quickstart::

    from repro import build_inproc, DeploymentSpec, KB, MB

    dep = build_inproc(DeploymentSpec(n_data=8, n_meta=8))
    client = dep.client()
    blob = client.alloc(total_size=64 * MB, pagesize=64 * KB)
    v1 = client.write(blob, b"x" * 128 * KB, offset=0).version
    print(client.read_bytes(blob, 0, 16, version=v1))

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.core.blobfile import BlobFile, open_blob
from repro.core.client import BlobClient
from repro.core.config import BlobConfig, DeploymentSpec
from repro.core.gc import GCStats
from repro.core.protocol import ReadResult, WriteResult
from repro.metadata.inspect import TreeInspector
from repro.version.diff import changed_ranges
from repro.deploy.inproc import InprocDeployment, build_inproc
from repro.deploy.process import ProcessDeployment, build_process
from repro.deploy.simulated import SimClient, SimDeployment
from repro.deploy.tcp import TcpDeployment, build_tcp
from repro.deploy.threaded import ThreadedDeployment, build_threaded
from repro.errors import (
    BlobNotFound,
    ConfigError,
    ImmutabilityViolation,
    NodeMissing,
    NotEnoughProviders,
    OutOfBounds,
    PageMissing,
    ProviderUnavailable,
    RemoteError,
    ReproError,
    StaleWrite,
    VersionNotPublished,
)
from repro.sim.network import ClusterSpec
from repro.util.sizes import GB, KB, MB, TB
from repro.version.manager import LATEST

__version__ = "1.0.0"

__all__ = [
    "BlobClient",
    "BlobConfig",
    "BlobFile",
    "open_blob",
    "TreeInspector",
    "changed_ranges",
    "DeploymentSpec",
    "GCStats",
    "ReadResult",
    "WriteResult",
    "InprocDeployment",
    "build_inproc",
    "SimClient",
    "SimDeployment",
    "ThreadedDeployment",
    "build_threaded",
    "ProcessDeployment",
    "build_process",
    "TcpDeployment",
    "build_tcp",
    "ClusterSpec",
    "LATEST",
    "KB",
    "MB",
    "GB",
    "TB",
    "ReproError",
    "ConfigError",
    "BlobNotFound",
    "VersionNotPublished",
    "OutOfBounds",
    "ImmutabilityViolation",
    "PageMissing",
    "NodeMissing",
    "ProviderUnavailable",
    "NotEnoughProviders",
    "StaleWrite",
    "RemoteError",
    "__version__",
]
