"""Timeline assembly: clock alignment, Chrome trace export, critical path.

The span collectors (:mod:`repro.obs.spans`, the per-actor rings scraped
by :mod:`repro.obs.metrics`) hand this module a flat list of
``repro.spans/1`` dicts whose timestamps are *per-process* — each OS
process counts nanoseconds from its own import-time epoch, its times
labeled by a random ``domain`` id. Assembling one coherent timeline
therefore needs **clock alignment**, and the RPC spans carry exactly the
information to do it: a caller-side rpc span and its serving-side child
bracket the same wire round trip, so for the serving domain's offset
``off`` (added to serving times to land them in the caller's domain)
nesting gives an interval

    p.start - s.start  <=  off  <=  p.end - s.end

per parent/child pair. Intersecting the intervals of every pair between
two domains pins the offset as tightly as the observed RTTs allow; the
midpoint of the intersection is the classic RTT-midpoint estimator. With
offsets resolved (domains form a graph walked breadth-first from the
client's domain), the aligned timeline exports as:

- **Chrome trace-event JSON** (:func:`chrome_trace`) — the
  ``traceEvents`` array format that ``chrome://tracing`` and Perfetto
  load, one row ("process") per actor;
- a **critical-path summary** (:func:`render_critical_path`) — the
  per-operation decomposition the paper's breakdown figures plot:
  client gaps vs. wire windows by destination, with per-method service
  totals that reconcile against the scrape histograms.

Simulated timelines (:data:`~repro.obs.spans.SIM_DOMAIN`) are born
aligned — one global sim clock — so the same exports work unchanged on
a :class:`~repro.deploy.simulated.SimDeployment`'s spans, which is what
makes modeled and measured timelines diffable.
"""

from __future__ import annotations

from statistics import median
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.spans import SPAN_KEYS, SPAN_SCHEMA  # noqa: F401 (re-export)

#: spans shorter than this render as one bracket in text reports
_NS_PER_MS = 1e6


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------


def validate_span(span: Mapping[str, Any]) -> list[str]:
    """Problems with one span dict against ``repro.spans/1`` (empty =
    valid): exact key set, type sanity, and a non-inverted window."""
    problems = []
    missing = [k for k in SPAN_KEYS if k not in span]
    extra = [k for k in span if k not in SPAN_KEYS]
    if missing:
        problems.append(f"missing keys: {missing}")
    if extra:
        problems.append(f"unknown keys: {extra}")
    if missing or extra:
        return problems
    if span["kind"] not in ("op", "client", "rpc", "server"):
        problems.append(f"bad kind: {span['kind']!r}")
    for key in ("trace", "span", "domain", "start_ns", "end_ns", "queue_ns",
                "bytes"):
        if not isinstance(span[key], int):
            problems.append(f"{key} is {type(span[key]).__name__}, not int")
    if span["parent"] is not None and not isinstance(span["parent"], int):
        problems.append("parent is neither int nor None")
    if isinstance(span["start_ns"], int) and isinstance(span["end_ns"], int) \
            and span["end_ns"] < span["start_ns"]:
        problems.append(f"inverted window: {span['start_ns']}..{span['end_ns']}")
    return problems


def validate_spans(spans: Iterable[Mapping[str, Any]]) -> list[str]:
    """Validate every span; problem strings carry the span index."""
    problems = []
    for i, span in enumerate(spans):
        problems.extend(f"span[{i}]: {p}" for p in validate_span(span))
    return problems


# ---------------------------------------------------------------------------
# clock alignment
# ---------------------------------------------------------------------------


def reference_domain(spans: Sequence[Mapping[str, Any]]) -> int | None:
    """The domain timelines align *to*: the client's clock — the domain
    of the op spans, else of the rpc spans, else of the first span."""
    for kind in ("op", "rpc"):
        for span in spans:
            if span["kind"] == kind:
                return span["domain"]
    return spans[0]["domain"] if spans else None


def estimate_offsets(
    spans: Sequence[Mapping[str, Any]], reference: int | None = None
) -> dict[int, int]:
    """Per-domain clock offsets (ns to *add* to a domain's timestamps to
    express them in the reference domain).

    Built from every caller-rpc/serving-span pair (matched by the span
    id that rode the wire envelope): each pair constrains the pairwise
    offset to an interval, intervals intersect per domain pair, and the
    midpoint is taken — falling back to the median of per-pair midpoints
    when measurement noise empties the intersection. Domains reachable
    only through other domains compose offsets along a breadth-first
    walk from the reference; unreachable domains keep offset 0.
    """
    if reference is None:
        reference = reference_domain(spans)
    if reference is None:
        return {}
    by_id = {s["span"]: s for s in spans}
    # (parent_domain, child_domain) -> [lo, hi, midpoints]
    edges: dict[tuple[int, int], list] = {}
    for child in spans:
        parent = by_id.get(child["parent"])
        if parent is None or parent["domain"] == child["domain"]:
            continue
        lo = parent["start_ns"] - child["start_ns"]
        hi = parent["end_ns"] - child["end_ns"]
        if hi < lo:  # degenerate pair (child window longer than parent's)
            lo, hi = hi, lo
        key = (parent["domain"], child["domain"])
        entry = edges.get(key)
        if entry is None:
            edges[key] = [lo, hi, [(lo + hi) // 2]]
        else:
            entry[0] = max(entry[0], lo)
            entry[1] = min(entry[1], hi)
            entry[2].append((lo + hi) // 2)
    # pairwise estimates, symmetric
    pairwise: dict[int, dict[int, int]] = {}
    for (dp, dc), (lo, hi, mids) in edges.items():
        off = (lo + hi) // 2 if lo <= hi else int(median(mids))
        pairwise.setdefault(dp, {})[dc] = off
        pairwise.setdefault(dc, {})[dp] = -off
    offsets = {reference: 0}
    frontier = [reference]
    while frontier:
        nxt = []
        for dom in frontier:
            for other, off in pairwise.get(dom, {}).items():
                if other in offsets:
                    continue
                # other->dom is `off`; other->reference composes with dom's
                offsets[other] = offsets[dom] + off
                nxt.append(other)
        frontier = nxt
    for span in spans:
        offsets.setdefault(span["domain"], 0)
    return offsets


def align_spans(
    spans: Sequence[Mapping[str, Any]], reference: int | None = None
) -> tuple[list[dict[str, Any]], dict[int, int]]:
    """The spans with every timestamp shifted into the reference domain.

    Returns ``(aligned, offsets)``; aligned spans are fresh dicts (the
    inputs are never mutated) with their ``domain`` rewritten to the
    reference so downstream code can treat the timeline as one clock.
    """
    if reference is None:
        reference = reference_domain(spans)
    offsets = estimate_offsets(spans, reference)
    aligned = []
    for span in spans:
        off = offsets.get(span["domain"], 0)
        shifted = dict(span)
        shifted["start_ns"] = span["start_ns"] + off
        shifted["end_ns"] = span["end_ns"] + off
        shifted["domain"] = reference if reference is not None else 0
        aligned.append(shifted)
    return aligned, offsets


# ---------------------------------------------------------------------------
# coverage
# ---------------------------------------------------------------------------


def _merge_windows(windows: list[tuple[int, int]]) -> list[tuple[int, int]]:
    if not windows:
        return []
    windows.sort()
    merged = [windows[0]]
    for start, end in windows[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def coverage(spans: Sequence[Mapping[str, Any]]) -> dict[int, float]:
    """Per-trace fraction of the op window covered by traced activity.

    For each trace with an op span: the union of its non-op spans,
    clipped to the op window, over the op duration. This is the
    acceptance metric for "the exported timeline explains the
    client-observed wall time" — call it on *aligned* spans.
    """
    ops = {s["trace"]: s for s in spans if s["kind"] == "op"}
    out = {}
    for trace, op in ops.items():
        lo, hi = op["start_ns"], op["end_ns"]
        if hi <= lo:
            out[trace] = 1.0
            continue
        windows = []
        for s in spans:
            if s["trace"] != trace or s["kind"] == "op":
                continue
            start, end = max(s["start_ns"], lo), min(s["end_ns"], hi)
            if end > start:
                windows.append((start, end))
        covered = sum(end - start for start, end in _merge_windows(windows))
        out[trace] = covered / (hi - lo)
    return out


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def chrome_trace(spans: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """The aligned spans as a Chrome trace-event document.

    ``{"traceEvents": [...]}`` with complete ("X") events in microsecond
    units — the format ``chrome://tracing`` and Perfetto load directly.
    Each actor label becomes one "process" row (named via ``process_name``
    metadata events); span hierarchy rides in ``args``.
    """
    pids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        pid = pids.get(span["actor"])
        if pid is None:
            pid = pids[span["actor"]] = len(pids) + 1
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": span["actor"]},
            })
        events.append({
            "ph": "X",
            "name": f"{span['kind']}:{span['name']}",
            "cat": span["kind"],
            "pid": pid,
            "tid": 0,
            "ts": span["start_ns"] / 1e3,
            "dur": (span["end_ns"] - span["start_ns"]) / 1e3,
            "args": {
                "trace": span["trace"],
                "span": span["span"],
                "parent": span["parent"],
                "queue_ms": span["queue_ns"] / _NS_PER_MS,
                "bytes": span["bytes"],
                "error": span["error"],
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome(doc: Mapping[str, Any]) -> list[str]:
    """Problems with a Chrome trace-event document (empty = valid)."""
    problems = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event[{i}]: unsupported phase {ph!r}")
            continue
        if "pid" not in ev or "name" not in ev:
            problems.append(f"event[{i}]: missing pid/name")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(
                dur, (int, float)
            ):
                problems.append(f"event[{i}]: non-numeric ts/dur")
            elif dur < 0:
                problems.append(f"event[{i}]: negative duration")
    return problems


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------


def critical_path_segments(
    spans: Sequence[Mapping[str, Any]], trace: int
) -> list[tuple[str, int]]:
    """One operation's time decomposed into ordered segments.

    The client thread runs one batch at a time, so the op window splits
    exactly into *wire windows* (every rpc span of a batch shares one
    submit..complete window; the segment is labeled with the batch's
    destinations) and *client gaps* between them (protocol code:
    building tree nodes, assembling buffers, decoding replies). Returns
    ``[(label, duration_ns), ...]`` in timeline order; zero-length
    segments are dropped.
    """
    ops = [s for s in spans if s["trace"] == trace and s["kind"] == "op"]
    rpcs = [s for s in spans if s["trace"] == trace and s["kind"] == "rpc"]
    if ops:
        lo, hi = ops[0]["start_ns"], ops[0]["end_ns"]
    elif rpcs:
        lo = min(s["start_ns"] for s in rpcs)
        hi = max(s["end_ns"] for s in rpcs)
    else:
        return []
    windows: dict[tuple[int, int], set] = {}
    for s in rpcs:
        windows.setdefault((s["start_ns"], s["end_ns"]), set()).add(s["name"])
    segments: list[tuple[str, int]] = []
    cursor = lo
    for (start, end), dests in sorted(windows.items()):
        start, end = max(start, lo), min(end, hi)
        if start > cursor:
            segments.append(("client", start - cursor))
        if end > max(start, cursor):
            label = "wire:" + "+".join(sorted(dests))
            segments.append((label, end - max(start, cursor)))
            cursor = end
    if hi > cursor:
        segments.append(("client", hi - cursor))
    return segments


def service_totals(
    spans: Sequence[Mapping[str, Any]], trace: int | None = None
) -> dict[str, dict[str, Any]]:
    """Per-method serving-side totals: count, service ns, queue ns.

    Computed from serving spans (optionally one trace's), these are the
    numbers that must reconcile with the scrape histograms — the spans
    and the histograms observe the same dispatch point.
    """
    totals: dict[str, dict[str, Any]] = {}
    for s in spans:
        if s["kind"] != "server":
            continue
        if trace is not None and s["trace"] != trace:
            continue
        row = totals.setdefault(
            s["name"], {"count": 0, "service_ns": 0, "queue_ns": 0}
        )
        row["count"] += 1
        row["service_ns"] += s["end_ns"] - s["start_ns"]
        row["queue_ns"] += s["queue_ns"]
    return totals


def render_critical_path(
    spans: Sequence[Mapping[str, Any]], trace: int | None = None
) -> str:
    """Text critical-path report for one trace (default: every op span's
    trace in the list, concatenated). Call with *aligned* spans."""
    traces = (
        [trace]
        if trace is not None
        else sorted({s["trace"] for s in spans if s["kind"] == "op"})
    )
    lines = []
    cov = coverage(spans)
    for tid in traces:
        ops = [s for s in spans if s["trace"] == tid and s["kind"] == "op"]
        name = ops[0]["name"] if ops else "?"
        total = (
            (ops[0]["end_ns"] - ops[0]["start_ns"]) if ops else
            sum(d for _, d in critical_path_segments(spans, tid))
        )
        lines.append(
            f"critical path: {name} (trace {tid}) — "
            f"{total / _NS_PER_MS:.3f} ms total"
            + (f", {cov[tid]:.1%} covered" if tid in cov else "")
        )
        for label, dur in critical_path_segments(spans, tid):
            share = dur / total if total else 0.0
            lines.append(
                f"  {label:<28} {dur / _NS_PER_MS:>9.3f} ms  {share:>6.1%}"
            )
        totals = service_totals(spans, tid)
        if totals:
            lines.append("  serving side (per method):")
            for method in sorted(totals):
                row = totals[method]
                lines.append(
                    f"    {method:<26} {row['count']:>5}× "
                    f"service {row['service_ns'] / _NS_PER_MS:>9.3f} ms  "
                    f"queue {row['queue_ns'] / _NS_PER_MS:>8.3f} ms"
                )
    return "\n".join(lines)
