"""Trace-context propagation across the RPC message layer.

A *trace id* is a 64-bit integer a caller mints once per logical
operation (:func:`start_trace`); every wire RPC the calling thread
issues while the trace is open carries it as the optional third field of
the ``("rpc", payload, trace)`` envelope — a bare trace id historically,
a ``(trace_id, span_id)`` pair once the caller also mints span ids
(:mod:`repro.obs.spans`); :func:`set_server_context` accepts both. On the serving side the
transport loop opens a *server context* — trace id, measured queue wait,
request bytes — around the dispatched sub-calls, which is where the
slow-RPC ring log (:mod:`repro.obs.telemetry`) gets its queue-wait vs
service split and its trace attribution from.

Both contexts are thread-local, which is exactly right for this
codebase's threading model: a caller thread runs one protocol at a time,
a service thread serves one wire RPC at a time. On the in-process
drivers (inproc, simulated) caller and server share a thread, so the
caller's open trace is visible to the dispatch point with no envelope at
all — propagation is the degenerate same-thread case.

Nothing here is ever *required*: with no open trace the envelope stays
the historical 2-tuple (bit-identical wire traffic), and with no server
context slow spans record a ``None`` trace and zero queue wait.
"""

from __future__ import annotations

import random
import threading

_tls = threading.local()

#: (trace_id | None, queue_wait_ns, request_bytes) when no context is open
NO_SERVER_CONTEXT = (None, 0, 0)


def new_trace_id() -> int:
    """A fresh random 64-bit (non-zero) trace id."""
    return random.getrandbits(63) | 1


def start_trace(trace_id: int | None = None) -> int:
    """Open a trace on the calling thread; returns its id.

    Every RPC this thread issues until :func:`end_trace` carries the id.
    Nested calls overwrite (no stack): one logical operation per thread
    at a time, matching the drivers' execution model.
    """
    if trace_id is None:
        trace_id = new_trace_id()
    _tls.trace = trace_id
    return trace_id


def current_trace() -> int | None:
    """The calling thread's open trace id, or None."""
    return getattr(_tls, "trace", None)


def end_trace() -> None:
    """Close the calling thread's trace (no-op when none is open)."""
    _tls.trace = None


def set_op_span(span_id: int | None) -> int | None:
    """Install the calling thread's *operation span* id (the parent every
    caller-side RPC span links to); returns the previous value so scopes
    nest. ``None`` clears it."""
    prev = getattr(_tls, "op_span", None)
    _tls.op_span = span_id
    return prev


def current_op_span() -> int | None:
    """The calling thread's open operation span id, or None."""
    return getattr(_tls, "op_span", None)


def swap_op_mark(mark_ns: int | None) -> int | None:
    """Swap the calling thread's *coverage watermark* — the span-time up
    to which the open operation's wall clock is already covered by a
    recorded span. ``trace_operation`` seeds it with the op's start, each
    recorded RPC batch advances it to the batch's end (recording a
    ``client`` span over the compute gap it skipped), and the op's exit
    restores the previous mark so scopes nest. Returns the prior value;
    ``None`` means no span-recording op is open on this thread."""
    prev = getattr(_tls, "op_mark", None)
    _tls.op_mark = mark_ns
    return prev


def set_server_context(
    trace: "int | tuple | None", queue_ns: int, request_bytes: int
) -> None:
    """Open the serving-side context for the wire RPC being dispatched.

    ``trace`` is whatever rode the envelope's third field: a bare trace
    id (pre-span peers) or a ``(trace_id, parent_span_id)`` pair minted
    by a span-aware caller. Normalizing here keeps every transport
    loop's decode site unchanged.
    """
    if isinstance(trace, tuple):
        trace_id, parent = trace[0], trace[1]
    else:
        trace_id, parent = trace, None
    _tls.server = (trace_id, queue_ns, request_bytes, parent)


def server_context() -> tuple:
    """``(trace_id, queue_wait_ns, request_bytes)`` of the RPC being
    served on this thread; falls back to the caller-side trace (the
    same-thread drivers) with zero queue wait."""
    ctx = getattr(_tls, "server", None)
    if ctx is not None:
        return ctx[:3]
    trace = getattr(_tls, "trace", None)
    if trace is not None:
        return (trace, 0, 0)
    return NO_SERVER_CONTEXT


def server_span_parent() -> int | None:
    """The span id the RPC being served should parent to: the caller's
    RPC-group span from the wire, or — on the same-thread drivers, where
    no envelope exists — the caller's open operation span."""
    ctx = getattr(_tls, "server", None)
    if ctx is not None:
        return ctx[3]
    return current_op_span()


def clear_server_context() -> None:
    """Close the serving-side context (after the wire RPC's sub-calls)."""
    _tls.server = None
