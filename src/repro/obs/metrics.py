"""The unified metrics schema: one scrape shape for sim and real runs.

Every scrape surface — the ``repro.tools.metrics`` CLI against a live
TCP cluster, ``inspect --metrics`` on an in-process deployment,
``SimDeployment.metrics()`` on a finished simulation — assembles the
same JSON-safe document::

    {
      "schema": "repro.metrics/1",
      "source": "tcp" | "inproc" | "threaded" | "process" | "simulated",
      "actors": {
        "data/0": {
          "wire_rpcs": 123, "sub_calls": 456, "calls": 456,
          "methods": {
            "data.put_page": {"count": ..., "errors": ...,
                              "mean_ms": ..., "p50_ms": ..., "p95_ms": ...,
                              "p99_ms": ..., "max_ms": ...},
            ...
          },
          "slow": [{"trace": ..., "method": ..., "queue_ms": ...,
                    "service_ms": ..., "bytes": ..., "error": ...}, ...],
          "slow_seen": 2, "slow_threshold_ms": 100.0,
          "spans": [...],     # traced sub-call spans (repro.spans/1 dicts)
          "spans_seen": 0, "clock_domain": 123...
        }, ...
      },
      "caller_rtt": {  # drivers with a wire layer: caller-side RTT rows
        "data": {"count": ..., "mean_ms": ..., "p50_ms": ..., ...}, ...
      },
      "nodes": {  # simulated runs only: NodeUtilization, re-exported
        "client-0": {"role": "client", "cpu": 0.42, "tx": 0.1, "rx": 0.3},
        ...
      }
    }

Reconciliation invariant (pinned by ``tests/test_telemetry.py`` and the
CLI's ``--check``): for every actor, the sum of per-method histogram
counts equals the ``sub_calls`` wire counter — the histograms and the
counters observe the same dispatch point, so a scrape that cannot
reconcile means lost samples, not workload noise. (``telemetry``/
``stats`` *controls* are invisible to both sides, which is what keeps
scraping from perturbing workload-only counter assertions.)
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.net.address import format_actor
from repro.obs.hist import LatencyHistogram

METRICS_SCHEMA = "repro.metrics/1"

#: quantiles every method row carries, as (key, p) pairs
QUANTILES = (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))


def method_row(wire_hist: tuple, errors: int = 0) -> dict[str, Any]:
    """One method's stats row from a histogram wire form."""
    hist = LatencyHistogram.from_wire(wire_hist)
    row: dict[str, Any] = {
        "count": hist.count,
        "errors": errors,
        "mean_ms": hist.mean / 1e6,
    }
    for key, p in QUANTILES:
        row[key] = hist.quantile(p) / 1e6
    row["max_ms"] = hist.max / 1e6
    return row


def span_row(span: tuple) -> dict[str, Any]:
    """One slow span as a JSON-safe dict."""
    trace_id, method, queue_ns, service_ns, nbytes, error = span
    return {
        "trace": trace_id,
        "method": method,
        "queue_ms": queue_ns / 1e6,
        "service_ms": service_ns / 1e6,
        "bytes": nbytes,
        "error": bool(error),
    }


def trace_span_row(
    span: tuple, actor: str = "", domain: int = 0
) -> dict[str, Any]:
    """One per-actor trace span (the telemetry ring's compact tuple) as a
    ``repro.spans/1`` dict (see :data:`repro.obs.spans.SPAN_KEYS`); the
    actor label and clock domain live once per snapshot, so the scrape
    reattaches them here."""
    trace_id, span_id, parent, method, start_ns, end_ns, queue_ns, nbytes, \
        error = span
    return {
        "trace": trace_id,
        "span": span_id,
        "parent": parent,
        "kind": "server",
        "name": method,
        "actor": actor,
        "domain": domain,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "queue_ns": queue_ns,
        "bytes": nbytes,
        "error": bool(error),
    }


def actor_entry(report: Mapping[str, Any], name: str = "") -> dict[str, Any]:
    """One actor's metrics entry from a driver ``telemetry()`` report
    (``{"wire_rpcs", "sub_calls", "telemetry": snapshot}``)."""
    snapshot = report.get("telemetry") or {}
    errors = snapshot.get("errors", {})
    methods = {
        m: method_row(wire, errors.get(m, 0))
        for m, wire in sorted(snapshot.get("methods", {}).items())
    }
    domain = snapshot.get("clock_domain", 0)
    return {
        "wire_rpcs": report.get("wire_rpcs"),
        "sub_calls": report.get("sub_calls"),
        "calls": sum(row["count"] for row in methods.values()),
        "methods": methods,
        "slow": [span_row(s) for s in snapshot.get("slow", ())],
        "slow_seen": snapshot.get("slow_seen", 0),
        "slow_threshold_ms": snapshot.get("slow_threshold_ms"),
        "spans": [
            trace_span_row(s, name, domain) for s in snapshot.get("spans", ())
        ],
        "spans_seen": snapshot.get("spans_seen", 0),
        "clock_domain": domain,
    }


def caller_rtt_rows(driver: Any) -> dict[str, Any] | None:
    """The driver's caller-side RTT histograms as stats rows, or None for
    drivers without a wire layer (``caller_rtt`` merges live caller
    threads' histograms at call time, so a long-lived client's RTTs are
    visible mid-run, not only after its thread retires)."""
    caller_rtt = getattr(driver, "caller_rtt", None)
    if caller_rtt is None:
        return None
    return {
        kind: method_row(hist.to_wire())
        for kind, hist in sorted(caller_rtt().items())
    }


def scrape_driver(
    driver: Any, addresses: list | None = None, source: str = "live"
) -> dict[str, Any]:
    """Scrape every actor of a driver exposing ``telemetry(address)``."""
    if addresses is None:
        addresses = driver.addresses()
    actors = {}
    for address in addresses:
        name = format_actor(address)
        actors[name] = actor_entry(driver.telemetry(address), name)
    doc = {"schema": METRICS_SCHEMA, "source": source, "actors": actors}
    rtt = caller_rtt_rows(driver)
    if rtt is not None:
        doc["caller_rtt"] = rtt
    return doc


def agent_metrics(agent: Any) -> dict[str, Any]:
    """A node agent's own actors in the unified schema (in-process
    inspection; what the flight recorder samples on a node)."""
    return {
        "schema": METRICS_SCHEMA,
        "source": "node",
        "actors": {
            name: actor_entry(report, name)
            for name, report in sorted(agent.telemetry().items())
        },
    }


def collect_spans(metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
    """All per-actor trace spans of one scrape document, flattened."""
    return [
        span
        for name in sorted(metrics.get("actors", {}))
        for span in metrics["actors"][name].get("spans", ())
    ]


def sim_node_entries(network: Any) -> dict[str, Any]:
    """The simulator's per-node utilization in the unified schema.

    Re-exports :func:`repro.sim.trace.utilization_report` so sim and
    real scrapes read identically (real runs simply have no ``nodes``).
    """
    from repro.sim.trace import utilization_report

    return {
        u.name: {"role": u.role, "cpu": u.cpu, "tx": u.tx, "rx": u.rx}
        for u in utilization_report(network)
    }


def reconcile(metrics: Mapping[str, Any]) -> list[str]:
    """Check the histogram-vs-counter invariant; returns problem strings
    (empty = every actor reconciles). Actors scraped without wire
    counters (``sub_calls`` None, e.g. inproc) are skipped."""
    problems = []
    for name, entry in metrics.get("actors", {}).items():
        sub_calls = entry.get("sub_calls")
        if sub_calls is None:
            continue
        if entry.get("calls") != sub_calls:
            problems.append(
                f"{name}: {entry.get('calls')} histogram samples vs "
                f"{sub_calls} sub_calls served"
            )
    return problems


def render_metrics(
    metrics: Mapping[str, Any],
    slow_limit: int = 8,
    prev: Mapping[str, Any] | None = None,
) -> str:
    """Plain-text per-actor/per-method quantile table.

    With ``prev`` (an earlier scrape of the same cluster) every method
    row grows a trailing delta column — calls recorded since the
    previous scrape — which is what ``repro.tools.metrics --watch``
    reprints each period.
    """
    lines = [f"cluster metrics ({metrics.get('source', '?')}):"]
    header = (
        f"  {'actor':<10} {'method':<22} {'count':>8} {'err':>5} "
        f"{'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}"
    )
    if prev is not None:
        header += f" {'Δcount':>8}"
    lines.append(header + "  (ms)")
    prev_actors = (prev or {}).get("actors", {})
    for name in sorted(metrics.get("actors", {})):
        entry = metrics["actors"][name]
        prev_methods = prev_actors.get(name, {}).get("methods", {})
        for method, row in entry.get("methods", {}).items():
            line = (
                f"  {name:<10} {method:<22} {row['count']:>8} "
                f"{row['errors']:>5} {row['mean_ms']:>9.3f} "
                f"{row['p50_ms']:>9.3f} {row['p95_ms']:>9.3f} "
                f"{row['p99_ms']:>9.3f} {row['max_ms']:>9.3f}"
            )
            if prev is not None:
                delta = row["count"] - prev_methods.get(method, {}).get(
                    "count", 0
                )
                line += f" {'+' + str(delta):>8}"
            lines.append(line)
        if entry.get("wire_rpcs") is not None:
            lines.append(
                f"  {name:<10} {'(wire)':<22} {entry['wire_rpcs']:>8} rpcs, "
                f"{entry['sub_calls']} sub-calls"
            )
    if metrics.get("caller_rtt"):
        lines.append("  caller RTT (wire round-trips, by destination kind):")
        for kind in sorted(metrics["caller_rtt"]):
            row = metrics["caller_rtt"][kind]
            lines.append(
                f"    {kind:<10} {row['count']:>8} rpcs  "
                f"mean {row['mean_ms']:>8.3f}  p50 {row['p50_ms']:>8.3f}  "
                f"p95 {row['p95_ms']:>8.3f}  p99 {row['p99_ms']:>8.3f} (ms)"
            )
    spans = [
        (name, span)
        for name in sorted(metrics.get("actors", {}))
        for span in metrics["actors"][name].get("slow", ())
    ]
    if spans:
        spans.sort(
            key=lambda ns: ns[1]["queue_ms"] + ns[1]["service_ms"], reverse=True
        )
        lines.append(f"  slow spans (worst {min(slow_limit, len(spans))}):")
        for name, span in spans[:slow_limit]:
            lines.append(
                f"    {name:<10} {span['method']:<22} "
                f"queue {span['queue_ms']:.3f}ms + "
                f"service {span['service_ms']:.3f}ms "
                f"({span['bytes']} B, trace {span['trace']})"
            )
    if metrics.get("nodes"):
        lines.append("  node utilization (simulated):")
        for name in sorted(metrics["nodes"]):
            u = metrics["nodes"][name]
            lines.append(
                f"    {name:<14} {u['role']:<7} cpu {u['cpu']:>6.1%} "
                f"tx {u['tx']:>6.1%} rx {u['rx']:>6.1%}"
            )
    return "\n".join(lines)
