"""Mergeable log-bucketed latency histogram.

The recording primitive of the telemetry subsystem: a fixed array of
integer buckets covering the full ``uint64`` nanosecond range with
bounded relative error, designed for the actor-confinement threading
model — **one writer per histogram** (the actor's service thread, or the
owning caller thread), readers tolerate torn snapshots because buckets
only ever grow.

Bucket scheme (HdrHistogram-style log-linear):

- values ``0..15`` get one bucket each (exact);
- every power-of-two octave above is split into 16 linear sub-buckets,
  so a bucket spanning ``[lo, hi]`` has ``(hi - lo + 1) / lo <= 1/16`` —
  quantiles read from bucket upper bounds overshoot a sorted-sample
  oracle by at most 6.25 %.

That is ``16 + 16*60 = 976`` buckets: a histogram is one ~8 KB int list,
``record`` is two shifts and an index, and ``merge`` is element-wise
addition — associative and commutative, so per-actor histograms can be
folded across actors, nodes and scrape rounds in any order.

The wire form (:meth:`LatencyHistogram.to_wire`) is a tuple of the
non-zero ``(index, count)`` pairs plus the summary counters; it pickles
compactly (an idle method costs a handful of bytes, not 8 KB) and
:meth:`from_wire` reconstructs an equal histogram. ``pickle`` of the
histogram object itself round-trips through the wire form.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: linear sub-buckets per power-of-two octave (1/16 relative error)
SUBBUCKETS = 16
#: one bucket per value below SUBBUCKETS, then 16 per octave up to 2**64
NUM_BUCKETS = SUBBUCKETS + SUBBUCKETS * 60

_WIRE_TAG = "hist1"


def bucket_index(value: int) -> int:
    """Bucket index of a non-negative integer value (clamped to range)."""
    if value < SUBBUCKETS:
        return value if value > 0 else 0
    # value in [16 << octave, 32 << octave); (value >> octave) is in [16, 32)
    octave = value.bit_length() - 5
    index = SUBBUCKETS * octave + (value >> octave)
    return index if index < NUM_BUCKETS else NUM_BUCKETS - 1


def bucket_bounds(index: int) -> tuple[int, int]:
    """Inclusive ``(lo, hi)`` value range of one bucket."""
    if index < SUBBUCKETS:
        return index, index
    octave = index // SUBBUCKETS - 1
    sub = index % SUBBUCKETS
    lo = (SUBBUCKETS + sub) << octave
    return lo, lo + (1 << octave) - 1


class LatencyHistogram:
    """Fixed-bucket latency histogram; values are integer nanoseconds.

    Single-writer by convention (the recording thread owns it); any
    thread may snapshot, quantile or merge a copy — counts are ints under
    the GIL, so a concurrent read is at worst slightly stale, never
    corrupt.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    def record(self, value: int) -> None:
        """Record one sample (negative values clamp to 0)."""
        if value < 0:
            value = 0
        self.buckets[bucket_index(value)] += 1
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (in place); returns self."""
        mine = self.buckets
        for i, c in enumerate(other.buckets):
            if c:
                mine[i] += c
        if other.count:
            if self.count == 0 or other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        self.count += other.count
        self.total += other.total
        return self

    def quantile(self, p: float) -> int:
        """Upper bound of the bucket holding the p-quantile sample.

        Nearest-rank on the bucket cumulative counts: the returned value
        is ``>=`` the sorted-sample oracle and overshoots it by at most
        1/16 relative (exact below 16 ns). Returns 0 on an empty
        histogram.
        """
        if self.count == 0:
            return 0
        if p <= 0.0:
            return self.min
        # nearest-rank: the ceil of p*count, clamped into [1, count]
        rank = min(self.count, max(1, math.ceil(p * self.count - 1e-9)))
        seen = 0
        for index, c in enumerate(self.buckets):
            if not c:
                continue
            seen += c
            if seen >= rank:
                hi = bucket_bounds(index)[1]
                return min(hi, self.max)
        return self.max  # pragma: no cover - rank <= count always lands

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    # -- wire form --------------------------------------------------------

    def to_wire(self) -> tuple:
        """Compact picklable form: summary counters + non-zero buckets."""
        pairs = tuple(
            (i, c) for i, c in enumerate(self.buckets) if c
        )
        return (_WIRE_TAG, self.count, self.total, self.min, self.max, pairs)

    @classmethod
    def from_wire(cls, wire: tuple) -> "LatencyHistogram":
        """Reconstruct a histogram from :meth:`to_wire` output."""
        if not isinstance(wire, tuple) or not wire or wire[0] != _WIRE_TAG:
            raise ValueError(f"not a histogram wire form: {wire!r}")
        _tag, count, total, vmin, vmax, pairs = wire
        hist = cls()
        hist.count = count
        hist.total = total
        hist.min = vmin
        hist.max = vmax
        for index, c in pairs:
            hist.buckets[index] += c
        return hist

    def __reduce__(self) -> tuple:
        """Pickle through the compact wire form."""
        return (LatencyHistogram.from_wire, (self.to_wire(),))

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.0f}ns, "
            f"max={self.max}ns)"
        )


def merge_all(hists: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Fold any number of histograms into a fresh one."""
    out = LatencyHistogram()
    for h in hists:
        out.merge(h)
    return out
