"""Span primitives: per-process clocks, span ids, bounded span buffers.

A *span* is one timed unit of a traced operation — the client-side
window of a wire RPC, the serving side of a dispatched sub-call, or the
whole logical operation ("op") a tool or benchmark wraps. Spans are
plain dicts (see :data:`SPAN_KEYS`) so they cross the wire inside the
``telemetry`` scrape and serialize to JSON without a schema layer.

**Clock domains.** Span timestamps are ``perf_counter_ns`` *relative to
a per-process epoch* minted at import (:func:`span_now`). On Linux
``perf_counter_ns`` is CLOCK_MONOTONIC with a system-wide base, which
would make cross-process timestamps accidentally comparable on one host
and silently incomparable across hosts; subtracting a per-process epoch
makes every process a genuinely distinct *clock domain*, so the export
layer's alignment step (:mod:`repro.obs.export`) is exercised on every
multi-process deployment instead of only on multi-host ones. Each
domain is named by :data:`CLOCK_DOMAIN`, a random 64-bit id minted at
import.

**Fork safety.** The process driver forks workers on Linux: a child
would inherit the parent's epoch (collapsing the two clock domains into
one) and the parent's PRNG state (making sibling workers mint colliding
ids in lockstep). ``os.register_at_fork`` re-mints the epoch and domain
in the child and clears the inherited caller buffer; ids come from
``random.SystemRandom`` (kernel entropy, no inherited state).

Simulated deployments use :data:`SIM_DOMAIN` (domain 0): simulated
event times share one global clock by construction, so they are born
aligned.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Callable, Iterator

from repro.obs.trace import (
    current_op_span,
    end_trace,
    set_op_span,
    start_trace,
    swap_op_mark,
)

#: span schema tag (the export layer validates against this)
SPAN_SCHEMA = "repro.spans/1"

#: every span dict carries exactly these keys
SPAN_KEYS = (
    "trace",     # trace id (int)
    "span",      # span id (int)
    "parent",    # parent span id (int | None)
    "kind",      # "op" | "client" | "rpc" | "server"
    "name",      # op name / destination label / method name
    "actor",     # which party recorded it ("client" or the actor label)
    "domain",    # clock-domain id the timestamps are relative to
    "start_ns",  # domain-relative start, nanoseconds
    "end_ns",    # domain-relative end, nanoseconds
    "queue_ns",  # queue wait preceding start_ns (server spans; else 0)
    "bytes",     # request payload bytes (0 when unknown)
    "error",     # bool: did the unit end in an error
)

#: the clock-domain id simulated timelines report (born aligned)
SIM_DOMAIN = 0

#: caller-side spans kept per process (ring; older spans overwritten)
CALLER_BUFFER_SIZE = 4096

_sysrand = random.SystemRandom()

_EPOCH = perf_counter_ns()
CLOCK_DOMAIN = _sysrand.getrandbits(64) | 1


def span_now() -> int:
    """Nanoseconds since this process's span epoch (import time)."""
    return perf_counter_ns() - _EPOCH


def to_span_ns(t_ns: int) -> int:
    """Convert an absolute ``perf_counter_ns`` reading to span time."""
    return t_ns - _EPOCH


def new_span_id() -> int:
    """A fresh non-zero 64-bit span id (kernel entropy, fork-safe)."""
    return _sysrand.getrandbits(63) | 1


def make_span(
    trace: int,
    span: int,
    parent: int | None,
    kind: str,
    name: str,
    actor: str,
    start_ns: int,
    end_ns: int,
    *,
    domain: int | None = None,
    queue_ns: int = 0,
    nbytes: int = 0,
    error: bool = False,
) -> dict[str, Any]:
    """Assemble one span dict in the :data:`SPAN_KEYS` shape."""
    return {
        "trace": trace,
        "span": span,
        "parent": parent,
        "kind": kind,
        "name": name,
        "actor": actor,
        "domain": CLOCK_DOMAIN if domain is None else domain,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "queue_ns": queue_ns,
        "bytes": nbytes,
        "error": error,
    }


class SpanBuffer:
    """Bounded, locked span ring shared by caller threads.

    Unlike the per-actor telemetry rings (single-writer by actor
    confinement), caller-side spans are recorded by every client thread
    of the process, so this buffer takes a lock per record. It is only
    touched while a trace is open — untraced traffic never enters.
    """

    def __init__(self, capacity: int = CALLER_BUFFER_SIZE) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: list[dict[str, Any]] = []
        self.seen = 0

    def record(self, span: dict[str, Any]) -> None:
        """Append one span, overwriting the oldest when full."""
        with self._lock:
            if len(self._spans) < self.capacity:
                self._spans.append(span)
            else:
                self._spans[self.seen % self.capacity] = span
            self.seen += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """A stable copy of the buffered spans."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop all buffered spans (tools call this between operations)."""
        with self._lock:
            self._spans.clear()
            self.seen = 0


#: the process-wide caller-side span buffer (rpc + op spans)
CALLER = SpanBuffer()


def _reinit_after_fork() -> None:
    global _EPOCH, CLOCK_DOMAIN
    _EPOCH = perf_counter_ns()
    CLOCK_DOMAIN = _sysrand.getrandbits(64) | 1
    CALLER.clear()


os.register_at_fork(after_in_child=_reinit_after_fork)


def record_rpc_span(
    trace: int,
    span: int,
    parent: int | None,
    dest_label: str,
    start_ns: int,
    end_ns: int,
    nbytes: int = 0,
) -> None:
    """Record the caller-side window of one wire RPC group."""
    CALLER.record(
        make_span(
            trace, span, parent, "rpc", dest_label, "client",
            start_ns, end_ns, nbytes=nbytes,
        )
    )


def advance_op_mark(
    trace: int,
    parent: int | None,
    t_start_ns: int,
    t_end_ns: int,
) -> None:
    """Advance this thread's coverage watermark over one covered window.

    The watermark half of :func:`record_group_spans`, factored out for
    drivers whose wire activity happens off the calling thread (the aio
    driver records rpc spans from its event loop): the caller-side
    compute gap between the thread's current watermark and
    ``t_start_ns`` becomes a ``client`` span, and the watermark advances
    to ``t_end_ns`` — so the window's interior counts as covered op time
    even though its rpc spans were recorded elsewhere. Timestamps are
    absolute ``perf_counter_ns`` readings. When no op is open on this
    thread the watermark is left unset and nothing is recorded.
    """
    start = to_span_ns(t_start_ns)
    end = to_span_ns(t_end_ns)
    mark = swap_op_mark(end)
    if mark is None:
        swap_op_mark(None)  # no op open: leave the watermark unset
    elif start > mark:
        CALLER.record(
            make_span(
                trace, new_span_id(), parent, "client", "client", "client",
                mark, start,
            )
        )


def record_group_spans(
    trace: int,
    parent: int | None,
    span_ids: list[int],
    groups: list,
    t_enq_ns: int,
    t_done_ns: int,
) -> None:
    """Record the caller-side rpc spans of one executed batch.

    Every wire group of a batch shares the batch window — the drivers
    submit all groups before waiting and the batch completes as a unit,
    exactly the granularity at which the caller observes time. The span
    ids are the ones that rode each group's wire envelope, so serving
    spans parent to these. Timestamps arrive as absolute
    ``perf_counter_ns`` readings (the drivers' existing RTT clock).

    The client compute *between* batches (splitting pages, walking the
    version tree to build the next batch) is wall time of the traced op
    too: when an op's coverage watermark is open on this thread, the gap
    from the watermark to this batch's start is recorded as a ``client``
    span and the watermark advances to the batch's end
    (:func:`advance_op_mark`) — so a timeline accounts for (nearly)
    every nanosecond of the op, not just the wire.
    """
    from repro.net.address import format_actor

    advance_op_mark(trace, parent, t_enq_ns, t_done_ns)
    start = to_span_ns(t_enq_ns)
    end = to_span_ns(t_done_ns)
    for sid, group in zip(span_ids, groups):
        nbytes = sum(call.payload_bytes() for call in group.calls)
        record_rpc_span(
            trace, sid, parent, format_actor(group.dest), start, end, nbytes
        )


@contextmanager
def trace_operation(
    name: str,
    trace_id: int | None = None,
    *,
    collector: Callable[[dict[str, Any]], None] | None = None,
) -> Iterator[int]:
    """Trace one logical operation on the calling thread.

    Opens a trace (:func:`repro.obs.trace.start_trace`), installs an
    *op span* as the parent of every RPC the thread issues inside the
    block, and on exit records the op's own span into :data:`CALLER`
    (or hands it to ``collector``). Yields the trace id.

    Client compute is covered too: the block seeds the thread's coverage
    watermark, every recorded RPC batch closes the compute gap before it
    with a ``client`` span (:func:`record_group_spans`), and the exit
    records one final ``client`` span from the last batch (or the op's
    start, if no RPC ran) to the op's end.
    """
    tid = start_trace(trace_id)
    sid = new_span_id()
    prev = set_op_span(sid)
    t0 = span_now()
    prev_mark = swap_op_mark(t0)
    failed = False
    try:
        yield tid
    except BaseException:
        failed = True
        raise
    finally:
        t1 = span_now()
        mark = swap_op_mark(prev_mark)
        set_op_span(prev)
        end_trace()
        record = collector or CALLER.record
        if mark is not None and t1 > mark:
            record(
                make_span(
                    tid, new_span_id(), sid, "client", "client", "client",
                    mark, t1, error=failed,
                )
            )
        record(
            make_span(tid, sid, prev, "op", name, "client", t0, t1, error=failed)
        )
