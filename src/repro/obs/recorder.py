"""Flight recorder: a crash-surviving ring of metrics samples on disk.

A background thread polls a sample source (typically
``deployment.metrics()`` or a node agent's
:func:`~repro.obs.metrics.agent_metrics`) every interval and appends the
JSON-encoded sample to a segment file. Segments rotate at a size bound
and the oldest are deleted beyond a segment cap, so the recorder holds a
bounded window of recent history — when an agent is SIGKILLed or OOMs,
its state directory still holds the last N seconds of metrics for
post-mortem (the same motivation as an aircraft flight recorder).

Durability discipline follows :mod:`repro.core.journal`: **flush after
every record** (the OS page cache holds flushed data across a process
kill — only a host power cut loses it, which is the right trade for a
diagnostic sampler), and a **torn tail is data, not corruption**: a
sampler killed mid-write leaves a partial last line, which the reader
skips with a warning, never an error. The formats differ deliberately —
the journal frames binary records with checksums because replay
*decides state*; the recorder writes plain JSONL because its consumer
is a human (or ``repro.tools.metrics``) after a crash, and greppable
beats framed there.

Default-off everywhere: nothing starts a recorder unless asked
(``repro.tools.node --flight-recorder DIR``, or constructing one).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from typing import Any, Callable

logger = logging.getLogger("repro.obs")

SEGMENT_PREFIX = "flight-"
SEGMENT_SUFFIX = ".jsonl"

#: rotate the current segment past this many bytes
DEFAULT_SEGMENT_BYTES = 1 << 18
#: keep at most this many segments (oldest deleted first)
DEFAULT_MAX_SEGMENTS = 8
#: seconds between samples
DEFAULT_INTERVAL_S = 1.0


def _segment_name(seq: int) -> str:
    return f"{SEGMENT_PREFIX}{seq:08d}{SEGMENT_SUFFIX}"


def _segment_seq(name: str) -> int | None:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_segments(directory: str) -> list[str]:
    """The recorder's segment files in ``directory``, oldest first."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = [
        (seq, name)
        for name in names
        if (seq := _segment_seq(name)) is not None
    ]
    return [os.path.join(directory, name) for _, name in sorted(found)]


class FlightRecorder:
    """Samples ``source()`` into a size-bounded on-disk segment ring.

    ``source`` is any zero-argument callable returning a JSON-safe value
    (a metrics document). A source that raises does not kill the
    sampler: the error is recorded as a sample (a cluster mid-crash is
    exactly when the recorder must keep writing).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        source: Callable[[], Any],
        interval_s: float = DEFAULT_INTERVAL_S,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ) -> None:
        self.directory = os.fspath(directory)
        self._source = source
        self.interval_s = interval_s
        self.max_segment_bytes = max_segment_bytes
        self.max_segments = max(1, max_segments)
        os.makedirs(self.directory, exist_ok=True)
        existing = list_segments(self.directory)
        self._seq = (
            (_segment_seq(os.path.basename(existing[-1])) or 0) + 1
            if existing else 1
        )
        self._file: Any = None
        self._written = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0

    # -- sampling --------------------------------------------------------

    def sample(self) -> None:
        """Take one sample now (the loop's body; tests call it directly)."""
        record: dict[str, Any] = {"t": time.time()}
        try:
            record["sample"] = self._source()
        except Exception as exc:  # noqa: BLE001 - keep recording mid-crash
            record["error"] = f"{type(exc).__name__}: {exc}"
        try:
            line = json.dumps(record, separators=(",", ":")) + "\n"
        except (TypeError, ValueError) as exc:
            line = json.dumps(
                {"t": record["t"], "error": f"unencodable sample: {exc}"}
            ) + "\n"
        self._append(line.encode())
        self.samples_taken += 1

    def _append(self, data: bytes) -> None:
        if self._file is not None and \
                self._written + len(data) > self.max_segment_bytes:
            self._file.close()
            self._file = None
        if self._file is None:
            path = os.path.join(self.directory, _segment_name(self._seq))
            self._seq += 1
            self._file = open(path, "ab")
            self._written = 0
            self._reclaim()
        self._file.write(data)
        # flush-always: the page cache survives a killed process, which is
        # the whole point of a flight recorder (journal.py's discipline)
        self._file.flush()
        self._written += len(data)

    def _reclaim(self) -> None:
        segments = list_segments(self.directory)
        for path in segments[: max(0, len(segments) - self.max_segments)]:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing reclaim is fine
                pass

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Start the background sampler thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="flight-recorder", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the sampler; by default writes one last sample on the
        way out (the freshest pre-shutdown state)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if final_sample:
            self.sample()
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def read_flight_records(directory: str | os.PathLike) -> list[dict]:
    """Every decodable sample in a recorder directory, oldest first.

    A torn tail — the partial line a killed sampler leaves — is skipped
    with a warning, never an error (the journal's torn-tail policy): the
    records *before* the tear are exactly the post-mortem evidence.
    """
    records: list[dict] = []
    for path in list_segments(os.fspath(directory)):
        with open(path, "rb") as fh:
            data = fh.read()
        for line in data.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                logger.warning(
                    "flight recorder: skipping torn/corrupt line in %s", path
                )
    return records
