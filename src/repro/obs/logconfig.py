"""The documented ``repro.*`` logger hierarchy and its one-call setup.

Every operator-relevant event in the system is emitted through a named
logger under the ``repro`` root:

- ``repro.vm`` — version-manager recovery summaries (INFO);
- ``repro.pm`` — provider-manager recovery and migration-plan journal
  replays (INFO);
- ``repro.journal`` — torn-tail truncations and snapshot compaction
  warnings (WARNING);
- ``repro.obs`` — telemetry events: slow-RPC spans (DEBUG; the ring
  buffer is the primary record, the log line is for live tailing).

A *process* that embeds these modules decides where the records go.
The node-agent CLI (``python -m repro.tools.node``) calls
:func:`configure_logging` so every launched agent writes the hierarchy
to stderr; a program that constructs :class:`~repro.net.node.NodeAgent`
(or any deployment) directly gets the same behavior with one call::

    import repro.obs
    repro.obs.configure_logging()          # INFO and up, stderr

Without it, Python's last-resort handler still surfaces WARNING and
above (torn tails are never silent), but recovery INFO lines are
dropped — which is why embedders should call this.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: the root of the documented hierarchy
ROOT_LOGGER = "repro"

#: marker attribute identifying the handler this module installed
_MARKER = "_repro_obs_handler"


def configure_logging(
    level: int | str = logging.INFO, stream: IO[str] | None = None
) -> logging.Logger:
    """Install one stderr (or ``stream``) handler on the ``repro`` root.

    Idempotent: calling again reconfigures the existing handler's level
    and stream instead of stacking duplicates, so libraries and CLIs may
    both call it safely. Returns the configured root logger. stdout is
    never touched (the node CLI reserves it for the READY line).
    """
    root = logging.getLogger(ROOT_LOGGER)
    handler = None
    for existing in root.handlers:
        if getattr(existing, _MARKER, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _MARKER, True)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    root.setLevel(level)
    return root
