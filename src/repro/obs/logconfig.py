"""The documented ``repro.*`` logger hierarchy and its one-call setup.

Every operator-relevant event in the system is emitted through a named
logger under the ``repro`` root:

- ``repro.vm`` — version-manager recovery summaries (INFO);
- ``repro.pm`` — provider-manager recovery and migration-plan journal
  replays (INFO);
- ``repro.journal`` — torn-tail truncations and snapshot compaction
  warnings (WARNING);
- ``repro.obs`` — telemetry events: slow-RPC spans (DEBUG; the ring
  buffer is the primary record, the log line is for live tailing).

A *process* that embeds these modules decides where the records go.
The node-agent CLI (``python -m repro.tools.node``) calls
:func:`configure_logging` so every launched agent writes the hierarchy
to stderr; a program that constructs :class:`~repro.net.node.NodeAgent`
(or any deployment) directly gets the same behavior with one call::

    import repro.obs
    repro.obs.configure_logging()          # INFO and up, stderr

Without it, Python's last-resort handler still surfaces WARNING and
above (torn tails are never silent), but recovery INFO lines are
dropped — which is why embedders should call this.

The ``REPRO_LOG`` environment variable overrides the requested level
(``REPRO_LOG=debug python -m repro.tools.node ...`` turns on slow-span
DEBUG lines on a deployed agent without touching its launcher), read on
every call so a respawned agent honors the environment it starts in.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO

#: the root of the documented hierarchy
ROOT_LOGGER = "repro"

#: environment knob overriding the level passed to configure_logging
LOG_ENV = "REPRO_LOG"

#: marker attribute identifying the handler this module installed
_MARKER = "_repro_obs_handler"


def _env_level() -> int | str | None:
    """The ``REPRO_LOG`` override as a logging level, or None.

    Accepts names (``debug``, ``INFO``) and numerics (``10``); an
    unrecognized value is ignored with a stderr note rather than an
    error — a typo in an env var must not keep an agent from starting.
    """
    raw = os.environ.get(LOG_ENV)
    if not raw:
        return None
    if raw.isdigit():
        return int(raw)
    name = raw.strip().upper()
    if isinstance(logging.getLevelName(name), int):
        return name
    print(
        f"repro.obs: ignoring unrecognized {LOG_ENV}={raw!r}",
        file=sys.stderr,
    )
    return None


def configure_logging(
    level: int | str = logging.INFO, stream: IO[str] | None = None
) -> logging.Logger:
    """Install one stderr (or ``stream``) handler on the ``repro`` root.

    Idempotent: calling again reconfigures the existing handler's level
    and stream instead of stacking duplicates, so libraries and CLIs may
    both call it safely. Returns the configured root logger. stdout is
    never touched (the node CLI reserves it for the READY line).

    A ``REPRO_LOG=level`` environment variable overrides ``level`` —
    the operator knob for turning a deployed agent's logging up or down
    without editing its launcher.
    """
    env_level = _env_level()
    if env_level is not None:
        level = env_level
    root = logging.getLogger(ROOT_LOGGER)
    handler = None
    for existing in root.handlers:
        if getattr(existing, _MARKER, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _MARKER, True)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    root.setLevel(level)
    return root
