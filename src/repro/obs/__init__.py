"""Cluster-wide telemetry: latency histograms, traces, unified metrics.

The measurement layer every driver shares. The live drivers expose only
integer wire-RPC counters, and per-node utilization tracing exists solely
in the simulator — this package is the missing half: *time*, measured the
same way on every deployment substrate, cheap enough to stay default-on.

Three small pieces, threaded through the RPC dispatch point that every
driver already funnels through (:func:`repro.net.sansio.dispatch_call`):

- :mod:`repro.obs.hist` — a mergeable log-bucketed latency histogram
  (fixed int-array buckets, ≤ 1/16 relative error, compact wire form).
  One per actor per method records service time; one per caller thread
  per destination kind records round-trip time.
- :mod:`repro.obs.trace` — trace-context propagation: a trace id carried
  in the RPC envelope from client batch to the serving actor, plus the
  server-side context (queue wait vs service split, request bytes) that
  the slow-RPC ring log samples from.
- :mod:`repro.obs.telemetry` — the per-actor accumulator behind
  ``dispatch_call`` and the ``telemetry`` mini-protocol RPC every actor
  answers; :mod:`repro.obs.metrics` assembles scraped snapshots into the
  unified schema ``repro.tools.metrics`` prints (and the simulator's
  :class:`~repro.sim.trace.NodeUtilization` is re-exported through).

On top of the scrape, span-level distributed tracing:

- :mod:`repro.obs.spans` — per-process clock domains, span ids and the
  bounded span buffers: while a trace is open every dispatched sub-call
  and every wire RPC records a span (collected through the same
  uncounted ``telemetry`` control);
- :mod:`repro.obs.export` — assembles spans from all actors into one
  timeline: cross-process clock alignment from RPC parent/child pairs,
  Chrome trace-event JSON (Perfetto-loadable) and per-operation
  critical-path summaries;
- :mod:`repro.obs.recorder` — the flight recorder: a background sampler
  writing ``deployment.metrics()`` into a size-bounded on-disk segment
  ring, so a crashed agent leaves its last N seconds of metrics
  (default-off; ``repro.tools.node --flight-recorder DIR``).

Logging: telemetry events (slow spans) go to the ``repro.obs`` logger;
:func:`repro.obs.logconfig.configure_logging` installs one stderr handler
on the documented ``repro.*`` hierarchy (``repro.vm``, ``repro.pm``,
``repro.journal``, ``repro.obs``) for programmatic embedders — the node
CLI calls it, a library user may too.

Overhead: two ``perf_counter_ns`` reads plus one histogram increment per
sub-call (~1 µs); set ``REPRO_OBS=0`` to disable recording entirely.
"""

from repro.obs.export import (
    align_spans,
    chrome_trace,
    coverage,
    render_critical_path,
    validate_chrome,
    validate_spans,
)
from repro.obs.hist import LatencyHistogram
from repro.obs.logconfig import configure_logging
from repro.obs.metrics import (
    METRICS_SCHEMA,
    collect_spans,
    reconcile,
    render_metrics,
)
from repro.obs.recorder import FlightRecorder, read_flight_records
from repro.obs.spans import SPAN_SCHEMA, trace_operation
from repro.obs.telemetry import (
    ActorTelemetry,
    TELEMETRY_METHOD,
    telemetry_enabled,
    telemetry_of,
)
from repro.obs.trace import current_trace, end_trace, new_trace_id, start_trace

__all__ = [
    "ActorTelemetry",
    "FlightRecorder",
    "LatencyHistogram",
    "METRICS_SCHEMA",
    "SPAN_SCHEMA",
    "TELEMETRY_METHOD",
    "align_spans",
    "chrome_trace",
    "collect_spans",
    "configure_logging",
    "coverage",
    "current_trace",
    "end_trace",
    "new_trace_id",
    "read_flight_records",
    "reconcile",
    "render_critical_path",
    "render_metrics",
    "start_trace",
    "telemetry_enabled",
    "telemetry_of",
    "trace_operation",
    "validate_chrome",
    "validate_spans",
]
