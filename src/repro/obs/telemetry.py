"""Per-actor telemetry: method histograms, counters, slow-span ring.

One :class:`ActorTelemetry` rides on every actor object
(:func:`telemetry_of` attaches it lazily at the first dispatched call).
Because every driver confines an actor to a single service thread, the
accumulator is strictly single-writer — no locks anywhere on the record
path, which is what keeps telemetry cheap enough to stay default-on.

What it holds:

- a :class:`~repro.obs.hist.LatencyHistogram` per method (service time,
  nanoseconds, measured around ``actor.handle`` by
  :func:`repro.net.sansio.dispatch_call`);
- an error counter per method (handler exceptions, i.e. results that
  became :class:`~repro.errors.RemoteError`);
- a fixed-size ring of **slow spans**: any sub-call whose queue wait +
  service time crosses the threshold (``REPRO_OBS_SLOW_MS``, default
  100 ms) is sampled with its trace id, method, request bytes and the
  queue-vs-service split — the on-node flight recorder the metrics
  scrape surfaces;
- a fixed-size ring of **trace spans**: while a trace is open, *every*
  dispatched sub-call (not just slow ones) is recorded with its span
  id, parent span, method, domain-relative start/end, queue wait and
  request bytes (:mod:`repro.obs.spans`), which is what the timeline
  export (:mod:`repro.obs.export`) assembles across actors.

The ``telemetry`` mini-protocol RPC: ``dispatch_call`` intercepts the
method name ``telemetry`` before the actor's own ``handle`` sees it, so
*every* actor — data, meta, vm, pm, and anything a test registers —
answers it on every driver, returning :meth:`ActorTelemetry.snapshot`
(plain picklable containers, histograms in wire form).

``REPRO_OBS=0`` disables recording process-wide (snapshots then report
empty); the flag is read once at import.
"""

from __future__ import annotations

import logging
import os
from typing import Any

from repro.obs import spans as _spans
from repro.obs.hist import LatencyHistogram
from repro.obs.trace import server_context, server_span_parent

logger = logging.getLogger("repro.obs")

#: the mini-protocol method name every actor answers (intercepted in
#: dispatch_call, never forwarded to the actor's own handle)
TELEMETRY_METHOD = "telemetry"

#: snapshot schema tag (bump when the snapshot layout changes)
SNAPSHOT_SCHEMA = "repro.obs/1"

#: slow-span threshold, milliseconds (queue wait + service time)
SLOW_MS_ENV = "REPRO_OBS_SLOW_MS"
DEFAULT_SLOW_MS = 100.0

#: slow spans kept per actor (ring buffer; older spans are overwritten)
SLOW_RING_SIZE = 64

#: traced sub-call spans kept per actor (ring; older spans overwritten)
SPAN_RING_SIZE = 2048

_ENABLED = os.environ.get("REPRO_OBS", "1") != "0"


def telemetry_enabled() -> bool:
    """Whether recording is on (``REPRO_OBS`` != 0, read at import)."""
    return _ENABLED


def _slow_threshold_ns() -> int:
    try:
        ms = float(os.environ.get(SLOW_MS_ENV, DEFAULT_SLOW_MS))
    except ValueError:
        ms = DEFAULT_SLOW_MS
    return int(ms * 1e6)


class ActorTelemetry:
    """Single-writer telemetry accumulator for one actor.

    The writer is whichever thread serves the actor (exactly one, by the
    drivers' confinement invariant); any thread may call
    :meth:`snapshot` — counters only grow, so a concurrent snapshot is
    at worst slightly stale.
    """

    __slots__ = (
        "hists", "errors", "slow", "slow_seen", "slow_threshold_ns",
        "spans", "spans_seen",
    )

    def __init__(self, slow_threshold_ns: int | None = None) -> None:
        self.hists: dict[str, LatencyHistogram] = {}
        self.errors: dict[str, int] = {}
        self.slow: list[tuple] = []
        self.slow_seen = 0
        self.slow_threshold_ns = (
            _slow_threshold_ns() if slow_threshold_ns is None else slow_threshold_ns
        )
        self.spans: list[tuple] = []
        self.spans_seen = 0

    def record(
        self, method: str, service_ns: int, error: bool, end_ns: int = 0
    ) -> None:
        """Record one served sub-call (called from dispatch_call).

        ``end_ns`` is the dispatch point's absolute ``perf_counter_ns``
        at handler return; when a trace is open it turns the sub-call
        into a span in the per-actor span ring (zero means "timestamp
        not supplied" — histogram-only recording, no span).
        """
        hist = self.hists.get(method)
        if hist is None:
            hist = self.hists[method] = LatencyHistogram()
        hist.record(service_ns)
        if error:
            self.errors[method] = self.errors.get(method, 0) + 1
        trace_id, queue_ns, nbytes = server_context()
        if trace_id is not None and end_ns:
            end_rel = _spans.to_span_ns(end_ns)
            self._record_span((
                trace_id,
                _spans.new_span_id(),
                server_span_parent(),
                method,
                end_rel - service_ns,
                end_rel,
                queue_ns,
                nbytes,
                error,
            ))
        if service_ns + queue_ns >= self.slow_threshold_ns:
            self._record_slow(
                (trace_id, method, queue_ns, service_ns, nbytes, error)
            )

    def _record_span(self, span: tuple) -> None:
        if len(self.spans) < SPAN_RING_SIZE:
            self.spans.append(span)
        else:
            self.spans[self.spans_seen % SPAN_RING_SIZE] = span
        self.spans_seen += 1

    def _record_slow(self, span: tuple) -> None:
        if len(self.slow) < SLOW_RING_SIZE:
            self.slow.append(span)
        else:
            self.slow[self.slow_seen % SLOW_RING_SIZE] = span
        self.slow_seen += 1
        if logger.isEnabledFor(logging.DEBUG):
            trace_id, method, queue_ns, service_ns, nbytes, error = span
            logger.debug(
                "slow span: method=%s trace=%s queue=%.3fms service=%.3fms "
                "bytes=%d error=%s",
                method, trace_id, queue_ns / 1e6, service_ns / 1e6, nbytes,
                error,
            )

    @property
    def total_calls(self) -> int:
        """Sub-calls recorded across all methods."""
        return sum(h.count for h in self.hists.values())

    def snapshot(self) -> dict[str, Any]:
        """Wire-safe snapshot: histograms in compact wire form, spans as
        plain tuples. This is the ``telemetry`` RPC's reply."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "enabled": _ENABLED,
            "methods": {m: h.to_wire() for m, h in self.hists.items()},
            "errors": dict(self.errors),
            "slow": list(self.slow),
            "slow_seen": self.slow_seen,
            "slow_threshold_ms": self.slow_threshold_ns / 1e6,
            "spans": list(self.spans),
            "spans_seen": self.spans_seen,
            "clock_domain": _spans.CLOCK_DOMAIN,
        }


class _DisabledTelemetry(ActorTelemetry):
    """Shared no-op accumulator for actors that refuse attributes (or
    when ``REPRO_OBS=0``): recording drops, snapshots stay empty."""

    def record(
        self, method: str, service_ns: int, error: bool, end_ns: int = 0
    ) -> None:
        pass


DISABLED = _DisabledTelemetry(slow_threshold_ns=1 << 62)

#: attribute name the accumulator rides on (one per actor object)
_ATTR = "_obs_telemetry"


def telemetry_of(actor: Any) -> ActorTelemetry:
    """The actor's telemetry accumulator, attached lazily.

    Actors that cannot take attributes (``__slots__``, frozen) get the
    shared no-op accumulator — telemetry silently off for them rather
    than a dispatch-path failure.
    """
    tele = getattr(actor, _ATTR, None)
    if tele is None:
        if not _ENABLED:
            return DISABLED
        tele = ActorTelemetry()
        try:
            setattr(actor, _ATTR, tele)
        except (AttributeError, TypeError):
            return DISABLED
    return tele
