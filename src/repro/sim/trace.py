"""Simulation tracing: per-node utilization reports.

Every :class:`~repro.sim.resources.RateLane` accumulates busy time, so a
finished run can be summarized into per-node CPU/NIC utilization — the
tool for answering "what was the bottleneck?" for any experiment (e.g.
Figure 3(c)'s flat write curve is explained by no lane saturating).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import Network, SimNode


@dataclass(frozen=True)
class NodeUtilization:
    name: str
    role: str
    cpu: float
    tx: float
    rx: float

    @property
    def hottest(self) -> tuple[str, float]:
        lanes = {"cpu": self.cpu, "tx": self.tx, "rx": self.rx}
        lane = max(lanes, key=lanes.get)  # type: ignore[arg-type]
        return lane, lanes[lane]


def node_utilization(node: SimNode, elapsed: float) -> NodeUtilization:
    return NodeUtilization(
        name=node.name,
        role=node.role,
        cpu=node.cpu.utilization(elapsed),
        tx=node.tx.utilization(elapsed),
        rx=node.rx.utilization(elapsed),
    )


def utilization_report(network: Network, elapsed: float | None = None) -> list[NodeUtilization]:
    """Utilization of every node over ``elapsed`` (default: sim.now)."""
    window = network.sim.now if elapsed is None else elapsed
    return [node_utilization(n, window) for n in network.nodes.values()]


def hottest_nodes(network: Network, top: int = 5) -> list[NodeUtilization]:
    """The ``top`` most loaded nodes by their hottest lane."""
    report = utilization_report(network)
    return sorted(report, key=lambda u: u.hottest[1], reverse=True)[:top]


def render_utilization(network: Network, top: int | None = None) -> str:
    """Plain-text utilization table (sorted by hottest lane)."""
    rows = hottest_nodes(network, top or len(network.nodes))
    lines = [
        f"utilization over {network.sim.now:.3f} simulated seconds "
        f"({network.messages_sent} messages, {network.bytes_sent} bytes):",
        f"  {'node':<14} {'role':<7} {'cpu':>6} {'tx':>6} {'rx':>6}",
    ]
    for u in rows:
        lines.append(
            f"  {u.name:<14} {u.role:<7} {u.cpu:>6.1%} {u.tx:>6.1%} {u.rx:>6.1%}"
        )
    return "\n".join(lines)
