"""Simulated resources: FIFO semaphores and serialized rate lanes.

Two primitives cover everything the cluster model needs:

- :class:`Resource` — a counted semaphore with FIFO granting, used for
  bounded server worker pools.
- :class:`RateLane` — a work-conserving FIFO pipe with a fixed service rate
  (bytes/second or operations/second), used to model NIC transmit/receive
  sides and per-node CPUs. A job of size ``n`` occupies the lane for
  ``n / rate`` seconds *after* all previously queued work; this serializes
  concurrent transfers exactly like a full-duplex Ethernet adapter
  serializes frames, and yields the aggregate-bandwidth behaviour the
  paper's throughput experiment depends on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim.engine import Event, SimulationError, Simulator, Timeout


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """Counted semaphore with FIFO granting.

    Usage inside a process::

        req = pool.request()
        yield req
        try:
            ...
        finally:
            pool.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        self.max_in_use = 0  # high-water mark, handy for assertions

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        self._in_use -= 1
        if self._waiting:
            self._grant(self._waiting.popleft())

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        self.max_in_use = max(self.max_in_use, self._in_use)
        req.succeed(None)


class RateLane:
    """Serialized FIFO service lane with a fixed rate.

    ``submit(amount)`` returns an event that fires when the job completes;
    jobs are serviced back-to-back in submission order. The lane is work
    conserving: an idle lane starts a job immediately; a busy lane appends
    it after the current backlog.
    """

    __slots__ = ("sim", "rate", "_free_at", "busy_time", "jobs")

    def __init__(self, sim: Simulator, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self._free_at = 0.0
        self.busy_time = 0.0  # total service time accumulated (utilization)
        self.jobs = 0

    def submit(
        self, amount: float, extra_delay: float = 0.0, not_before: float = 0.0
    ) -> Event:
        """Queue ``amount`` units of work; event fires at completion time.

        ``extra_delay`` adds a pure delay after the work completes without
        occupying the lane (e.g. link latency after NIC serialization);
        ``not_before`` keeps the job from starting before an absolute
        instant (e.g. "transmit once the marshalling CPU job finishes").
        Both fold what used to be separate scheduled waits into a single
        event — the cornerstone of the 4-events-per-RPC hot path.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        sim = self.sim
        service = amount / self.rate
        start = max(sim.now, self._free_at, not_before)
        finish = start + service
        self._free_at = finish
        self.busy_time += service
        self.jobs += 1
        return Timeout(sim, finish - sim.now + extra_delay)

    def push(self, amount: float, not_before: float = 0.0) -> float:
        """Queue work without creating an event; returns the finish time.

        For fire-and-chain jobs whose completion the caller folds into a
        later ``submit(..., not_before=finish)`` on another lane.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        service = amount / self.rate
        start = max(self.sim.now, self._free_at, not_before)
        finish = start + service
        self._free_at = finish
        self.busy_time += service
        self.jobs += 1
        return finish

    def delay_for(self, amount: float) -> float:
        """Completion delay a job of ``amount`` would see if submitted now."""
        start = max(self.sim.now, self._free_at)
        return (start - self.sim.now) + amount / self.rate

    @property
    def backlog(self) -> float:
        """Seconds of queued work remaining from ``sim.now``."""
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the lane spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
