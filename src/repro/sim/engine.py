"""Generator-based discrete-event engine.

A :class:`Simulator` owns a priority queue of timestamped callbacks. A
:class:`Process` wraps a Python generator that *yields events*; when a
yielded event triggers, the generator is resumed with the event's value (or
has the event's exception thrown into it). ``yield from`` composes naturally,
so protocol code written as generators (see :mod:`repro.net.sansio`) runs
unchanged inside the simulation.

The engine is deterministic: events scheduled for the same timestamp fire in
scheduling order (zero-delay work goes through a FIFO "now" queue that is
drained before the time heap; delayed work is heap-ordered with a
monotonically increasing sequence number breaking ties).

Hot-path design notes (this engine executes hundreds of thousands of
callbacks per benchmark figure, so constant factors matter):

- zero-delay scheduling is a ``deque.append`` — no heap traffic;
- a :class:`Timeout` is a single heap entry that dispatches its callbacks
  directly when popped (no separate trigger-then-dispatch hop);
- process resumption uses bound-method callbacks — no per-step closures;
- :class:`Join` fans out over child generators with one counter and one
  event total, replacing a full ``Process`` + ``AllOf`` per child.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

SimGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for engine misuse (double trigger, yielding non-events, ...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupts."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence with a value or an exception.

    Callbacks receive the event itself. Events are created through their
    simulator so they can schedule their callbacks on trigger.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exc", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] | None = []
        self._triggered = False
        self._value: Any = None
        self._exc: BaseException | None = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exc

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run loop."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._callbacks is None:
            # Already dispatched: run on the next tick to keep ordering sane.
            self.sim._now.append(lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() expects an exception, got {exc!r}")
        self._trigger(None, exc)
        return self

    def _trigger(self, value: Any, exc: BaseException | None) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self._exc = exc
        self.sim._now.append(self._dispatch)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)
        if self._exc is not None and not self._defused and not callbacks:
            # An unwatched failure would vanish silently; surface it.
            raise self._exc


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay", "_tvalue")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__: timeouts are the engine's most-allocated
        # object (every lane job and link delay is one), so skip the
        # super() call.
        self.sim = sim
        self._callbacks = []
        self._triggered = False
        self._value = None
        self._exc = None
        self._defused = False
        self.delay = delay
        self._tvalue = value
        sim._schedule(delay, self._fire)

    def _fire(self) -> None:
        # Popped off the heap at exactly the due instant; the "now" queue is
        # empty at that point, so dispatching inline is equivalent to (and
        # half the bookkeeping of) a trigger-then-dispatch pair.
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = self._tvalue
        self._dispatch()


class Process(Event):
    """A running generator; as an Event it triggers on process completion."""

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: SimGenerator, name: str = "?") -> None:
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Event | None = None
        self.name = name
        sim._now.append(self._start)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self._waiting_on = None
        self.sim._now.append(lambda: self._throw(Interrupt(cause)))

    def _start(self) -> None:
        self._advance(False, None)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event._exc is None:
            self._advance(False, event._value)
        else:
            event.defuse()
            self._advance(True, event._exc)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._advance(True, exc)

    def _advance(self, throwing: bool, arg: Any) -> None:
        gen = self._gen
        try:
            target = gen.throw(arg) if throwing else gen.send(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)


class AllOf(Event):
    """Triggers when all child events have; value is their list of values.

    The first child failure fails the whole composition (remaining failures
    are defused so the run loop does not crash).
    """

    __slots__ = ("_pending", "_children")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            assert event._exc is not None
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._children])


class AnyOf(Event):
    """Triggers when the first child does; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(lambda event, i=i: self._on_child(i, event))

    def _on_child(self, index: int, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            assert event._exc is not None
            self.fail(event._exc)
            return
        self.succeed((index, event._value))


class _JoinChild:
    """Drives one generator of a :class:`Join`; not itself an event."""

    __slots__ = ("join", "index", "gen")

    def __init__(self, join: "Join", index: int, gen: SimGenerator) -> None:
        self.join = join
        self.index = index
        self.gen = gen

    def _on_event(self, event: Event) -> None:
        if event._exc is None:
            self._advance(False, event._value)
        else:
            event.defuse()
            self._advance(True, event._exc)

    def _advance(self, throwing: bool, arg: Any) -> None:
        gen = self.gen
        try:
            target = gen.throw(arg) if throwing else gen.send(arg)
        except StopIteration as stop:
            self.join._child_done(self.index, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - fail the join
            self.join._child_failed(exc)
            return
        if not isinstance(target, Event):
            self.join._child_failed(
                SimulationError(
                    f"join child {self.index} yielded {target!r}, expected an Event"
                )
            )
            return
        target.add_callback(self._on_event)


class Join(Event):
    """Counter-based fan-out/fan-in over child generators.

    Functionally equivalent to spawning one :class:`Process` per generator
    and gathering them with :class:`AllOf`, but allocates one event and one
    counter total: each child is a lightweight cursor that resumes its
    generator in place. Value is the list of child return values in
    argument order; the first child failure fails the join (later failures
    are swallowed, mirroring ``AllOf``'s defusing).
    """

    __slots__ = ("_results", "_pending")

    def __init__(self, sim: "Simulator", gens: Iterable[SimGenerator]) -> None:
        super().__init__(sim)
        children = [_JoinChild(self, i, g) for i, g in enumerate(gens)]
        self._results: list[Any] = [None] * len(children)
        self._pending = len(children)
        if not children:
            self.succeed([])
            return
        for child in children:
            child._advance(False, None)

    def _child_done(self, index: int, value: Any) -> None:
        if self._triggered:
            return
        self._results[index] = value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results)

    def _child_failed(self, exc: BaseException) -> None:
        if self._triggered:
            return  # first failure wins; later ones are moot
        self.fail(exc)


class Simulator:
    """The event loop: a FIFO "now" queue plus a heap of timed callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._now: deque[Callable[[], None]] = deque()
        self._seq = 0
        self._processes_started = 0
        #: total callbacks executed (engine-load counter for the perf harness)
        self.events_processed = 0

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay == 0.0:
            self._now.append(fn)
            return
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn))

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: SimGenerator, name: str | None = None) -> Process:
        self._processes_started += 1
        return Process(self, gen, name or f"proc-{self._processes_started}")

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def join(self, gens: Iterable[SimGenerator]) -> Join:
        return Join(self, gens)

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        """Execute the next scheduled callback, advancing the clock."""
        now_q = self._now
        if now_q:
            fn = now_q.popleft()
        else:
            when, _, fn = heapq.heappop(self._queue)
            self.now = when
        self.events_processed += 1
        fn()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        Returns the event's value when ``until`` is an Event.
        """
        now_q = self._now
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        try:
            if isinstance(until, Event):
                stop = until
                while not stop._triggered:
                    if now_q:
                        fn = now_q.popleft()
                    elif queue:
                        when, _, fn = pop(queue)
                        self.now = when
                    else:
                        raise SimulationError(
                            "simulation queue drained before the awaited event fired"
                        )
                    executed += 1
                    fn()
                return stop.value
            deadline = float("inf") if until is None else float(until)
            while True:
                if now_q:
                    fn = now_q.popleft()
                elif queue and queue[0][0] <= deadline:
                    when, _, fn = pop(queue)
                    self.now = when
                else:
                    break
                executed += 1
                fn()
            if until is not None:
                self.now = max(self.now, deadline)
            return None
        finally:
            self.events_processed += executed
