"""Cluster and network model calibrated to the paper's testbed.

The evaluation platform (paper §V.B): 50 nodes of the Grid'5000 Rennes
cluster, x86_64, 4 GB RAM, 1 Gbit/s intracluster Ethernet — measured
117.5 MB/s for TCP sockets with MTU 1500 — and 0.1 ms latency.

Model structure:

- every :class:`SimNode` has a CPU lane (rate 1.0: jobs are expressed in
  seconds of work) and full-duplex NIC lanes (``tx``/``rx``, rate in
  bytes/second);
- a remote procedure call is: client CPU (marshal + per-wire-RPC overhead)
  → client NIC tx → link latency → server NIC rx → server CPU (unmarshal +
  per-sub-call service time) → response along the reverse path;
- several sub-calls to the same destination ride one wire RPC (the paper's
  custom aggregating RPC framework, §V.A), paying the fixed overhead once.

All calibration constants live in :class:`ClusterSpec`; the defaults were
fitted so the protocol reproduces the *shape and magnitude* of Figures
3(a-c) — see EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Generator

from repro.sim.engine import Event, Simulator
from repro.sim.resources import RateLane

MB = 1 << 20


def _default_service_fixed() -> dict[str, float]:
    # Fixed per-sub-call service CPU on the destination node, seconds.
    return {
        # Metadata providers sit on a DHT (BambooDHT in the paper): puts
        # carry an extra asynchronous completion latency (see
        # _default_service_async) on top of this CPU cost.
        "meta.put_node": 80e-6,
        "meta.get_node": 45e-6,
        # Data providers store/serve whole pages in RAM.
        "data.put_page": 40e-6,
        "data.get_page": 30e-6,
        # Version manager bookkeeping: version assignment walks the patch
        # history tree to precompute border references.
        "vm.get_latest": 10e-6,
        "vm.assign": 120e-6,
        "vm.complete": 20e-6,
        "vm.alloc": 20e-6,
        # Provider manager: pick providers for the fresh pages of a write.
        "pm.get_providers": 15e-6,
        "pm.register": 10e-6,
    }


def _default_client_reply_cpu() -> dict[str, float]:
    # Client-side CPU consumed to process each sub-call reply, seconds.
    # Tree-node processing dominates READs (paper §V.C: "the main limiting
    # factor is actually the performance of the client's processing power").
    return {
        "meta.get_node": 95e-6,
        "meta.put_node": 4e-6,
        "data.get_page": 12e-6,
        "data.put_page": 4e-6,
    }


def _default_service_async() -> dict[str, float]:
    # Pure per-sub-call completion latency on the destination that does NOT
    # occupy its CPU lane — models an asynchronous storage backend (the
    # paper's DHT puts are async: routing + replication acknowledgement).
    # Being a delay rather than lane occupancy, it slows a single writer's
    # aggregated put batch (Fig 3b's provider-count effect) without letting
    # twenty concurrent writers queue behind each other (Fig 3c stays flat).
    return {
        "meta.put_node": 120e-6,
    }


def _default_compute() -> dict[str, float]:
    # Pure client-side computation steps declared by the protocol, priced
    # per unit (seconds/unit).
    return {
        # Building one fresh metadata tree node (hash keys, fill record).
        "client.build_node": 95e-6,
        # Assembling one page buffer for a write / scattering on a read.
        "client.touch_page": 6e-6,
    }


@dataclass(frozen=True)
class ClusterSpec:
    """Calibration constants for the simulated cluster."""

    latency: float = 0.1e-3  # one-way link latency, seconds
    bandwidth: float = 117.5 * MB  # NIC rate, bytes/second (measured TCP)
    rpc_overhead: float = 25e-6  # fixed CPU per wire RPC, each side
    per_call_marshal: float = 3e-6  # marginal CPU per aggregated sub-call
    conn_mgmt: float = 45e-6  # client CPU per destination per batch
    wire_header: int = 96  # bytes of envelope per wire RPC
    per_call_header: int = 32  # bytes of framing per aggregated sub-call
    # Per-byte end-host costs folded into the effective NIC rates (a
    # CPU-bound endpoint runs below wire speed): effective tx rate =
    # 1 / (1/bandwidth + tx_byte_cpu), likewise rx. Client machines do the
    # application-side copying/deserialization and are the CPU-bound side
    # (this reproduces the paper's ~85 MB/s cached-read ceiling against a
    # 117.5 MB/s wire); providers are dedicated RAM stores and run close
    # to wire speed.
    client_tx_byte_cpu: float = 1.0e-9
    client_rx_byte_cpu: float = 3.1e-9
    server_tx_byte_cpu: float = 0.3e-9
    server_rx_byte_cpu: float = 0.3e-9
    server_byte_cpu: float = 0.8e-9  # request/response handling CPU per byte
    service_async: dict[str, float] = field(default_factory=_default_service_async)
    #: stream sub-calls to one destination in a single wire RPC (paper
    #: §V.A); False = naive one-RPC-per-call (ablation C)
    aggregate: bool = True

    def tx_rate(self, role: str) -> float:
        """Effective transmit rate for a node role (client/server)."""
        byte_cpu = self.client_tx_byte_cpu if role == "client" else self.server_tx_byte_cpu
        return 1.0 / (1.0 / self.bandwidth + byte_cpu)

    def rx_rate(self, role: str) -> float:
        """Effective receive rate for a node role (client/server)."""
        byte_cpu = self.client_rx_byte_cpu if role == "client" else self.server_rx_byte_cpu
        return 1.0 / (1.0 / self.bandwidth + byte_cpu)

    def async_latency(self, method: str) -> float:
        return self.service_async.get(method, 0.0)
    service_fixed: dict[str, float] = field(default_factory=_default_service_fixed)
    client_reply_cpu: dict[str, float] = field(default_factory=_default_client_reply_cpu)
    compute: dict[str, float] = field(default_factory=_default_compute)

    #: default per-sub-call costs for methods absent from the tables
    DEFAULT_SERVICE_TIME = 25e-6
    DEFAULT_REPLY_CPU = 2e-6

    def __post_init__(self) -> None:
        # Per-method cost rows, resolved once and memoized: the RPC hot path
        # pays one dict lookup per sub-call instead of three.
        object.__setattr__(self, "_cost_cache", {})

    def method_costs(self, method: str) -> tuple[float, float, float]:
        """``(service CPU, client reply CPU, async latency)`` for a method."""
        cache = self._cost_cache
        costs = cache.get(method)
        if costs is None:
            costs = (
                self.service_fixed.get(method, self.DEFAULT_SERVICE_TIME),
                self.client_reply_cpu.get(method, self.DEFAULT_REPLY_CPU),
                self.service_async.get(method, 0.0),
            )
            cache[method] = costs
        return costs

    def service_time(self, method: str) -> float:
        return self.service_fixed.get(method, self.DEFAULT_SERVICE_TIME)

    def reply_cpu(self, method: str) -> float:
        return self.client_reply_cpu.get(method, self.DEFAULT_REPLY_CPU)

    def compute_cost(self, key: str, units: float) -> float:
        try:
            return self.compute[key] * units
        except KeyError:
            raise KeyError(f"unknown compute cost key {key!r}") from None

    def with_overrides(self, **kwargs: Any) -> "ClusterSpec":
        """A copy with some constants replaced (used by ablation benches)."""
        return replace(self, **kwargs)


class SimNode:
    """One physical node: a CPU lane plus full-duplex NIC lanes."""

    __slots__ = ("name", "sim", "role", "cpu", "tx", "rx")

    def __init__(
        self, sim: Simulator, name: str, spec: ClusterSpec, role: str = "server"
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError(f"role must be 'client' or 'server', got {role!r}")
        self.name = name
        self.sim = sim
        self.role = role
        self.cpu = RateLane(sim, 1.0)  # work expressed directly in seconds
        self.tx = RateLane(sim, spec.tx_rate(role))
        self.rx = RateLane(sim, spec.rx_rate(role))

    def __repr__(self) -> str:
        return f"<SimNode {self.name} ({self.role})>"


class Network:
    """A set of nodes plus the message-timing primitive."""

    def __init__(self, sim: Simulator, spec: ClusterSpec | None = None) -> None:
        self.sim = sim
        self.spec = spec or ClusterSpec()
        self.nodes: dict[str, SimNode] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def add_node(self, name: str, role: str = "server") -> SimNode:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = SimNode(self.sim, name, self.spec, role)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> SimNode:
        return self.nodes[name]

    def transfer(
        self, src: SimNode, dst: SimNode, nbytes: int
    ) -> Generator[Event, Any, None]:
        """One-way message: tx serialization, latency, rx serialization.

        Loopback (src is dst) costs only a small in-memory handoff.
        """
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src is dst:
            yield self.sim.timeout(1e-6)
            return
        # tx serialization and link latency ride one scheduled event; the
        # receive side is still submitted at the arrival instant.
        yield src.tx.submit(nbytes, self.spec.latency)
        yield dst.rx.submit(nbytes)
