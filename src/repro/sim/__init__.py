"""Discrete-event cluster simulator.

The paper's evaluation ran on 50 nodes of the Grid'5000 Rennes cluster
(1 Gbit/s Ethernet, measured 117.5 MB/s for TCP, 0.1 ms latency). A faithful
wall-clock reproduction in Python is impossible under the GIL, so the
benchmarks run the *same protocol code* on a discrete-event simulation of
that cluster: virtual time advances only through modeled costs (CPU service,
RPC overhead, NIC serialization, link latency), making throughput numbers a
function of the protocol rather than of the host interpreter.

Layers:

- :mod:`repro.sim.engine` — generator-based event loop (processes, timeouts,
  event composition), in the style of SimPy but self-contained.
- :mod:`repro.sim.resources` — FIFO resources and serialized rate lanes used
  to model CPUs and NICs.
- :mod:`repro.sim.network` — cluster/node/NIC model plus the calibrated
  :class:`~repro.sim.network.ClusterSpec` constants.
"""

from repro.sim.engine import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import RateLane, Resource
from repro.sim.network import ClusterSpec, Network, SimNode

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "RateLane",
    "Resource",
    "ClusterSpec",
    "Network",
    "SimNode",
]
