"""End-to-end supernova campaign over the blob service.

The workflow of paper §I on top of the versioned blob:

1. **Observe** — telescopes render each epoch's tiles and WRITE them into
   the sky blob (page-aligned tile slots). Multiple telescopes write
   concurrently (write/write concurrency); each epoch's completion version
   is recorded, pinning that epoch as an immutable snapshot.
2. **Scan** — analysis workers READ tile snapshots (pinned versions, so
   scanning proceeds while newer epochs are being written: read/write
   concurrency), difference against the reference epoch and extract
   candidates.
3. **Track & classify** — candidates are clustered into per-position
   tracks, light curves extracted across epoch snapshots, and each track
   classified supernova / variable / noise.
4. **Evaluate** — against the synthetic ground truth: precision and recall
   over the injected supernovae.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.client import BlobClient
from repro.sky.detect import Candidate, detect_sources, difference_image
from repro.sky.lightcurve import (
    SUPERNOVA,
    classify_lightcurve,
    extract_flux,
)
from repro.sky.mapping import SkyMapping
from repro.sky.skymodel import SkyModel

Tile = tuple[int, int]


@dataclass
class Track:
    """Candidate detections clustered at one sky position."""

    tile: Tile
    x: float
    y: float
    hits: int = 1
    label: str = ""
    curve: np.ndarray | None = None

    def absorb(self, cand: Candidate) -> None:
        """Flux-free running mean of the position."""
        self.x = (self.x * self.hits + cand.x) / (self.hits + 1)
        self.y = (self.y * self.hits + cand.y) / (self.hits + 1)
        self.hits += 1


@dataclass
class CampaignReport:
    """Outcome of one campaign."""

    epochs: int
    epoch_versions: list[int]
    tracks: list[Track]
    true_supernovae: int
    matched_supernovae: int
    claimed_supernovae: int
    bytes_written: int = 0
    bytes_read: int = 0

    @property
    def recall(self) -> float:
        return (
            self.matched_supernovae / self.true_supernovae
            if self.true_supernovae
            else 1.0
        )

    @property
    def precision(self) -> float:
        return (
            self.matched_supernovae / self.claimed_supernovae
            if self.claimed_supernovae
            else 1.0
        )

    def supernova_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.label == SUPERNOVA]


class SupernovaPipeline:
    """Drives a campaign against a deployment's blob service."""

    def __init__(
        self,
        model: SkyModel,
        client: BlobClient,
        pagesize: int = 1 << 16,
        match_radius: float = 3.0,
        threshold_sigma: float = 5.0,
    ) -> None:
        self.model = model
        self.client = client
        self.mapping = SkyMapping(model.spec, pagesize)
        self.match_radius = match_radius
        self.threshold_sigma = threshold_sigma
        self.blob_id = client.alloc(self.mapping.blob_size, pagesize)
        self.epoch_versions: list[int] = []
        self.bytes_written = 0
        self.bytes_read = 0

    # -- observe -----------------------------------------------------------

    def observe_epoch(
        self, epoch: int, telescopes: list[BlobClient] | None = None
    ) -> int:
        """WRITE all tiles of one epoch; returns the pinned epoch version.

        With several telescope clients the tile set is partitioned among
        them and written from concurrent threads (each telescope is an
        independent writer, as in the paper's multi-telescope scenario).
        """
        telescopes = telescopes or [self.client]
        tiles = self.mapping.all_tiles()
        shares: list[list[Tile]] = [
            tiles[i :: len(telescopes)] for i in range(len(telescopes))
        ]

        def observe(client: BlobClient, share: list[Tile]) -> int:
            written = 0
            for tile in share:
                image = self.model.render_epoch(tile, epoch)
                data = self.mapping.encode_tile(image)
                client.write(self.blob_id, data, self.mapping.tile_offset(tile))
                written += len(data)
            return written

        if len(telescopes) == 1:
            self.bytes_written += observe(telescopes[0], shares[0])
        else:
            sums = [0] * len(telescopes)

            def worker(i: int) -> None:
                sums[i] = observe(telescopes[i], shares[i])

            threads = [
                threading.Thread(target=worker, args=(i,), name=f"telescope-{i}")
                for i in range(len(telescopes))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            self.bytes_written += sum(sums)
        version = self.client.latest(self.blob_id)
        self.epoch_versions.append(version)
        return version

    # -- read snapshots ------------------------------------------------------

    def read_tile(self, tile: Tile, epoch: int, client: BlobClient | None = None) -> np.ndarray:
        """READ a tile image from the pinned snapshot of an epoch."""
        client = client or self.client
        version = self.epoch_versions[epoch]
        result = client.read(
            self.blob_id,
            self.mapping.tile_offset(tile),
            self.mapping.tile_slot_bytes,
            version=version,
        )
        assert result.data is not None
        self.bytes_read += len(result.data)
        return self.mapping.decode_tile(result.data)

    # -- scan ----------------------------------------------------------------

    def scan_epoch(
        self, epoch: int, workers: list[BlobClient] | None = None
    ) -> dict[Tile, list[Candidate]]:
        """Difference epoch vs the reference (epoch 0) and extract candidates.

        Tiles are independent — "the analysis itself is an embarrassingly
        parallel problem" (§I) — so with several worker clients the scan
        fans out over threads, reading pinned snapshots while later epochs
        may still be written.
        """
        workers = workers or [self.client]
        tiles = self.mapping.all_tiles()
        out: dict[Tile, list[Candidate]] = {}
        lock = threading.Lock()

        def scan(client: BlobClient, share: list[Tile]) -> None:
            for tile in share:
                reference = self.read_tile(tile, 0, client)
                current = self.read_tile(tile, epoch, client)
                diff = difference_image(current, reference)
                cands = detect_sources(diff, self.threshold_sigma)
                with lock:
                    out[tile] = cands

        if len(workers) == 1:
            scan(workers[0], tiles)
        else:
            shares = [tiles[i :: len(workers)] for i in range(len(workers))]
            threads = [
                threading.Thread(
                    target=scan, args=(workers[i], shares[i]), name=f"scanner-{i}"
                )
                for i in range(len(workers))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return out

    # -- campaign -----------------------------------------------------------------

    def run_campaign(
        self,
        epochs: int,
        telescopes: list[BlobClient] | None = None,
        workers: list[BlobClient] | None = None,
    ) -> CampaignReport:
        """Observe all epochs, scan, track, classify, evaluate."""
        tracks: list[Track] = []
        for epoch in range(epochs):
            self.observe_epoch(epoch, telescopes)
            if epoch == 0:
                continue
            for tile, cands in self.scan_epoch(epoch, workers).items():
                for cand in cands:
                    self._absorb(tracks, tile, cand)
        self._classify_tracks(tracks, epochs)
        return self._evaluate(tracks, epochs)

    def _absorb(self, tracks: list[Track], tile: Tile, cand: Candidate) -> None:
        for track in tracks:
            if track.tile == tile and cand.distance_to(track.x, track.y) <= self.match_radius:
                track.absorb(cand)
                return
        tracks.append(Track(tile=tile, x=cand.x, y=cand.y))

    def _classify_tracks(self, tracks: list[Track], epochs: int) -> None:
        # photometric noise of an aperture sum: sigma * aperture diameter
        aperture = 4
        noise_floor = self.model.spec.noise_sigma * (2 * aperture + 1) * 2.0
        reference_cache: dict[Tile, np.ndarray] = {}
        for track in tracks:
            ref = reference_cache.setdefault(
                track.tile, self.read_tile(track.tile, 0).astype(np.float64)
            )
            curve = np.empty(epochs)
            for epoch in range(epochs):
                img = self.read_tile(track.tile, epoch)
                diff = img.astype(np.float64) - ref
                curve[epoch] = extract_flux(diff, track.x, track.y, aperture)
            track.curve = curve
            track.label = classify_lightcurve(curve, noise_floor)

    def _evaluate(self, tracks: list[Track], epochs: int) -> CampaignReport:
        claimed = [t for t in tracks if t.label == SUPERNOVA]
        matched = 0
        for sn in self.model.supernovae:
            hit = any(
                t.tile == sn.tile
                and float(np.hypot(t.x - sn.x, t.y - sn.y)) <= self.match_radius
                for t in claimed
            )
            if hit:
                matched += 1
        return CampaignReport(
            epochs=epochs,
            epoch_versions=list(self.epoch_versions),
            tracks=tracks,
            true_supernovae=len(self.model.supernovae),
            matched_supernovae=matched,
            claimed_supernovae=len(claimed),
            bytes_written=self.bytes_written,
            bytes_read=self.bytes_read,
        )
