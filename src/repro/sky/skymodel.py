"""Synthetic sky: star fields, supernovae, variable stars, epoch rendering.

Every tile's base star field is a pure function of ``(seed, tile)``; every
epoch adds fresh (seeded) sensor noise plus the time-dependent flux of any
transient events. Rendering is vectorized NumPy: stars are Gaussian PSF
splats accumulated into the tile, clipped to the uint16 dynamic range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, pi, sin

import numpy as np

from repro.util.rng import substream


@dataclass(frozen=True)
class SkySpec:
    """Geometry and statistics of the synthetic sky."""

    tiles_x: int = 4
    tiles_y: int = 4
    tile_height: int = 128  # pixels
    tile_width: int = 256  # pixels (128 x 256 x uint16 = 64 KB = 1 page)
    stars_per_tile: int = 80
    star_flux_min: float = 300.0
    star_flux_max: float = 12_000.0
    psf_sigma: float = 1.6  # pixels
    sky_background: float = 180.0
    noise_sigma: float = 12.0
    seed: int = 7

    @property
    def tile_pixels(self) -> int:
        return self.tile_height * self.tile_width

    @property
    def tile_bytes(self) -> int:
        return self.tile_pixels * 2  # uint16

    @property
    def n_tiles(self) -> int:
        return self.tiles_x * self.tiles_y


@dataclass(frozen=True)
class SupernovaEvent:
    """A transient with the classic fast-rise / slow-decay light curve."""

    tile: tuple[int, int]
    x: float  # column, pixels
    y: float  # row, pixels
    t0: float  # epoch of peak
    peak_flux: float
    rise: float = 1.2  # epochs (gaussian rise width)
    decay: float = 3.5  # epochs (exponential decay constant)

    def flux(self, t: float) -> float:
        if t <= self.t0:
            return self.peak_flux * exp(-((t - self.t0) ** 2) / (2 * self.rise**2))
        return self.peak_flux * exp(-(t - self.t0) / self.decay)


@dataclass(frozen=True)
class VariableStar:
    """A periodic variable — the classifier's confuser (paper §I)."""

    tile: tuple[int, int]
    x: float
    y: float
    base_flux: float
    amplitude: float
    period: float  # epochs
    phase: float = 0.0

    def flux(self, t: float) -> float:
        return self.base_flux + self.amplitude * sin(
            2 * pi * t / self.period + self.phase
        )


@dataclass
class SkyModel:
    """Deterministic generator of tile images over epochs."""

    spec: SkySpec = field(default_factory=SkySpec)
    supernovae: list[SupernovaEvent] = field(default_factory=list)
    variables: list[VariableStar] = field(default_factory=list)

    # -- event population -------------------------------------------------

    @classmethod
    def with_random_events(
        cls,
        spec: SkySpec,
        n_supernovae: int,
        n_variables: int,
        epochs: int,
    ) -> "SkyModel":
        """Scatter events uniformly over tiles and time (deterministic)."""
        rng = substream(spec.seed, "events")
        margin = 8  # keep events away from tile edges for clean photometry

        def random_pos() -> tuple[tuple[int, int], float, float]:
            tx = int(rng.integers(0, spec.tiles_x))
            ty = int(rng.integers(0, spec.tiles_y))
            x = float(rng.uniform(margin, spec.tile_width - margin))
            y = float(rng.uniform(margin, spec.tile_height - margin))
            return (tx, ty), x, y

        supernovae = []
        for _ in range(n_supernovae):
            tile, x, y = random_pos()
            supernovae.append(
                SupernovaEvent(
                    tile=tile,
                    x=x,
                    y=y,
                    t0=float(rng.uniform(1.0, max(1.5, epochs - 2.0))),
                    peak_flux=float(rng.uniform(2_500.0, 9_000.0)),
                    rise=float(rng.uniform(0.8, 1.6)),
                    decay=float(rng.uniform(2.5, 5.0)),
                )
            )
        variables = []
        for _ in range(n_variables):
            tile, x, y = random_pos()
            variables.append(
                VariableStar(
                    tile=tile,
                    x=x,
                    y=y,
                    base_flux=float(rng.uniform(1_200.0, 4_000.0)),
                    amplitude=float(rng.uniform(800.0, 2_500.0)),
                    period=float(rng.uniform(2.0, 4.0)),
                    phase=float(rng.uniform(0.0, 2 * pi)),
                )
            )
        return cls(spec=spec, supernovae=supernovae, variables=variables)

    # -- rendering -----------------------------------------------------------

    def base_field(self, tile: tuple[int, int]) -> np.ndarray:
        """The static star field of a tile (float64, no noise)."""
        spec = self.spec
        rng = substream(spec.seed, "field", tile)
        img = np.full((spec.tile_height, spec.tile_width), spec.sky_background)
        n = spec.stars_per_tile
        xs = rng.uniform(0, spec.tile_width, size=n)
        ys = rng.uniform(0, spec.tile_height, size=n)
        # log-uniform fluxes: many faint stars, few bright ones
        fluxes = np.exp(
            rng.uniform(
                np.log(spec.star_flux_min), np.log(spec.star_flux_max), size=n
            )
        )
        for x, y, f in zip(xs, ys, fluxes):
            _splat(img, x, y, f, spec.psf_sigma)
        return img

    def render_epoch(self, tile: tuple[int, int], epoch: int) -> np.ndarray:
        """One observation: base field + transients(t) + fresh noise (uint16)."""
        spec = self.spec
        img = self.base_field(tile).copy()
        for sn in self.supernovae:
            if sn.tile == tile:
                f = sn.flux(float(epoch))
                if f > 1e-3:
                    _splat(img, sn.x, sn.y, f, spec.psf_sigma)
        for var in self.variables:
            if var.tile == tile:
                _splat(img, var.x, var.y, max(0.0, var.flux(float(epoch))), spec.psf_sigma)
        noise_rng = substream(spec.seed, "noise", tile, epoch)
        img += noise_rng.normal(0.0, spec.noise_sigma, size=img.shape)
        return np.clip(img, 0, np.iinfo(np.uint16).max).astype(np.uint16)

    def events_in_tile(self, tile: tuple[int, int]) -> list[object]:
        return [e for e in (*self.supernovae, *self.variables) if e.tile == tile]


def _splat(img: np.ndarray, x: float, y: float, flux: float, sigma: float) -> None:
    """Accumulate a Gaussian PSF of total ``flux`` at (x, y), in place."""
    if flux <= 0:
        return
    h, w = img.shape
    r = max(2, int(4 * sigma))
    x0, x1 = max(0, int(x) - r), min(w, int(x) + r + 1)
    y0, y1 = max(0, int(y) - r), min(h, int(y) + r + 1)
    if x0 >= x1 or y0 >= y1:
        return
    ys = np.arange(y0, y1)[:, None]
    xs = np.arange(x0, x1)[None, :]
    psf = np.exp(-((xs - x) ** 2 + (ys - y) ** 2) / (2 * sigma**2))
    psf *= flux / (2 * pi * sigma**2)
    img[y0:y1, x0:x1] += psf
