"""Light-curve extraction and classification.

Confirming a supernova "requires [analyzing] the light curve and spectrum
of each potential candidate" (paper §I). With epoch images available as
blob versions, a candidate's light curve is aperture photometry at its
position across versions; classification separates the one-shot
rise-then-decay supernova signature from periodic variables and noise.

The classifier is feature-based and deterministic: amplitude significance,
number of significant peaks, and rise/decay asymmetry around the global
maximum. It is intentionally simple — the reproduction target is the data
path, not astronomy state-of-the-art — but it is honest: tested on
synthetic truth with precision/recall reported by the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SUPERNOVA = "supernova"
VARIABLE = "variable"
NOISE = "noise"


def extract_flux(
    image: np.ndarray, x: float, y: float, aperture: int = 4
) -> float:
    """Background-subtracted aperture photometry at (x, y)."""
    h, w = image.shape
    x0, x1 = max(0, int(x) - aperture), min(w, int(x) + aperture + 1)
    y0, y1 = max(0, int(y) - aperture), min(h, int(y) + aperture + 1)
    patch = image[y0:y1, x0:x1].astype(np.float64)
    background = float(np.median(image.astype(np.float64)))
    return float(patch.sum() - background * patch.size)


@dataclass(frozen=True)
class CurveFeatures:
    amplitude: float
    significance: float
    n_peaks: int
    rise_epochs: float
    decay_epochs: float

    @property
    def asymmetry(self) -> float:
        """Decay/rise duration ratio; supernovae decay slower than they rise."""
        return self.decay_epochs / max(self.rise_epochs, 0.5)


def curve_features(curve: np.ndarray, noise_floor: float) -> CurveFeatures:
    """Extract classification features from a flux-vs-epoch series."""
    curve = np.asarray(curve, dtype=np.float64)
    base = float(np.min(curve))
    detrended = curve - base
    amplitude = float(np.max(detrended))
    significance = amplitude / max(noise_floor, 1e-9)
    half = amplitude / 2.0
    above = detrended >= half
    # count distinct half-max excursions (runs of `above`)
    n_peaks = int(np.sum(above[1:] & ~above[:-1]) + (1 if above[0] else 0))
    peak_idx = int(np.argmax(detrended))
    rise = _runs_from(above, peak_idx, step=-1)
    decay = _runs_from(above, peak_idx, step=+1)
    return CurveFeatures(
        amplitude=amplitude,
        significance=significance,
        n_peaks=n_peaks,
        rise_epochs=rise,
        decay_epochs=decay,
    )


def _runs_from(above: np.ndarray, start: int, step: int) -> float:
    """Epochs the curve stays above half-max walking from the peak."""
    count = 0
    i = start
    while 0 <= i < len(above) and above[i]:
        count += 1
        i += step
    return float(count)


def classify_lightcurve(
    curve: np.ndarray,
    noise_floor: float,
    min_significance: float = 5.0,
) -> str:
    """``supernova`` / ``variable`` / ``noise`` for a flux-vs-epoch series."""
    feats = curve_features(np.asarray(curve, dtype=np.float64), noise_floor)
    if feats.significance < min_significance:
        return NOISE
    if feats.n_peaks >= 2:
        return VARIABLE  # periodic: several half-max excursions
    # One peak: supernovae decay slower than they rise; a symmetric or
    # rise-dominated single excursion within a short window is more likely
    # one phase of a slow periodic variable.
    if feats.asymmetry >= 1.0:
        return SUPERNOVA
    return VARIABLE
