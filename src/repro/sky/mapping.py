"""2D sky ↔ 1D blob mapping (paper §I, "Global view").

"Let us consider a very simple abstraction of this problem, in which the
view of the sky is a very long string of bytes (blob), obtained by
concatenating the images in binary form. Assuming all images have a fixed
size, a specific part of the sky is accessible by providing the
corresponding offset in the string. A simple transformation from
two-dimensional to unidimensional coordinates is sufficient."

Tiles are laid out row-major; each tile slot is padded to a whole number of
pages so every tile write is page-aligned (no read-modify-write on the hot
path). Epochs map to blob *versions*: reading the sky at epoch ``e`` means
reading at the version published when epoch ``e``'s last tile landed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.sky.skymodel import SkySpec
from repro.util.bits import align_up, ceil_pow2
from repro.util.intervals import Interval


@dataclass(frozen=True)
class SkyMapping:
    """Byte layout of the sky blob."""

    spec: SkySpec
    pagesize: int

    def __post_init__(self) -> None:
        if self.tile_slot_bytes % self.pagesize:
            raise ConfigError("internal: tile slot not page aligned")

    # -- layout ------------------------------------------------------------

    @property
    def tile_slot_bytes(self) -> int:
        """Bytes reserved per tile: image bytes padded up to whole pages."""
        return align_up(self.spec.tile_bytes, self.pagesize)

    @property
    def used_bytes(self) -> int:
        return self.spec.n_tiles * self.tile_slot_bytes

    @property
    def blob_size(self) -> int:
        """Smallest power-of-two blob holding every tile slot."""
        return ceil_pow2(max(self.used_bytes, self.pagesize))

    def tile_offset(self, tile: tuple[int, int]) -> int:
        tx, ty = tile
        if not (0 <= tx < self.spec.tiles_x and 0 <= ty < self.spec.tiles_y):
            raise ConfigError(f"tile {tile} outside sky grid")
        return (ty * self.spec.tiles_x + tx) * self.tile_slot_bytes

    def tile_interval(self, tile: tuple[int, int]) -> Interval:
        return Interval(self.tile_offset(tile), self.tile_slot_bytes)

    def tile_of_offset(self, offset: int) -> tuple[int, int]:
        index = offset // self.tile_slot_bytes
        if not 0 <= index < self.spec.n_tiles:
            raise ConfigError(f"offset {offset} outside sky layout")
        return (index % self.spec.tiles_x, index // self.spec.tiles_x)

    def all_tiles(self) -> list[tuple[int, int]]:
        return [
            (tx, ty)
            for ty in range(self.spec.tiles_y)
            for tx in range(self.spec.tiles_x)
        ]

    # -- image codecs -------------------------------------------------------

    def encode_tile(self, image: np.ndarray) -> bytes:
        """Image → padded page-aligned bytes for a WRITE."""
        expected = (self.spec.tile_height, self.spec.tile_width)
        if image.shape != expected or image.dtype != np.uint16:
            raise ConfigError(
                f"tile image must be uint16 {expected}, got "
                f"{image.dtype} {image.shape}"
            )
        raw = image.tobytes()
        return raw + bytes(self.tile_slot_bytes - len(raw))

    def decode_tile(self, data: bytes) -> np.ndarray:
        """Bytes from a READ → image (padding discarded)."""
        if len(data) < self.spec.tile_bytes:
            raise ConfigError(
                f"need {self.spec.tile_bytes} bytes to decode a tile, got {len(data)}"
            )
        flat = np.frombuffer(data[: self.spec.tile_bytes], dtype=np.uint16)
        return flat.reshape(self.spec.tile_height, self.spec.tile_width)
