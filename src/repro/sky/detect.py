"""Transient detection: image differencing + source extraction.

The survey technique the paper describes (§I): subtract a reference epoch
from the current epoch; anything significantly brighter is a *variable
object* and becomes a candidate. Source extraction is a classic two-pass:
robust background statistics (median/MAD) → threshold mask → connected
component labeling (own implementation: BFS flood fill on the mask, tested
against ``scipy.ndimage.label``) → flux-weighted centroids.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Candidate:
    """One detected variable object within a tile."""

    x: float  # flux-weighted centroid, columns
    y: float  # flux-weighted centroid, rows
    flux: float  # summed difference flux
    npix: int  # component size
    peak: float  # brightest pixel of the component

    def distance_to(self, x: float, y: float) -> float:
        return float(np.hypot(self.x - x, self.y - y))


def difference_image(current: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Signed difference in float64 (uint16 inputs would wrap)."""
    if current.shape != reference.shape:
        raise ValueError(
            f"epoch shapes differ: {current.shape} vs {reference.shape}"
        )
    return current.astype(np.float64) - reference.astype(np.float64)


def robust_sigma(image: np.ndarray) -> float:
    """Noise estimate via the median absolute deviation (outlier-immune)."""
    med = float(np.median(image))
    mad = float(np.median(np.abs(image - med)))
    return 1.4826 * mad if mad > 0 else float(np.std(image)) or 1.0


def label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """4-connected component labeling (1..n); 0 is background.

    BFS flood fill — intentionally dependency-free; equivalence with
    ``scipy.ndimage.label`` is asserted in the test suite.
    """
    labels = np.zeros(mask.shape, dtype=np.int32)
    h, w = mask.shape
    current = 0
    for sy, sx in zip(*np.nonzero(mask)):
        if labels[sy, sx]:
            continue
        current += 1
        queue: deque[tuple[int, int]] = deque([(int(sy), int(sx))])
        labels[sy, sx] = current
        while queue:
            y, x = queue.popleft()
            for ny, nx in ((y - 1, x), (y + 1, x), (y, x - 1), (y, x + 1)):
                if 0 <= ny < h and 0 <= nx < w and mask[ny, nx] and not labels[ny, nx]:
                    labels[ny, nx] = current
                    queue.append((ny, nx))
    return labels, current


def detect_sources(
    diff: np.ndarray,
    threshold_sigma: float = 5.0,
    min_pixels: int = 4,
) -> list[Candidate]:
    """Extract positive variable sources from a difference image."""
    sigma = robust_sigma(diff)
    baseline = float(np.median(diff))
    mask = diff > baseline + threshold_sigma * sigma
    labels, n = label_components(mask)
    out: list[Candidate] = []
    if n == 0:
        return out
    signal = diff - baseline
    for comp in range(1, n + 1):
        ys, xs = np.nonzero(labels == comp)
        if len(ys) < min_pixels:
            continue
        fluxes = signal[ys, xs]
        total = float(fluxes.sum())
        if total <= 0:
            continue
        out.append(
            Candidate(
                x=float((xs * fluxes).sum() / total),
                y=float((ys * fluxes).sum() / total),
                flux=total,
                npix=int(len(ys)),
                peak=float(fluxes.max()),
            )
        )
    out.sort(key=lambda c: -c.flux)
    return out


def match_candidate(
    candidates: list[Candidate], x: float, y: float, radius: float = 3.0
) -> Candidate | None:
    """Nearest candidate within ``radius`` pixels of a true position."""
    best: Candidate | None = None
    best_d = radius
    for cand in candidates:
        d = cand.distance_to(x, y)
        if d <= best_d:
            best, best_d = cand, d
    return best
