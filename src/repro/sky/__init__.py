"""Supernova detection: the paper's motivating application (§I).

A telescope photographs the same sky regions at regular intervals; epochs
are compared to find variable objects, and light-curve analysis separates
supernovae from other variables. The whole sky is one huge blob — tiles
concatenated in binary form, a 2D→1D mapping — and every epoch is a new
*version*: telescopes WRITE new tiles while analysis READs pinned earlier
snapshots, exercising exactly the read/write concurrency the system is
built for.

Real survey imagery is proprietary/huge; :mod:`repro.sky.skymodel`
synthesizes statistically realistic star fields with injected supernovae
and variable stars (ground truth known), which is what detection quality
metrics need (see DESIGN.md substitutions).
"""

from repro.sky.skymodel import SkySpec, SkyModel, SupernovaEvent, VariableStar
from repro.sky.mapping import SkyMapping
from repro.sky.detect import Candidate, detect_sources, difference_image
from repro.sky.lightcurve import classify_lightcurve, extract_flux
from repro.sky.pipeline import CampaignReport, SupernovaPipeline

__all__ = [
    "SkySpec",
    "SkyModel",
    "SupernovaEvent",
    "VariableStar",
    "SkyMapping",
    "Candidate",
    "detect_sources",
    "difference_image",
    "classify_lightcurve",
    "extract_flux",
    "SupernovaPipeline",
    "CampaignReport",
]
