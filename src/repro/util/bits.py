"""Power-of-two arithmetic.

The paper fixes both the blob size and ``pagesize`` to powers of two, which
makes the segment-tree geometry exact: every tree node covers an interval
whose size is a power of two and whose offset is a multiple of its size.
These helpers implement that arithmetic once, with validation, so the rest of
the code can assume well-formed values.
"""

from __future__ import annotations


def is_pow2(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Return ``k`` such that ``2**k == x``.

    Raises:
        ValueError: if ``x`` is not a positive power of two.
    """
    if not is_pow2(x):
        raise ValueError(f"expected a positive power of two, got {x!r}")
    return x.bit_length() - 1


def ceil_pow2(x: int) -> int:
    """Smallest power of two >= ``x`` (for ``x >= 1``)."""
    if x < 1:
        raise ValueError(f"expected x >= 1, got {x!r}")
    return 1 << (x - 1).bit_length()


def floor_pow2(x: int) -> int:
    """Largest power of two <= ``x`` (for ``x >= 1``)."""
    if x < 1:
        raise ValueError(f"expected x >= 1, got {x!r}")
    return 1 << (x.bit_length() - 1)


def align_down(x: int, a: int) -> int:
    """Round ``x`` down to a multiple of the power-of-two ``a``."""
    if not is_pow2(a):
        raise ValueError(f"alignment must be a power of two, got {a!r}")
    return x & ~(a - 1)


def align_up(x: int, a: int) -> int:
    """Round ``x`` up to a multiple of the power-of-two ``a``."""
    if not is_pow2(a):
        raise ValueError(f"alignment must be a power of two, got {a!r}")
    return (x + a - 1) & ~(a - 1)


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b!r}")
    return -(-a // b)
