"""Byte-size constants, formatting and parsing.

The paper mixes units freely (64 KB pages, MB segments, GB windows, TB
blobs); these helpers keep workload definitions readable, e.g.
``BlobConfig(total_size=1 * TB, pagesize=64 * KB)``.
"""

from __future__ import annotations

import re

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30
TB = 1 << 40

_UNITS: list[tuple[int, str]] = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]

_PARSE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTOR = {
    "": 1,
    "B": 1,
    "KB": KB,
    "K": KB,
    "MB": MB,
    "M": MB,
    "GB": GB,
    "G": GB,
    "TB": TB,
    "T": TB,
}


def human_size(nbytes: int | float) -> str:
    """Format a byte count in binary units, e.g. ``human_size(1 << 26)
    == '64 MB'``. Fractional values keep one decimal (``'1.5 MB'``)."""
    if nbytes < 0:
        return "-" + human_size(-nbytes)
    for factor, unit in _UNITS:
        if nbytes >= factor:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)} B"
    return f"{nbytes:.1f} B"


def parse_size(text: str) -> int:
    """Parse ``'64KB'``, ``'1.5 MB'``, ``'1T'`` … into a byte count."""
    m = _PARSE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size {text!r}")
    unit = m.group("unit").upper()
    if unit not in _UNIT_FACTOR:
        raise ValueError(f"unknown unit in {text!r}")
    return int(float(m.group("num")) * _UNIT_FACTOR[unit])
