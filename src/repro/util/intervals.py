"""Canonical interval algebra for the segment tree.

A *canonical interval* is one a segment-tree node may cover: its size is a
power of two (at least one page) and its offset is a multiple of its size.
The tree root covers ``(0, total_size)``; a node covering ``(o, s)`` has
children covering ``(o, s/2)`` and ``(o + s/2, s/2)``. Two canonical
intervals are therefore either disjoint or nested — the property every
traversal and weaving argument in the paper rests on.

``Interval`` itself is a plain half-open byte range ``[offset, offset+size)``
used for both canonical node extents and arbitrary client requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bits import align_down, align_up, is_pow2


@dataclass(frozen=True, slots=True)
class Interval:
    """Half-open byte range ``[offset, offset + size)``."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")

    @property
    def end(self) -> int:
        return self.offset + self.size

    def is_empty(self) -> bool:
        return self.size == 0

    def contains(self, other: "Interval") -> bool:
        """True iff ``other`` lies fully inside this interval."""
        return (
            self.offset <= other.offset
            and other.offset + other.size <= self.offset + self.size
        )

    def contains_point(self, x: int) -> bool:
        return self.offset <= x < self.offset + self.size

    def intersects(self, other: "Interval") -> bool:
        """True iff the two ranges share at least one byte.

        Empty intervals share no bytes with anything (including ranges
        containing their anchor offset). Bounds are computed inline rather
        than via the ``end`` property: this predicate runs for every child
        interval of every tree traversal.
        """
        if self.size == 0 or other.size == 0:
            return False
        return (
            self.offset < other.offset + other.size
            and other.offset < self.offset + self.size
        )

    def intersection(self, other: "Interval") -> "Interval":
        """The overlapping range (may be empty, anchored at max offset)."""
        lo = max(self.offset, other.offset)
        hi = min(self.offset + self.size, other.offset + other.size)
        return Interval(lo, max(0, hi - lo))

    def left_half(self) -> "Interval":
        if self.size < 2:
            raise ValueError(f"cannot split interval of size {self.size}")
        return Interval(self.offset, self.size // 2)

    def right_half(self) -> "Interval":
        if self.size < 2:
            raise ValueError(f"cannot split interval of size {self.size}")
        return Interval(self.offset + self.size // 2, self.size // 2)

    def is_canonical(self, pagesize: int) -> bool:
        """True iff a segment-tree node may cover this interval."""
        return (
            is_pow2(self.size)
            and self.size >= pagesize
            and self.offset % self.size == 0
        )

    def __str__(self) -> str:  # compact, used in logs and test messages
        return f"[{self.offset},+{self.size})"


def page_span(offset: int, size: int, pagesize: int) -> tuple[int, int]:
    """Return ``(first_page, last_page_exclusive)`` touched by a byte range.

    This is the page-alignment step of every READ and WRITE: the protocol
    operates on whole pages, so a request is widened to page boundaries.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    first = align_down(offset, pagesize) // pagesize
    last = align_up(offset + size, pagesize) // pagesize
    return first, last


def canonical_cover(iv: Interval, pagesize: int) -> list[Interval]:
    """Decompose a page-aligned range into maximal canonical intervals.

    The result is the unique minimal list of canonical intervals whose
    disjoint union equals ``iv``; it has at most ``2 * log2(size/pagesize)``
    elements. Used by the garbage collector and by tests as an independent
    oracle for tree traversals.
    """
    if iv.offset % pagesize or iv.size % pagesize:
        raise ValueError(f"range {iv} is not aligned to pagesize {pagesize}")
    out: list[Interval] = []
    offset, end = iv.offset, iv.end
    while offset < end:
        # Largest power-of-two block aligned at `offset` that still fits.
        max_by_align = offset & -offset if offset else end - offset
        block = min(max_by_align if offset else end, end - offset)
        size = pagesize
        while size * 2 <= block and offset % (size * 2) == 0:
            size *= 2
        out.append(Interval(offset, size))
        offset += size
    return out
