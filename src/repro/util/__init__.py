"""Shared low-level utilities.

This package groups small, dependency-free helpers used across the whole
system: power-of-two arithmetic for page geometry, canonical interval algebra
for the segment tree, an LRU map for the client-side metadata cache, human
readable size formatting, and deterministic per-stream random number
generators for reproducible workloads.
"""

from repro.util.bits import (
    align_down,
    align_up,
    ceil_div,
    ceil_pow2,
    floor_pow2,
    is_pow2,
    log2_exact,
)
from repro.util.intervals import Interval, canonical_cover, page_span
from repro.util.lru import LRUCache
from repro.util.sizes import MB, GB, KB, TB, human_size, parse_size
from repro.util.rng import substream

__all__ = [
    "align_down",
    "align_up",
    "ceil_div",
    "ceil_pow2",
    "floor_pow2",
    "is_pow2",
    "log2_exact",
    "Interval",
    "canonical_cover",
    "page_span",
    "LRUCache",
    "KB",
    "MB",
    "GB",
    "TB",
    "human_size",
    "parse_size",
    "substream",
]
