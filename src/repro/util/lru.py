"""A small LRU map used for the client-side metadata cache.

Tree nodes are immutable and keyed by ``(blob, version, interval)``, so the
cache never needs invalidation — the only policy decision is eviction. The
paper's prototype accommodates 2**20 tree nodes client-side; we default the
same way in :class:`repro.metadata.cache.MetadataCache`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Not thread-safe by itself; the threaded deployment wraps accesses in a
    per-client lock (client caches are private, so this is uncontended).
    """

    __slots__ = ("_capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def peek(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value without touching recency or stats."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the LRU entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return
        if len(self._data) >= self._capacity:
            self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = value

    def pop(self, key: K, default: V | None = None) -> V | None:
        return self._data.pop(key, default)

    def load_from(self, other: "LRUCache[K, V]") -> None:
        """Bulk-adopt another cache's entries.

        One C-level dict update instead of a Python call per entry — used
        to stamp a warmed template cache onto many clients. Counts no
        hits/misses (like :meth:`peek`); overflow evicts LRU-first. Into
        an empty cache this reproduces the source's recency order exactly;
        keys *already present* keep their existing recency slot (unlike a
        per-entry ``put`` loop, which would refresh them) — intended for
        freshly created caches.
        """
        self._data.update(other._data)
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
