"""Deterministic random-stream derivation.

Workload generators, the sky model and the DHT tests all need independent
random streams that are stable across runs and independent of iteration
order. ``substream(seed, *labels)`` derives a child generator from a root
seed and a path of labels, so e.g. client 7's access pattern never changes
when client 3 is added or removed from an experiment.
"""

from __future__ import annotations

import hashlib

import numpy as np


def substream(seed: int, *labels: object) -> np.random.Generator:
    """Derive an independent :class:`numpy.random.Generator`.

    The stream is a pure function of ``(seed, labels)``: labels are rendered
    with ``repr`` and hashed with SHA-256 together with the seed, and the
    digest seeds a PCG64 generator.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    digest = int.from_bytes(h.digest()[:16], "big")
    return np.random.default_rng(digest)
