"""Construction of a WRITE's metadata subtree ("weaving", paper §III.C).

A WRITE producing version ``v`` over patch ``P`` builds the smallest
(possibly incomplete) binary tree of the full height whose leaves are
exactly the pages of ``P``. Nodes whose two children both intersect ``P``
link to fresh version-``v`` children; *border nodes* have one child outside
``P`` and link it to the corresponding node of an **earlier** tree — the
version supplied in ``border_refs``, which the version manager precomputes
from the patch history (paper §IV.C) so the writer needs no communication
with, and no waiting on, concurrent writers.

The functions here are pure: given geometry, patch, refs and page
placements they return the exact node set — which makes the weaving logic
property-testable in isolation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval

# The subtree *shape* a write must build depends only on (geometry, patch)
# — not on version, providers or refs — and benchmark workloads revisit the
# same patch slots across iterations and clients. Both the write skeleton
# and the border-interval set are therefore memoized on those four ints.
# Entries can be large (proportional to the write-tree size), so on
# overflow the caches are wholesale-cleared rather than growing forever
# in long-lived processes writing many distinct patch shapes.
_SHAPE_CACHE_LIMIT = 4096
_skeleton_cache: dict[tuple[int, int, int, int], list[tuple]] = {}
_border_cache: dict[tuple[int, int, int, int], list[Interval]] = {}


def _write_skeleton(geom: TreeGeometry, patch: Interval) -> list[tuple]:
    """DFS-ordered shape rows for a write of ``patch``.

    Leaf row: ``(True, offset, size, page_index)``. Internal row:
    ``(False, offset, size, left_in, right_in, left_iv, right_iv)`` where
    ``*_in`` says whether that child intersects the patch.
    """
    cache_key = (geom.total_size, geom.pagesize, patch.offset, patch.size)
    skeleton = _skeleton_cache.get(cache_key)
    if skeleton is not None:
        return skeleton
    if len(_skeleton_cache) >= _SHAPE_CACHE_LIMIT:
        _skeleton_cache.clear()
    skeleton = []
    stack: list[Interval] = [geom.root]
    while stack:
        iv = stack.pop()
        if geom.is_leaf(iv):
            skeleton.append((True, iv.offset, iv.size, geom.page_index(iv)))
            continue
        left, right = geom.children(iv)
        left_in = left.intersects(patch)
        right_in = right.intersects(patch)
        skeleton.append((False, iv.offset, iv.size, left_in, right_in, left, right))
        # push right first so left is processed first (stable DFS order)
        if right_in:
            stack.append(right)
        if left_in:
            stack.append(left)
    _skeleton_cache[cache_key] = skeleton
    return skeleton


def plan_write_tree(
    geom: TreeGeometry,
    blob_id: str,
    version: int,
    patch: Interval,
    border_refs: Mapping[Interval, int],
    page_providers: Sequence[tuple[int, ...]],
    write_uid: str,
) -> list[TreeNode]:
    """Build all tree nodes the WRITE must publish, root first (DFS order).

    Args:
        geom: blob geometry.
        blob_id: blob identity.
        version: the version number assigned to this write.
        patch: the page-aligned byte range being written.
        border_refs: interval -> version for every child interval of the
            new subtree that does *not* intersect the patch (version 0
            means the interval was never written: zero-fill).
        page_providers: provider group per patched page, in page order.
        write_uid: unique id of this write (page addressing).

    Returns:
        Fresh :class:`TreeNode` records for version ``version``.
    """
    patch = geom.check_aligned(patch.offset, patch.size)
    first_page = patch.offset // geom.pagesize
    npages = patch.size // geom.pagesize
    if len(page_providers) != npages:
        raise ValueError(
            f"patch covers {npages} pages but {len(page_providers)} provider "
            "groups were supplied"
        )

    nodes: list[TreeNode] = []
    append = nodes.append
    for row in _write_skeleton(geom, patch):
        if row[0]:  # leaf
            _, offset, size, page = row
            append(
                TreeNode(
                    key=NodeKey(blob_id, version, offset, size),
                    providers=tuple(page_providers[page - first_page]),
                    write_uid=write_uid,
                )
            )
        else:
            _, offset, size, left_in, right_in, left, right = row
            append(
                TreeNode(
                    key=NodeKey(blob_id, version, offset, size),
                    left_version=version if left_in else _ref(border_refs, left, version),
                    right_version=version if right_in else _ref(border_refs, right, version),
                )
            )
    return nodes


def _ref(border_refs: Mapping[Interval, int], iv: Interval, version: int) -> int:
    try:
        ref = border_refs[iv]
    except KeyError:
        raise KeyError(
            f"missing border reference for interval {iv} (write version {version})"
        ) from None
    if not 0 <= ref < version:
        raise ValueError(
            f"border reference for {iv} is version {ref}, expected < {version}"
        )
    return ref


def border_intervals(geom: TreeGeometry, patch: Interval) -> list[Interval]:
    """Child intervals of the write subtree that lie outside the patch.

    This is exactly the key set ``plan_write_tree`` expects in
    ``border_refs``; the version manager walks the same recursion when
    precomputing references (paper §IV.C), and tests assert the two agree.
    """
    patch = geom.check_aligned(patch.offset, patch.size)
    cache_key = (geom.total_size, geom.pagesize, patch.offset, patch.size)
    cached = _border_cache.get(cache_key)
    if cached is not None:
        return list(cached)
    if len(_border_cache) >= _SHAPE_CACHE_LIMIT:
        _border_cache.clear()
    out: list[Interval] = []
    for row in _write_skeleton(geom, patch):
        if not row[0]:
            _, _, _, left_in, right_in, left, right = row
            if not left_in:
                out.append(left)
            if not right_in:
                out.append(right)
    _border_cache[cache_key] = out
    return list(out)


def count_write_nodes(geom: TreeGeometry, patch: Interval) -> int:
    """Closed-form size of the subtree a WRITE of ``patch`` must build."""
    total = 0
    for depth in range(geom.depth + 1):
        size = geom.total_size >> depth
        first = patch.offset // size
        last = (patch.end - 1) // size
        total += last - first + 1
    return total
