"""Construction of a WRITE's metadata subtree ("weaving", paper §III.C).

A WRITE producing version ``v`` over patch ``P`` builds the smallest
(possibly incomplete) binary tree of the full height whose leaves are
exactly the pages of ``P``. Nodes whose two children both intersect ``P``
link to fresh version-``v`` children; *border nodes* have one child outside
``P`` and link it to the corresponding node of an **earlier** tree — the
version supplied in ``border_refs``, which the version manager precomputes
from the patch history (paper §IV.C) so the writer needs no communication
with, and no waiting on, concurrent writers.

The functions here are pure: given geometry, patch, refs and page
placements they return the exact node set — which makes the weaving logic
property-testable in isolation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.tree import TreeGeometry
from repro.util.intervals import Interval


def plan_write_tree(
    geom: TreeGeometry,
    blob_id: str,
    version: int,
    patch: Interval,
    border_refs: Mapping[Interval, int],
    page_providers: Sequence[tuple[int, ...]],
    write_uid: str,
) -> list[TreeNode]:
    """Build all tree nodes the WRITE must publish, root first (DFS order).

    Args:
        geom: blob geometry.
        blob_id: blob identity.
        version: the version number assigned to this write.
        patch: the page-aligned byte range being written.
        border_refs: interval -> version for every child interval of the
            new subtree that does *not* intersect the patch (version 0
            means the interval was never written: zero-fill).
        page_providers: provider group per patched page, in page order.
        write_uid: unique id of this write (page addressing).

    Returns:
        Fresh :class:`TreeNode` records for version ``version``.
    """
    patch = geom.check_aligned(patch.offset, patch.size)
    first_page = patch.offset // geom.pagesize
    npages = patch.size // geom.pagesize
    if len(page_providers) != npages:
        raise ValueError(
            f"patch covers {npages} pages but {len(page_providers)} provider "
            "groups were supplied"
        )

    nodes: list[TreeNode] = []
    stack: list[Interval] = [geom.root]
    while stack:
        iv = stack.pop()
        key = NodeKey(blob_id, version, iv.offset, iv.size)
        if geom.is_leaf(iv):
            page = geom.page_index(iv)
            nodes.append(
                TreeNode(
                    key=key,
                    providers=tuple(page_providers[page - first_page]),
                    write_uid=write_uid,
                )
            )
            continue
        left, right = geom.children(iv)
        if left.intersects(patch):
            left_version = version
            # push right first so left is processed first (stable DFS order)
        else:
            left_version = _ref(border_refs, left, version)
        if right.intersects(patch):
            right_version = version
        else:
            right_version = _ref(border_refs, right, version)
        if right.intersects(patch):
            stack.append(right)
        if left.intersects(patch):
            stack.append(left)
        nodes.append(
            TreeNode(key=key, left_version=left_version, right_version=right_version)
        )
    return nodes


def _ref(border_refs: Mapping[Interval, int], iv: Interval, version: int) -> int:
    try:
        ref = border_refs[iv]
    except KeyError:
        raise KeyError(
            f"missing border reference for interval {iv} (write version {version})"
        ) from None
    if not 0 <= ref < version:
        raise ValueError(
            f"border reference for {iv} is version {ref}, expected < {version}"
        )
    return ref


def border_intervals(geom: TreeGeometry, patch: Interval) -> list[Interval]:
    """Child intervals of the write subtree that lie outside the patch.

    This is exactly the key set ``plan_write_tree`` expects in
    ``border_refs``; the version manager walks the same recursion when
    precomputing references (paper §IV.C), and tests assert the two agree.
    """
    patch = geom.check_aligned(patch.offset, patch.size)
    out: list[Interval] = []
    stack: list[Interval] = [geom.root]
    while stack:
        iv = stack.pop()
        if geom.is_leaf(iv):
            continue
        for child in geom.children(iv):
            if child.intersects(patch):
                stack.append(child)
            else:
                out.append(child)
    return out


def count_write_nodes(geom: TreeGeometry, patch: Interval) -> int:
    """Closed-form size of the subtree a WRITE of ``patch`` must build."""
    total = 0
    for depth in range(geom.depth + 1):
        size = geom.total_size >> depth
        first = patch.offset // size
        last = (patch.end - 1) // size
        total += last - first + 1
    return total
