"""Client-side metadata cache.

Tree nodes are immutable and version-addressed, so a cache entry can never
go stale — the cache needs no invalidation protocol, only an eviction
policy. This is a direct payoff of the versioning design and the mechanism
behind the "Read (cached metadata)" series of Figure 3(c): once a client has
walked a subtree, re-reads within the same (or any sharing) version skip the
metadata providers entirely. The paper's prototype accommodates 2**20 nodes;
we default to the same capacity.
"""

from __future__ import annotations

from repro.metadata.node import NodeKey, TreeNode
from repro.util.lru import LRUCache

DEFAULT_CAPACITY = 1 << 20


class MetadataCache:
    """LRU cache of tree nodes keyed by :class:`NodeKey`."""

    __slots__ = ("_lru",)

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lru: LRUCache[NodeKey, TreeNode] = LRUCache(capacity)

    def get(self, key: NodeKey) -> TreeNode | None:
        return self._lru.get(key)

    def put(self, node: TreeNode) -> None:
        self._lru.put(node.key, node)

    def preload_from(self, other: "MetadataCache") -> None:
        """Bulk-adopt another cache's nodes (warm-up helper, C-speed)."""
        self._lru.load_from(other._lru)

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: NodeKey) -> bool:
        return key in self._lru

    def clear(self) -> None:
        self._lru.clear()

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def hit_ratio(self) -> float:
        return self._lru.hit_ratio
