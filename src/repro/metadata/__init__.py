"""Metadata plane: the distributed, versioned segment tree.

Metadata associates an access request ``(version, offset, size)`` with the
pages holding the data (paper §III). It is organized as a segment tree per
version whose nodes are dispersed over metadata providers (a DHT); trees of
successive versions share whole subtrees ("weaving"), so a WRITE creates
only the nodes on the paths from the root to its patched pages.
"""

from repro.metadata.tree import TreeGeometry
from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.build import count_write_nodes, plan_write_tree
from repro.metadata.provider import MetadataProvider
from repro.metadata.router import StaticRouter
from repro.metadata.cache import MetadataCache

__all__ = [
    "TreeGeometry",
    "NodeKey",
    "TreeNode",
    "plan_write_tree",
    "count_write_nodes",
    "MetadataProvider",
    "StaticRouter",
    "MetadataCache",
]
