"""Key → metadata-provider routing (the DHT's dispersal role).

The paper stores tree nodes in BambooDHT, whose job in the protocol is
simply to spread keys uniformly over the metadata providers and locate them
without coordination. :class:`StaticRouter` reproduces that contract for a
fixed provider set — matching the paper's deployments, where the provider
set never changes during an experiment — by hashing the node key with SHA-1
(the same key space Bamboo/Pastry use). The dynamic-membership general case
is implemented by the Chord substrate in :mod:`repro.dht` and exercised by
its own tests; both honour the same routing contract
(:meth:`route` returning ``replication`` distinct owner addresses).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.metadata.node import NodeKey
from repro.net.sansio import Address


def _digest(key: NodeKey) -> int:
    h = hashlib.sha1(
        f"{key.blob_id}:{key.version}:{key.offset}:{key.size}".encode()
    ).digest()
    return int.from_bytes(h[:8], "big")


class StaticRouter:
    """Deterministic key dispersal over a fixed metadata-provider set."""

    def __init__(self, meta_ids: Sequence[int], replication: int = 1) -> None:
        if not meta_ids:
            raise ValueError("need at least one metadata provider")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if replication > len(meta_ids):
            raise ValueError(
                f"replication {replication} exceeds provider count {len(meta_ids)}"
            )
        self.meta_ids = tuple(meta_ids)
        self.replication = replication

    def primary(self, key: NodeKey) -> Address:
        return ("meta", self.meta_ids[_digest(key) % len(self.meta_ids)])

    def route(self, key: NodeKey) -> tuple[Address, ...]:
        """All owner addresses for a key: primary plus ring successors."""
        start = _digest(key) % len(self.meta_ids)
        return tuple(
            ("meta", self.meta_ids[(start + i) % len(self.meta_ids)])
            for i in range(self.replication)
        )
