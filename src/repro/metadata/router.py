"""Key → metadata-provider routing (the DHT's dispersal role).

The paper stores tree nodes in BambooDHT, whose job in the protocol is
simply to spread keys uniformly over the metadata providers and locate them
without coordination. :class:`StaticRouter` reproduces that contract for a
fixed provider set — matching the paper's deployments, where the provider
set never changes during an experiment — with a deterministic 64-bit
digest of the node key (SHA-1 seeds a per-blob salt, echoing the
Bamboo/Pastry key space; the per-key fold is integer mixing, because this
digest runs for every node of every WRITE). The dynamic-membership general case
is implemented by the Chord substrate in :mod:`repro.dht` and exercised by
its own tests; both honour the same routing contract
(:meth:`route` returning ``replication`` distinct owner addresses).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.metadata.node import NodeKey
from repro.net.sansio import Address


_MASK64 = (1 << 64) - 1

#: SHA-1-derived 64-bit salt per blob id (one hash per blob; bounded and
#: cleared wholesale on overflow like every other cache in this module —
#: recomputing a salt is cheap and the digest stays deterministic)
_BLOB_SALT_LIMIT = 1 << 16
_blob_salts: dict[str, int] = {}


def _digest(key: NodeKey) -> int:
    """Deterministic 64-bit dispersal digest of a node key.

    The blob id goes through SHA-1 once (cached, per blob); the numeric
    key fields are folded in with inlined SplitMix64 finalizer rounds —
    pure 64-bit integer arithmetic, so the digest (and therefore every
    simulated series) is identical across processes, hash seeds, and
    interpreter builds. (Python's C-speed tuple hash was measurably
    faster but varies between 64-bit/32-bit/PyPy builds, which would make
    benchmark baselines non-portable.) Hashing a digest per key was the
    single hottest line of the WRITE path — every published node resolves
    its owners, and every write mints fresh keys — so the per-key cost
    must stay a handful of integer ops rather than SHA-1 per key.
    """
    salt = _blob_salts.get(key.blob_id)
    if salt is None:
        if len(_blob_salts) >= _BLOB_SALT_LIMIT:
            _blob_salts.clear()
        salt = int.from_bytes(hashlib.sha1(key.blob_id.encode()).digest()[:8], "big")
        _blob_salts[key.blob_id] = salt
    z = salt ^ (key.version * 0x9E3779B97F4A7C15 & _MASK64)
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    z = (z ^ (z >> 31)) ^ (key.offset * 0xC2B2AE3D27D4EB4F & _MASK64)
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    z = (z ^ (z >> 31)) ^ (key.size * 0x165667B19E3779F9 & _MASK64)
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


class StaticRouter:
    """Deterministic key dispersal over a fixed metadata-provider set.

    Routes are memoized per key: a WRITE resolves every node it publishes
    and a READ every node it descends, and the same keys recur across
    operations, clients and replicas — while the dispersal digest is
    deterministic, so a cached answer never goes stale (the provider set
    is fixed for the router's lifetime).
    """

    def __init__(self, meta_ids: Sequence[int], replication: int = 1) -> None:
        if not meta_ids:
            raise ValueError("need at least one metadata provider")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self._check_capacity(meta_ids, replication)
        self.meta_ids = tuple(meta_ids)
        self.replication = replication
        self._route_cache: dict[NodeKey, tuple[Address, ...]] = {}

    def _check_capacity(self, meta_ids: Sequence[int], replication: int) -> None:
        """Extension point: can ``replication`` copies land on distinct
        members of ``meta_ids``? Subclasses whose single logical endpoint
        disperses internally (the DHT adapter) relax this."""
        if replication > len(meta_ids):
            raise ValueError(
                f"replication {replication} exceeds provider count {len(meta_ids)}"
            )

    def primary(self, key: NodeKey) -> Address:
        return self.route(key)[0]

    #: route-cache entry bound; on overflow the cache is wholesale-cleared
    #: (writes mint fresh keys forever, so an unbounded cache would be a
    #: slow leak on long-lived clients; clearing is cheaper than LRU here)
    ROUTE_CACHE_LIMIT = 1 << 20

    def route(self, key: NodeKey) -> tuple[Address, ...]:
        """All owner addresses for a key: primary plus ring successors."""
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if len(self._route_cache) >= self.ROUTE_CACHE_LIMIT:
            self._route_cache.clear()
        ids = self.meta_ids
        start = _digest(key) % len(ids)
        if self.replication == 1:  # the paper's setting; skip the genexp
            routes: tuple[Address, ...] = (("meta", ids[start]),)
        else:
            routes = tuple(
                ("meta", ids[(start + i) % len(ids)])
                for i in range(self.replication)
            )
        self._route_cache[key] = routes
        return routes
