"""Metadata introspection: tree dumps and structural-sharing statistics.

Operator tooling for the release: render a snapshot's segment tree as
ASCII (with weaving links made visible — a child whose version differs
from its parent's is a shared subtree), and quantify how much metadata
successive snapshots share (the space-efficiency claim of paper §III.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.metadata.node import NodeKey, TreeNode
from repro.metadata.router import StaticRouter
from repro.metadata.tree import TreeGeometry
from repro.net.sansio import Batch, Call, Op
from repro.util.sizes import human_size

Proto = Generator[Op, Any, Any]


@dataclass(frozen=True)
class SharingStats:
    """Metadata economy of one snapshot relative to its predecessors."""

    blob_id: str
    version: int
    total_nodes: int  # nodes reachable from this snapshot's root
    own_nodes: int  # nodes labeled with this exact version
    shared_nodes: int  # nodes inherited from earlier versions

    @property
    def sharing_ratio(self) -> float:
        """Fraction of the snapshot's tree reused from earlier versions."""
        return self.shared_nodes / self.total_nodes if self.total_nodes else 0.0


def walk_tree_protocol(
    blob_id: str,
    geom: TreeGeometry,
    version: int,
    router: StaticRouter,
    max_depth: int | None = None,
) -> Proto:
    """Fetch every reachable node of a snapshot (level order).

    Returns ``list[tuple[depth, TreeNode | None]]`` where ``None`` marks an
    implicit zero subtree. ``max_depth`` bounds the descent for huge blobs.
    """
    out: list[tuple[int, TreeNode | None, NodeKey | None]] = []
    if version == 0:
        return out
    frontier = [NodeKey(blob_id, version, 0, geom.total_size)]
    depth = 0
    limit = geom.depth if max_depth is None else min(max_depth, geom.depth)
    while frontier and depth <= limit:
        nodes = yield Batch(
            [Call(router.route(k)[0], "meta.get_node", (k,)) for k in frontier]
        )
        next_frontier: list[NodeKey] = []
        for key, node in zip(frontier, nodes):
            out.append((depth, node, key))
            if node.is_leaf or depth == limit:
                continue
            for child in node.child_keys():
                if child.version == 0:
                    out.append((depth + 1, None, child))
                else:
                    next_frontier.append(child)
        frontier = next_frontier
        depth += 1
    return out


class TreeInspector:
    """Blocking introspection facade over a client's driver."""

    def __init__(self, client) -> None:
        self.client = client

    def _walk(self, blob_id: str, version: int, max_depth: int | None):
        geom = self.client.open(blob_id)
        return self.client.driver.run(
            walk_tree_protocol(blob_id, geom, version, self.client.router, max_depth)
        )

    def dump(
        self, blob_id: str, version: int, max_depth: int | None = None
    ) -> str:
        """ASCII rendering of a snapshot's tree.

        Shared subtrees (woven links into earlier versions) are annotated
        with the version they come from; zero subtrees render as ``(zeros)``.
        """
        entries = self._walk(blob_id, version, max_depth)
        if not entries:
            return f"{blob_id} v0: implicit all-zero string"
        lines = [f"{blob_id} v{version} segment tree:"]
        for depth, node, key in sorted(
            entries, key=lambda e: (e[2].offset, -e[2].size)
        ):
            assert key is not None
            indent = "  " * depth
            span = f"[{key.offset}, +{human_size(key.size)})"
            if node is None:
                lines.append(f"{indent}{span} (zeros)")
            elif node.is_leaf:
                shared = "" if key.version == version else f"  <- v{key.version}"
                lines.append(
                    f"{indent}{span} page@providers{node.providers} "
                    f"uid={node.write_uid}{shared}"
                )
            else:
                shared = "" if key.version == version else f"  <- v{key.version}"
                lines.append(
                    f"{indent}{span} children v{node.left_version}/"
                    f"v{node.right_version}{shared}"
                )
        return "\n".join(lines)

    def sharing_stats(self, blob_id: str, version: int) -> SharingStats:
        entries = self._walk(blob_id, version, None)
        real = [(d, n, k) for d, n, k in entries if n is not None]
        own = sum(1 for _, _, k in real if k.version == version)
        return SharingStats(
            blob_id=blob_id,
            version=version,
            total_nodes=len(real),
            own_nodes=own,
            shared_nodes=len(real) - own,
        )

    def reachable_nodes(self, blob_id: str, version: int) -> int:
        return self.sharing_stats(blob_id, version).total_nodes
