"""Metadata provider: the node store behind the DHT abstraction.

The paper stores tree nodes on BambooDHT; here a metadata provider is the
storage end of that abstraction (one per node in the paper's deployment),
and the :class:`~repro.metadata.router.StaticRouter` plays the DHT's
key-dispersal role. Nodes are write-once; duplicate puts of an *identical*
record are idempotent (replication retries), conflicting puts are protocol
bugs and rejected loudly.

RPC surface:

- ``meta.put_node(node)`` -> True
- ``meta.get_node(key)`` -> TreeNode
- ``meta.free_nodes(keys)`` -> count freed (garbage collection)
- ``meta.list_nodes(blob_id)`` -> keys held for a blob (GC sweep)
- ``meta.stats()`` -> counters
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ImmutabilityViolation, NodeMissing, ProviderUnavailable
from repro.metadata.node import NodeKey, TreeNode


class MetadataProvider:
    """One metadata-provider process."""

    def __init__(self, provider_id: int) -> None:
        self.provider_id = provider_id
        self._nodes: dict[NodeKey, TreeNode] = {}
        self.puts = 0
        self.gets = 0
        self.failed = False

    def put_node(self, node: TreeNode) -> bool:
        self._check_up()
        existing = self._nodes.get(node.key)
        if existing is not None:
            if existing == node:
                return True  # idempotent replay
            raise ImmutabilityViolation(
                f"metadata provider {self.provider_id}: conflicting put for "
                f"{node.key}"
            )
        self._nodes[node.key] = node
        self.puts += 1
        return True

    def get_node(self, key: NodeKey) -> TreeNode:
        self._check_up()
        self.gets += 1
        try:
            return self._nodes[key]
        except KeyError:
            raise NodeMissing(
                f"metadata provider {self.provider_id}: no node {key}"
            ) from None

    def has_node(self, key: NodeKey) -> bool:
        return key in self._nodes

    def iter_nodes(self, blob_id: str) -> Iterable[TreeNode]:
        """All stored nodes of a blob, without per-node key lookups.

        Local bulk access for setup/inspection helpers (cache warming, GC
        sweeps); it bypasses the ``gets`` counter but still honours
        failure injection — reading from a crashed provider must raise
        exactly as the per-node path would.
        """
        self._check_up()  # eager, like list_nodes: raise at call time
        return (
            node for key, node in self._nodes.items() if key.blob_id == blob_id
        )

    def dump_nodes(self, blob_id: str) -> list[TreeNode]:
        """:meth:`iter_nodes` as an RPC-shaped list (same failure
        semantics), so out-of-process deployments expose the inspection
        surface the conformance suite compares."""
        return list(self.iter_nodes(blob_id))

    def free_nodes(self, keys: Iterable[NodeKey]) -> int:
        self._check_up()
        freed = 0
        for key in keys:
            if self._nodes.pop(key, None) is not None:
                freed += 1
        return freed

    def list_nodes(self, blob_id: str) -> list[NodeKey]:
        self._check_up()
        return [k for k in self._nodes if k.blob_id == blob_id]

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def stats(self) -> dict[str, int]:
        return {
            "provider_id": self.provider_id,
            "nodes": len(self._nodes),
            "puts": self.puts,
            "gets": self.gets,
        }

    # -- failure injection -----------------------------------------------

    def crash(self) -> None:
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def _check_up(self) -> None:
        if self.failed:
            raise ProviderUnavailable(
                f"metadata provider {self.provider_id} is down"
            )

    # -- RPC dispatch ------------------------------------------------------

    def handle(self, method: str, args: tuple) -> Any:
        if method == "meta.put_node":
            return self.put_node(*args)
        if method == "meta.get_node":
            return self.get_node(*args)
        if method == "meta.free_nodes":
            return self.free_nodes(*args)
        if method == "meta.list_nodes":
            return self.list_nodes(*args)
        if method == "meta.dump_nodes":
            return self.dump_nodes(*args)
        if method == "meta.stats":
            return self.stats()
        raise ValueError(f"metadata provider: unknown method {method!r}")


def blob_nodes(
    providers: Iterable[MetadataProvider], blob_id: str
) -> list[TreeNode]:
    """Every stored node of a blob across a set of metadata providers.

    The one definition of "the blob's metadata tree, as stored" shared by
    all three deployments' ``blob_nodes`` methods — the cross-driver
    conformance suite compares its output across deployments, so the
    iteration semantics must not be allowed to drift per deployment.
    """
    return [
        node for provider in providers for node in provider.iter_nodes(blob_id)
    ]
