"""Immutable segment-tree node records.

A node is identified by ``(blob_id, version, offset, size)`` — the version
component is what makes snapshots immutable and caching trivially coherent.
Internal nodes store, for each child interval, the *version whose tree
contains that child* (the weaving links of paper Figure 2(b)); leaves store
where the page lives: the providers holding it and the ``write_uid`` needed
to reconstruct the page key.

A child version of ``0`` denotes the initial all-zero string: readers
zero-fill that subrange without fetching anything (the system "allocates on
write", paper §V.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.net.message import NODE_WIRE_BYTES, estimate_size
from repro.util.intervals import Interval


class NodeKey(NamedTuple):
    """Globally unique tree-node address (hashes onto the DHT)."""

    blob_id: str
    version: int
    offset: int
    size: int

    @property
    def interval(self) -> Interval:
        return Interval(self.offset, self.size)


@dataclass(frozen=True, slots=True)
class TreeNode:
    """One tree node; either internal (child links) or leaf (page ref)."""

    key: NodeKey
    # internal nodes: version of the tree containing each child (0 = zeros)
    left_version: int | None = None
    right_version: int | None = None
    # leaves: where the page lives
    providers: tuple[int, ...] = ()
    write_uid: str | None = None

    def __post_init__(self) -> None:
        if self.is_leaf:
            if not self.providers or self.write_uid is None:
                raise ValueError(f"leaf {self.key} must carry a page reference")
        else:
            if self.left_version is None or self.right_version is None:
                raise ValueError(f"internal node {self.key} must link both children")
            if self.providers or self.write_uid is not None:
                raise ValueError(f"internal node {self.key} cannot carry a page ref")

    @property
    def is_leaf(self) -> bool:
        return self.left_version is None and self.right_version is None

    @property
    def interval(self) -> Interval:
        return self.key.interval

    def child_keys(self) -> tuple[NodeKey, NodeKey]:
        """Keys of both children (only meaningful for internal nodes)."""
        if self.is_leaf:
            raise ValueError(f"leaf {self.key} has no children")
        iv = self.interval
        left, right = iv.left_half(), iv.right_half()
        assert self.left_version is not None and self.right_version is not None
        return (
            NodeKey(self.key.blob_id, self.left_version, left.offset, left.size),
            NodeKey(self.key.blob_id, self.right_version, right.offset, right.size),
        )


@estimate_size.register
def _(obj: TreeNode) -> int:
    return NODE_WIRE_BYTES


@estimate_size.register
def _(obj: NodeKey) -> int:
    return 40
