"""Segment-tree geometry.

The tree is *implicit*: its shape is fully determined by the blob's total
size and pagesize (both powers of two), so geometry questions — which
intervals exist, who covers what, which leaves a request touches — are pure
arithmetic and never require fetching anything. All traversals in the
system are built on this class.

Depth convention: the root is at depth 0 and covers the whole blob; leaves
are at depth ``log2(total_size / pagesize)`` and cover single pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError, OutOfBounds
from repro.util.bits import is_pow2, log2_exact
from repro.util.intervals import Interval


@dataclass(frozen=True)
class TreeGeometry:
    """Shape of the segment tree for one blob."""

    total_size: int
    pagesize: int

    def __post_init__(self) -> None:
        if not is_pow2(self.total_size):
            raise ConfigError(f"total_size must be a power of two, got {self.total_size}")
        if not is_pow2(self.pagesize):
            raise ConfigError(f"pagesize must be a power of two, got {self.pagesize}")
        if self.pagesize > self.total_size:
            raise ConfigError(
                f"pagesize {self.pagesize} exceeds total_size {self.total_size}"
            )

    @property
    def depth(self) -> int:
        """Number of edge levels from root to leaf."""
        return log2_exact(self.total_size) - log2_exact(self.pagesize)

    @property
    def page_count(self) -> int:
        return self.total_size // self.pagesize

    @property
    def root(self) -> Interval:
        return Interval(0, self.total_size)

    # -- validation ------------------------------------------------------

    def check_bounds(self, offset: int, size: int) -> Interval:
        """Validate a byte range against the blob extent; return it."""
        if size <= 0:
            raise OutOfBounds(f"size must be positive, got {size}")
        if offset < 0 or offset + size > self.total_size:
            raise OutOfBounds(
                f"range [{offset}, {offset + size}) outside blob of size "
                f"{self.total_size}"
            )
        return Interval(offset, size)

    def check_aligned(self, offset: int, size: int) -> Interval:
        """Validate a page-aligned byte range (the WRITE contract)."""
        iv = self.check_bounds(offset, size)
        if offset % self.pagesize or size % self.pagesize:
            raise OutOfBounds(
                f"range [{offset}, {offset + size}) not aligned to pagesize "
                f"{self.pagesize}; use write_unaligned() for read-modify-write"
            )
        return iv

    # -- node relations -----------------------------------------------------

    def is_leaf(self, iv: Interval) -> bool:
        return iv.size == self.pagesize

    def children(self, iv: Interval) -> tuple[Interval, Interval]:
        if self.is_leaf(iv):
            raise ValueError(f"leaf {iv} has no children")
        return iv.left_half(), iv.right_half()

    def parent(self, iv: Interval) -> Interval:
        if iv.size >= self.total_size:
            raise ValueError("root has no parent")
        size = iv.size * 2
        return Interval((iv.offset // size) * size, size)

    def page_index(self, iv: Interval) -> int:
        if not self.is_leaf(iv):
            raise ValueError(f"{iv} is not a leaf interval")
        return iv.offset // self.pagesize

    def leaf_interval(self, page_index: int) -> Interval:
        if not 0 <= page_index < self.page_count:
            raise OutOfBounds(f"page index {page_index} out of range")
        return Interval(page_index * self.pagesize, self.pagesize)

    # -- request decomposition -------------------------------------------

    def leaves_for(self, iv: Interval) -> Iterator[Interval]:
        """Leaf intervals (whole pages) intersecting a byte range."""
        self.check_bounds(iv.offset, iv.size)
        first = iv.offset // self.pagesize
        last = (iv.end - 1) // self.pagesize
        for index in range(first, last + 1):
            yield Interval(index * self.pagesize, self.pagesize)

    def level_intervals(self, depth: int, iv: Interval) -> Iterator[Interval]:
        """Canonical intervals at ``depth`` intersecting a byte range."""
        if not 0 <= depth <= self.depth:
            raise ValueError(f"depth {depth} out of range 0..{self.depth}")
        size = self.total_size >> depth
        first = iv.offset // size
        last = (iv.end - 1) // size
        for index in range(first, last + 1):
            yield Interval(index * size, size)

    def visit_intervals(self, iv: Interval) -> Iterator[Interval]:
        """All tree intervals a READ of ``iv`` must visit, root first.

        These are exactly the canonical intervals intersecting the range —
        equivalently, the union of the root-to-leaf paths of its pages.
        """
        for depth in range(self.depth + 1):
            yield from self.level_intervals(depth, iv)

    def depth_of(self, iv: Interval) -> int:
        return log2_exact(self.total_size) - log2_exact(iv.size)

    def count_visit_nodes(self, iv: Interval) -> int:
        """Closed form |visit_intervals(iv)| (used for cost accounting)."""
        total = 0
        for depth in range(self.depth + 1):
            size = self.total_size >> depth
            first = iv.offset // size
            last = (iv.end - 1) // size
            total += last - first + 1
        return total
